#!/usr/bin/env python3
"""Fault storm: boot unikernels while the control plane misbehaves.

Sweeps a uniform fault-injection rate across every control-plane fault
point (XenStore timeouts, transaction-conflict storms, dropped watches,
hotplug script failures, shell crashes, transient hypercalls) and boots
N daytime unikernels at each rate under a few toolstack variants.  Shows
two things the paper argues qualitatively:

* stock xl's long XenStore pipeline degrades far faster under faults
  than LightVM's handful of hypercalls; and
* with retry policies and rollback in place, *no* fault rate leaks a
  single XenStore entry, grant reference, shell slot or bridge port —
  verified by the invariant checker after every storm.

Run:  python examples/fault_storm.py [N]
"""

import sys

from repro.core import Host
from repro.core.metrics import percentile
from repro.faults import FaultPlan
from repro.guests import DAYTIME_UNIKERNEL

RATES = (0.0, 0.01, 0.05)
VARIANTS = ("xl", "chaos+xs", "lightvm")


def storm(variant: str, rate: float, count: int):
    plan = FaultPlan.uniform(rate, seed=42) if rate else None
    host = Host(variant=variant, seed=42, fault_plan=plan,
                pool_target=count + 64,
                shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
    host.warmup(20.0 * (count + 64))
    creates, failures = [], 0
    for _ in range(count):
        try:
            creates.append(host.create_vm(DAYTIME_UNIKERNEL).create_ms)
        except Exception:
            failures += 1
    host.sim.run(until=host.sim.now + 500.0)  # drain async teardowns
    injected = sum(c["injected"] for c in host.fault_metrics().values())
    return (percentile(creates, 99) if creates else float("nan"),
            failures, injected, host.check_invariants())


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 100

    print("%-10s %8s %12s %8s %9s %8s"
          % ("variant", "rate", "p99 (ms)", "failed", "injected",
             "leaks"))
    leaked = False
    for variant in VARIANTS:
        for rate in RATES:
            p99, failures, injected, violations = storm(variant, rate,
                                                        count)
            leaked = leaked or bool(violations)
            print("%-10s %8.3f %12.2f %8d %9d %8d"
                  % (variant, rate, p99, failures, injected,
                     len(violations)))
            for violation in violations:
                print("    LEAK: " + violation)

    print()
    print("invariants: %s" % ("VIOLATED" if leaked else
                              "clean at every rate"))
    return 1 if leaked else 0


if __name__ == "__main__":
    sys.exit(main())
