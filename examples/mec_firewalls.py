#!/usr/bin/env python3
"""Personal firewalls on a mobile-edge machine (§7.1).

Boots a fleet of ClickOS firewall VMs — one per mobile user — on a
14-core MEC server, then reports cumulative throughput, per-user
bandwidth and scheduler-added RTT as the active-user count grows, plus
the cost of migrating one user's firewall to a neighbouring cell.

Run:  python examples/mec_firewalls.py [fleet_size]
"""

import sys

from repro.core.usecases import run_personal_firewalls


def main():
    fleet = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    print("booting %d ClickOS personal firewalls..." % fleet)
    result = run_personal_firewalls(boot_fleet=fleet)

    print("fleet of %d booted; one instance boots in %.1f ms"
          % (result.booted, result.boot_sample_ms))
    print("\nactive users -> forwarding behaviour (10 Mb/s per user cap):")
    for point in result.points:
        marker = "  <-- CPU saturated" if point.saturated else ""
        print("  %5d users: %5.2f Gb/s total, %5.1f Mb/s each, "
              "+%5.1f ms RTT%s"
              % (point.clients, point.total_gbps, point.per_client_mbps,
                 point.rtt_ms, marker))

    print("\nLTE-Advanced tops out at 3.3 Gb/s per sector: one machine "
          "covers the cell.")
    print("following a user to the next cell: firewall migrates in "
          "%.0f ms over a 1 Gb/s, 10 ms link" % result.migration_ms)


if __name__ == "__main__":
    main()
