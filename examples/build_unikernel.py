#!/usr/bin/env python3
"""Build unikernels the §3.1 way and boot one.

Links each of the paper's applications against the Mini-OS library
universe (symbol resolution with dead-code elimination), prints the
§3.1-style size table, and boots the daytime unikernel on LightVM.

Run:  python examples/build_unikernel.py
"""

from repro.core import Host
from repro.unikernel import APPLICATIONS, build, size_report


def main():
    builds = [build(name) for name in sorted(APPLICATIONS)]
    print(size_report(builds))

    daytime = next(b for b in builds if b.image.name.endswith("daytime"))
    print("\ndaytime link map (%d objects):"
          % len(daytime.link_result.objects))
    for obj in daytime.link_result.objects:
        print("  %-18s %5d KB" % (obj.name, obj.size_kb))
    print("  %-18s %5d KB  (the paper's '50 LoC' server)"
          % ("app code", daytime.link_result.app.size_kb))

    host = Host(variant="lightvm")
    host.warmup(500)
    record = host.create_vm(daytime.image)
    print("\nbooted %s on LightVM: %.2f ms create + %.2f ms boot"
          % (daytime.image.name, record.create_ms, record.boot_ms))


if __name__ == "__main__":
    main()
