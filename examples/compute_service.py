#!/usr/bin/env python3
"""A Lambda-like compute service on Minipython unikernels (§7.4).

Requests arrive every 250 ms; each spawns a fresh Minipython VM that
computes for ~0.8 s and is destroyed.  Three guest cores can only absorb
one request every 266 ms, so the service is slightly overloaded and
backlog accumulates — compare how far completion times drift under
LightVM versus the chaos+XenStore stack.

Run:  python examples/compute_service.py [requests]
"""

import sys

from repro.core.metrics import mean, sample_indices
from repro.core.usecases import run_compute_service


def main():
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    results = {}
    for variant in ("lightvm", "chaos+xs"):
        print("running %d compute requests under %s..."
              % (requests, variant))
        results[variant] = run_compute_service(variant, requests=requests)

    print("\nrequest   completion time (s)")
    print("          %12s %12s" % ("lightvm", "chaos+xs"))
    for index in sample_indices(requests, 8):
        print("%-9d %12.2f %12.2f"
              % (index + 1,
                 results["lightvm"].service_ms[index] / 1000.0,
                 results["chaos+xs"].service_ms[index] / 1000.0))

    for variant, result in results.items():
        peak = max(count for _t, count in result.concurrency)
        print("\n%s: mean create %.2f ms, peak backlog %d VMs"
              % (variant, mean(result.create_ms), peak))


if __name__ == "__main__":
    main()
