#!/usr/bin/env python3
"""Checkpoint and migrate unikernels between two hosts (§5.1, §6.2).

Creates a daytime unikernel on host A, checkpoints it, restores it, then
live-migrates it to host B over a 1 Gb/s link — under both LightVM and
stock xl for comparison.

Run:  python examples/migration_demo.py
"""

from repro.core import Host, XEON_E5_1630_2DOM0
from repro.guests import DAYTIME_UNIKERNEL
from repro.net import Link
from repro.sim import Simulator
from repro.toolstack import migrate


def demo(variant: str):
    sim = Simulator()
    src = Host(spec=XEON_E5_1630_2DOM0, variant=variant, sim=sim)
    dst = Host(spec=XEON_E5_1630_2DOM0, variant=variant, sim=sim)
    src.warmup(500)

    config = src.config_for(DAYTIME_UNIKERNEL)
    record = src.create_vm(config)
    print("[%s] created %s in %.1f ms" % (variant, config.name,
                                          record.create_ms))

    t0 = sim.now
    saved = src.save_vm(record.domain, config)
    print("[%s] checkpointed in %.1f ms" % (variant, sim.now - t0))

    t0 = sim.now
    domain = src.restore_vm(saved)
    print("[%s] restored in %.1f ms" % (variant, sim.now - t0))

    link = Link(sim, latency_ms=0.1, bandwidth_mbps=1000.0)
    t0 = sim.now
    proc = sim.process(migrate(src.checkpointer, dst.checkpointer,
                               domain, config, link))
    remote = sim.run(until=proc)
    print("[%s] migrated to host B in %.1f ms (remote domain %d, %s)"
          % (variant, sim.now - t0, remote.domid, remote.state.value))


def main():
    for variant in ("lightvm", "xl"):
        demo(variant)
        print()


if __name__ == "__main__":
    main()
