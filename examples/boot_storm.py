#!/usr/bin/env python3
"""Boot storm: reproduce the headline Figure 9 curves at the console.

Boots N daytime unikernels under every toolstack combination and prints
the creation-time series, showing stock Xen's superlinear growth against
LightVM's flat microsecond-scale curve.

Run:  python examples/boot_storm.py [N]
"""

import sys

from repro.core import Host, VARIANTS
from repro.core.metrics import sample_indices
from repro.guests import DAYTIME_UNIKERNEL


def storm(variant: str, count: int):
    host = Host(variant=variant, pool_target=count + 64,
                shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
    host.warmup(20.0 * (count + 64))
    return [host.create_vm(DAYTIME_UNIKERNEL).create_ms
            for _ in range(count)]


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    results = {}
    for variant in VARIANTS:
        print("booting %d unikernels under %s..." % (count, variant))
        results[variant] = storm(variant, count)

    print("\ncreation time (ms) by number of already-running guests:")
    print("n      " + "".join("%16s" % v for v in VARIANTS))
    for index in sample_indices(count, 8):
        row = "".join("%16.2f" % results[v][index] for v in VARIANTS)
        print("%-7d%s" % (index + 1, row))

    xl_last = results["xl"][-1]
    lightvm_last = results["lightvm"][-1]
    print("\nxl is %.0fx slower than LightVM at guest #%d"
          % (xl_last / lightvm_last, count))

    from repro.core.asciiplot import render
    xs = list(range(1, count + 1))
    print()
    print(render(xs, results, width=68, height=18, logy=True,
                 title="Figure 9: creation time vs running guests"))


if __name__ == "__main__":
    main()
