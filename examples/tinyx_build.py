#!/usr/bin/env python3
"""Build a Tinyx image for nginx and boot it (§3.2 end to end).

Walks the whole Tinyx pipeline: objdump dependency discovery, package
closure with the installation-machinery blacklist, OverlayFS assembly
over a BusyBox underlay, kernel-option trimming with a boot test, and
finally boots the produced image on a LightVM host.

Run:  python examples/tinyx_build.py [app]    (apps: nginx, micropython,
      redis-server, iperf, stunnel4)
"""

import sys

from repro.core import Host
from repro.tinyx import (DEFAULT_TRIM_CANDIDATES, TinyxBuilder,
                         debian_kernel_size_kb)


def main():
    app = sys.argv[1] if len(sys.argv) > 1 else "nginx"
    builder = TinyxBuilder()
    build = builder.build(app, platform="xen",
                          trim_candidates=DEFAULT_TRIM_CANDIDATES)

    print("== Tinyx build for %r ==" % app)
    print("packages installed (%d): %s"
          % (len(build.packages), ", ".join(build.packages)))
    print("initramfs: %.1f MB (%d files, %d KB of caches stripped)"
          % (build.initramfs_kb / 1024.0,
             len(build.overlay.filesystem.files),
             build.overlay.stripped_kb))

    trim = build.trim_report
    print("\nkernel trim: %d rebuilds, removed %d options, kept %d"
          % (trim.builds, len(trim.removed), len(trim.retained)))
    print("  removed: %s" % ", ".join(sorted(trim.removed)[:8]) + " ...")
    print("  kernel: %.0f KB -> %.0f KB (Debian kernel: %.0f KB)"
          % (trim.size_before_kb, trim.size_after_kb,
             debian_kernel_size_kb()))

    print("\nfinal image: %.1f MB, needs %.0f MB of RAM"
          % (build.image.kernel_size_kb / 1024.0,
             build.image.memory_kb / 1024.0))

    host = Host(variant="lightvm")
    host.warmup(500)
    record = host.create_vm(build.image)
    print("booted on LightVM: create=%.1f ms boot=%.1f ms"
          % (record.create_ms, record.boot_ms))


if __name__ == "__main__":
    main()
