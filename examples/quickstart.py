#!/usr/bin/env python3
"""Quickstart: boot a unikernel on LightVM and compare toolstacks.

Creates one daytime unikernel under each toolstack configuration the
paper compares (Figure 9) and prints creation/boot latencies, then shows
the 2.3 ms noop floor and a save/restore round trip.

Run:  python examples/quickstart.py
"""

from repro.core import Host, VARIANTS
from repro.guests import DAYTIME_UNIKERNEL, NOOP_UNIKERNEL


def main():
    print("== One daytime unikernel per toolstack variant ==")
    for variant in VARIANTS:
        host = Host(variant=variant)
        host.warmup(500)  # let the chaos daemon pre-fill its shell pool
        record = host.create_vm(DAYTIME_UNIKERNEL)
        print("%-16s create=%8.2f ms  boot=%6.2f ms  total=%8.2f ms"
              % (variant, record.create_ms, record.boot_ms,
                 record.total_ms))

    print("\n== The 2.3 ms floor: noop unikernel, all optimizations ==")
    host = Host(variant="lightvm")
    host.warmup(500)
    record = host.create_vm(NOOP_UNIKERNEL)
    print("noop on lightvm: %.2f ms create+boot" % record.total_ms)

    print("\n== Checkpoint round trip (paper: ~30 ms save, ~20 ms "
          "restore) ==")
    config = host.config_for(DAYTIME_UNIKERNEL)
    record = host.create_vm(config)
    t0 = host.sim.now
    saved = host.save_vm(record.domain, config)
    save_ms = host.sim.now - t0
    t0 = host.sim.now
    host.restore_vm(saved)
    restore_ms = host.sim.now - t0
    print("save=%.1f ms  restore=%.1f ms" % (save_ms, restore_ms))


if __name__ == "__main__":
    main()
