"""Deterministic fault injection for the simulated control plane.

:class:`FaultPlan` declares *what* should fail (fault point x probability
or Nth occurrence x kind); :class:`FaultInjector` evaluates it with draws
from named seeded RNG streams, so a ``(seed, plan)`` pair replays the
exact same fault schedule every run.  :mod:`repro.faults.retry` provides
the exponential-backoff policies the surviving layers use, and
:mod:`repro.faults.invariants` audits a host for leaked state afterwards.
"""

from .invariants import InvariantViolation, assert_clean, check_host
from .plan import (NULL_INJECTOR, DaemonRestarted, FaultInjector, FaultPlan,
                   FaultRule, GrantMapFailure, InjectedFault, LinkInterrupted,
                   MessageTimeout, MigrationAborted, Overloaded,
                   ToolstackCrashed, TransientHypercallError)
from .retry import (ROLLBACK_POLICY, RetryBudgetExhausted, RetryExhausted,
                    RetryPolicy, retry_call, retry_generator)

__all__ = [
    "DaemonRestarted",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "GrantMapFailure",
    "InjectedFault",
    "InvariantViolation",
    "LinkInterrupted",
    "MessageTimeout",
    "MigrationAborted",
    "NULL_INJECTOR",
    "Overloaded",
    "ROLLBACK_POLICY",
    "RetryBudgetExhausted",
    "RetryExhausted",
    "RetryPolicy",
    "ToolstackCrashed",
    "TransientHypercallError",
    "assert_clean",
    "check_host",
    "retry_call",
    "retry_generator",
]
