"""Declarative fault plans and the deterministic injector.

A :class:`FaultPlan` is a replayable input to an experiment: an ordered
list of :class:`FaultRule`\\ s, each naming a **fault point** (a place in
the control plane instrumented with ``injector.fires(point)``) and saying
when it should misbehave — with a fixed probability per occurrence, or at
specific occurrence numbers.  All probability draws come from a named
:class:`~repro.sim.rng.RngStream` (one stream per fault point), so a given
``(seed, plan)`` pair produces the exact same fault schedule on every run
and adding a rule for one point never perturbs the draws of another.

The instrumented fault points are:

==========================  =================================================
point                       effect when fired
==========================  =================================================
``xenstore.message``        the daemon's ack is lost; the client waits out
                            its message timeout and resends (bounded)
``xenstore.commit``         the commit is invalidated (conflict storm);
                            the caller's transaction retry loop runs
``xenstore.watch``          the watch event for a mutation is dropped;
                            waiters must time out and re-announce
``hotplug.script``          a bash hotplug script fails; xl relaunches it
``hotplug.xendevd``         a xendevd handler fails; it re-executes
``shellpool.shell``         a pooled VM shell crashes right after prepare;
                            the daemon tears it down and replenishes
``hypervisor.hypercall``    DOMCTL_createdomain fails transiently;
                            the toolstack retries with backoff
``hypervisor.grant_map``    filling a grant-table entry fails transiently;
                            the granting side retries
``migration.link``          the migration TCP connection dies mid-copy;
                            the source resumes, the destination rolls back
==========================  =================================================

The **recovery fault points** below are additionally gated on the
recovery layer being attached (``repro.recovery``): a host built without
it never consults them, so plans with ``points="*"`` keep their exact
pre-recovery schedules and digests.

==========================  =================================================
point                       effect when fired (recovery layer attached)
==========================  =================================================
``xenstore.daemon_crash``   the daemon dies mid-op: the in-flight request
                            aborts with :class:`DaemonRestarted`, open
                            transactions are invalidated, and the watchdog
                            restarts the daemon by replaying its op journal
``toolstack.create``        the toolstack process dies mid-create, leaving
                            a half-built guest for the orphan reaper
``toolstack.destroy``       the toolstack dies mid-destroy; the reaper
                            rolls the teardown forward
``toolstack.migrate``       the migrating toolstack dies mid-memory-copy;
                            the reaper resumes the source and reaps the
                            destination's partial state
==========================  =================================================
"""

from __future__ import annotations

import dataclasses
import fnmatch
import typing

from ..sim.rng import RngRegistry


class InjectedFault(RuntimeError):
    """Base class for errors raised because an injected fault persisted."""


class MessageTimeout(InjectedFault):
    """A XenStore message went unacknowledged past the retry budget."""


class TransientHypercallError(InjectedFault):
    """A hypercall failed transiently (caller should retry)."""


class GrantMapFailure(InjectedFault):
    """Filling a grant-table entry failed transiently."""


class LinkInterrupted(InjectedFault):
    """A network link dropped mid-transfer."""


class MigrationAborted(RuntimeError):
    """A migration was aborted; the source domain was left intact."""


class DaemonRestarted(InjectedFault):
    """The XenStore daemon crashed while this request was in flight.

    The op (or open transaction) had no durable effect — the crash fires
    before any mutation — so the caller can retry safely once the
    watchdog has replayed the journal.  ``XsClient.transaction()`` and
    ``XsBatch.commit()`` retry it via their :class:`RetryPolicy`."""


class ToolstackCrashed(InjectedFault):
    """The toolstack process died mid-operation (create/destroy/migrate).

    Unlike an ordinary failure, *no inline rollback runs* — the process
    is gone.  The per-phase intent record stays open; the orphan reaper
    (:class:`repro.recovery.OrphanReaper`) rolls the operation back or
    forward on the next recovery pass."""


class Overloaded(RuntimeError):
    """The daemon shed this request: its admission queue is full.

    Deliberately *not* an :class:`InjectedFault` — load shedding is a
    policy decision (bounded queue depth), not an injected failure, and
    can trigger without any fault plan."""


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One declarative rule: *where*, *when*, and *how hard* to fail."""

    #: Fault point name; ``fnmatch`` patterns are allowed ("xenstore.*").
    point: str
    #: Probability that a matching occurrence fires (drawn per occurrence
    #: from the point's own RNG stream).  Ignored when ``at`` is set.
    probability: float = 0.0
    #: Fire deterministically at these 1-based occurrence numbers of the
    #: point (e.g. ``(1,)`` = the first time the point is reached).
    at: typing.Tuple[int, ...] = ()
    #: Stop firing after this many hits (None = unlimited).  This is what
    #: bounds a "storm": high probability, finite fires.
    max_fires: typing.Optional[int] = None
    #: Informative kind tag ("timeout", "conflict", "drop", "crash"...).
    kind: str = ""
    #: Extra latency (ms) the victim charges when the fault fires, e.g.
    #: how long a hung hotplug script sits before its watchdog kills it.
    delay_ms: float = 0.0


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable set of fault rules — a replayable input."""

    rules: typing.Tuple[FaultRule, ...] = ()
    #: Seed used when an injector is built without an external registry.
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def uniform(cls, probability: float, points: str = "*",
                seed: int = 0, max_fires: typing.Optional[int] = None
                ) -> "FaultPlan":
        """Every occurrence of every matching point fails with
        ``probability`` — the knob the ablation benchmark sweeps."""
        return cls(rules=(FaultRule(point=points, probability=probability,
                                    max_fires=max_fires),), seed=seed)

    @classmethod
    def once(cls, point: str, occurrence: int = 1, kind: str = "",
             delay_ms: float = 0.0, seed: int = 0) -> "FaultPlan":
        """Fire exactly once, at the Nth occurrence of ``point``."""
        return cls(rules=(FaultRule(point=point, at=(occurrence,),
                                    kind=kind, delay_ms=delay_ms),),
                   seed=seed)


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at named fault points.

    Components call :meth:`fires` at each instrumented point; the injector
    counts the occurrence, evaluates the plan's rules in order, and returns
    the first rule that fires (or None).  With no plan it is an always-None
    null object, so call sites never branch on injector presence.
    """

    def __init__(self, plan: typing.Optional[FaultPlan] = None,
                 rng: typing.Optional[RngRegistry] = None):
        self.plan = plan
        self._rng = rng
        #: point -> times the point was reached.
        self.occurrences: typing.Dict[str, int] = {}
        #: point -> times a fault actually fired there.
        self.injected: typing.Dict[str, int] = {}
        self._rule_fires: typing.Dict[int, int] = {}
        self._rules = tuple(plan.rules) if plan is not None else ()

    @property
    def enabled(self) -> bool:
        """True when the plan contains at least one rule."""
        return bool(self._rules)

    def _stream(self, point: str):
        if self._rng is None:
            self._rng = RngRegistry(self.plan.seed if self.plan else 0)
        return self._rng.stream("fault/%s" % point)

    def fires(self, point: str) -> typing.Optional[FaultRule]:
        """Count one occurrence of ``point``; return the firing rule."""
        if not self._rules:
            return None
        occurrence = self.occurrences.get(point, 0) + 1
        self.occurrences[point] = occurrence
        for index, rule in enumerate(self._rules):
            if not fnmatch.fnmatchcase(point, rule.point):
                continue
            fired_so_far = self._rule_fires.get(index, 0)
            if rule.max_fires is not None and \
                    fired_so_far >= rule.max_fires:
                continue
            if rule.at:
                hit = occurrence in rule.at
            elif rule.probability > 0.0:
                hit = self._stream(point).random() < rule.probability
            else:
                hit = False
            if hit:
                self._rule_fires[index] = fired_so_far + 1
                self.injected[point] = self.injected.get(point, 0) + 1
                return rule
        return None

    def metrics(self) -> typing.Dict[str, typing.Dict[str, int]]:
        """Per-fault-point counters: occurrences seen, faults injected."""
        points = sorted(set(self.occurrences) | set(self.injected))
        return {point: {"occurrences": self.occurrences.get(point, 0),
                        "injected": self.injected.get(point, 0)}
                for point in points}


#: Shared do-nothing injector for components built without one.
NULL_INJECTOR = FaultInjector()
