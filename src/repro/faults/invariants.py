"""Resource-leak invariants checked after fault-injected experiments.

A control plane that survives injected faults is only correct if its
rollback paths actually release everything a failed operation allocated.
:func:`check_host` audits a :class:`~repro.core.host.Host` against the
hypervisor's view of live domains and returns a list of human-readable
violations; :func:`assert_clean` raises on any.

Checks (all duck-typed so partial hosts — e.g. noxs variants with no
XenStore — are handled):

* every ``/local/domain/<id>`` and ``/vm/<id>`` XenStore subtree belongs
  to a live domain, and every backend directory under dom0 references one;
* every grant-table entry's granter and grantee are alive;
* every non-closed event channel's owner (and bound peer) are alive;
* memory extents are owned exactly by live domains, at their stated size;
* every pooled shell is a live domain in the ``SHELL`` state;
* every bridge port maps to a live domain.

Run the checker with the simulator drained (``host.sim.run()`` returned
and no fault mid-flight): asynchronous teardown (e.g. the noxs save path)
legitimately holds resources for a few simulated milliseconds.
"""

from __future__ import annotations

import typing


class InvariantViolation(AssertionError):
    """The host leaked control-plane state; see the message for details."""


def _live_domains(host) -> typing.Dict[int, object]:
    return dict(host.hypervisor.domains)


def _check_xenstore(host, domains, violations) -> None:
    xenstore = getattr(host, "xenstore", None)
    if xenstore is None:
        return
    tree = xenstore.tree

    def list_dir(path):
        try:
            return tree.directory(path)
        except Exception:
            return []

    for name in list_dir("/local/domain"):
        try:
            domid = int(name)
        except ValueError:
            violations.append("/local/domain/%s: non-numeric entry" % name)
            continue
        if domid != 0 and domid not in domains:
            violations.append(
                "/local/domain/%d leaked (domain not in hypervisor)" % domid)
    for name in list_dir("/vm"):
        try:
            domid = int(name)
        except ValueError:
            continue
        if domid not in domains:
            violations.append(
                "/vm/%d leaked (domain not in hypervisor)" % domid)
    for kind in list_dir("/local/domain/0/backend"):
        base = "/local/domain/0/backend/%s" % kind
        for name in list_dir(base):
            try:
                domid = int(name)
            except ValueError:
                continue
            if domid not in domains:
                violations.append(
                    "%s/%d leaked backend entries" % (base, domid))

    # Ambient-traffic accounting: the daemon's weighted client count
    # must equal the sum of the live domains' registered weights.  Every
    # register_client must be paired with an unregister on destruction /
    # suspension — an unmatched register inflates the 1/(1-rho) load
    # factor forever (and the unregister clamp at zero would silently
    # mask double-unregisters, so drift in either direction is a bug).
    expected = 0.0
    for domain in domains.values():
        notes = getattr(domain, "notes", {})
        expected += notes.get("xenstore_client", 0.0) or 0.0
        # A paused guest parks its weight under another key; it is still
        # not ambient load, so only the active registration counts.
    if abs(xenstore.ambient_clients - expected) > 1e-9:
        violations.append(
            "xenstore ambient_clients=%.6f but live domains register "
            "%.6f (unbalanced register/unregister_client)"
            % (xenstore.ambient_clients, expected))


def _check_grants(host, domains, violations) -> None:
    grants = getattr(host.hypervisor, "grants", None)
    if grants is None:
        return
    for (granter, ref), entry in sorted(getattr(grants, "_entries",
                                                {}).items()):
        if granter not in domains:
            violations.append(
                "grant ref %d leaked by dead granter dom%d" % (ref, granter))
        grantee = getattr(entry, "grantee_domid", None)
        if grantee is not None and grantee not in domains:
            violations.append(
                "grant ref %d (dom%d) references dead grantee dom%d"
                % (ref, granter, grantee))


def _check_event_channels(host, domains, violations) -> None:
    table = getattr(host.hypervisor, "event_channels", None)
    if table is None:
        return
    for (domid, port), channel in sorted(getattr(table, "_channels",
                                                 {}).items()):
        if getattr(channel, "state", "") == "closed":
            continue  # half-torn pair awaiting the peer's close: benign
        if domid not in domains:
            violations.append(
                "event channel (dom%d, port %d) leaked by dead owner"
                % (domid, port))
        remote = getattr(channel, "remote_domid", None)
        if remote is not None and remote not in domains:
            violations.append(
                "event channel (dom%d, port %d) bound to dead dom%d"
                % (domid, port, remote))


def _check_memory(host, domains, violations) -> None:
    memory = getattr(host.hypervisor, "memory", None)
    if memory is None:
        return
    owners = set(memory.owners())
    for owner in sorted(owners - set(domains)):
        violations.append(
            "memory extents leaked by dead dom%d (%d KB)"
            % (owner, memory.owned_kb(owner)))
    for domid, domain in sorted(domains.items()):
        owned = memory.owned_kb(domid)
        if owned != domain.memory_kb:
            violations.append(
                "dom%d owns %d KB of extents but claims %d KB"
                % (domid, owned, domain.memory_kb))


def _check_shell_pool(host, domains, violations) -> None:
    from ..hypervisor.domain import DomainState

    daemon = getattr(host, "daemon", None)
    if daemon is None:
        return
    for shell in list(getattr(daemon.pool, "items", [])):
        domain = getattr(shell, "domain", shell)
        domid = getattr(domain, "domid", None)
        if domid not in domains:
            violations.append(
                "shell pool holds dead dom%s" % domid)
        elif domains[domid].state is not DomainState.SHELL:
            violations.append(
                "pooled shell dom%d is in state %s, not SHELL"
                % (domid, domains[domid].state.name))


def _check_bridge(host, domains, violations) -> None:
    bridge = getattr(host, "bridge", None)
    ports = getattr(bridge, "ports", None)
    if not isinstance(ports, dict):
        return
    for devname, domid in sorted(ports.items()):
        if domid not in domains:
            violations.append(
                "bridge port %s leaked by dead dom%d" % (devname, domid))


def _check_recovery_residue(host, violations) -> None:
    """Recovered runs must leave no residue behind (opt-in: only hosts
    built with ``recovery=True`` are held to this).

    After the reaper has run and the simulator drained there must be no
    open intent records (an open intent is a crashed operation nobody
    recovered), the daemon must be back up, no request may still be
    queued on a daemon shard, and the tracer must have no open spans
    (an open span is a process that died mid-operation)."""
    recovery = getattr(host, "recovery", None)
    if recovery is None:
        return
    for intent in recovery.intents.open_intents():
        violations.append(
            "intent #%d (%s %s) still open after recovery%s"
            % (intent.intent_id, intent.op,
               getattr(intent.config, "name", None)
               or getattr(intent.domain, "name", "?"),
               " [crashed at phase %r]" % intent.phase
               if intent.crashed else ""))
    daemon = getattr(host, "xenstore", None)
    if daemon is not None:
        if daemon.crashed:
            violations.append(
                "xenstore daemon still down (epoch %d, %d crash(es), "
                "%d restart(s)) — watchdog never completed the restart"
                % (daemon.epoch, daemon.stats["crashes"],
                   daemon.stats["restarts"]))
        for index, shard in enumerate(daemon._shards):
            queued = len(getattr(shard, "queue", ()))
            if queued:
                violations.append(
                    "daemon shard %d drained with %d request(s) still "
                    "queued" % (index, queued))
    tracer = getattr(host.sim, "tracer", None)
    open_spans = getattr(tracer, "open_spans", None)
    if open_spans is not None:
        for span in open_spans():
            violations.append(
                "tracer span %r opened at t=%.3f never closed"
                % (span.name, span.begin_ms))


def check_host(host) -> typing.List[str]:
    """Audit ``host`` for leaked control-plane state.

    Returns a (possibly empty) list of violation descriptions.
    """
    domains = _live_domains(host)
    violations: typing.List[str] = []
    _check_xenstore(host, domains, violations)
    _check_grants(host, domains, violations)
    _check_event_channels(host, domains, violations)
    _check_memory(host, domains, violations)
    _check_shell_pool(host, domains, violations)
    _check_bridge(host, domains, violations)
    _check_recovery_residue(host, violations)
    return violations


def assert_clean(host) -> None:
    """Raise :class:`InvariantViolation` if :func:`check_host` finds leaks."""
    violations = check_host(host)
    if violations:
        raise InvariantViolation(
            "%d control-plane invariant violation(s):\n  %s"
            % (len(violations), "\n  ".join(violations)))
