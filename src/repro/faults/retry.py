"""Pluggable retry policies: exponential backoff with seeded jitter.

Every control-plane retry loop (transaction conflicts, lost XenStore
messages, hotplug script relaunches, transient hypercall failures) takes a
:class:`RetryPolicy` instead of hard-coding its schedule.  Jitter draws
come from a seeded :class:`~repro.sim.rng.RngStream` handed in by the
caller, so retry timing is bit-reproducible and de-synchronized across
competing clients (no lock-step retry storms).
"""

from __future__ import annotations

import dataclasses
import typing


class RetryExhausted(RuntimeError):
    """An operation kept failing past its retry policy's budget."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with multiplicative jitter and a deadline."""

    #: Give up after this many *retries* (the initial attempt is free).
    max_retries: int = 8
    #: Backoff before the first retry (ms).
    base_ms: float = 0.5
    #: Growth factor per retry.
    multiplier: float = 2.0
    #: Ceiling on a single backoff (ms).
    cap_ms: float = 64.0
    #: Symmetric jitter fraction: the delay is scaled by a uniform draw
    #: from [1 - jitter, 1 + jitter].  0 disables jitter.
    jitter: float = 0.25
    #: Optional wall-clock budget (simulated ms) across all retries; when
    #: exceeded the loop gives up even with retries remaining.
    deadline_ms: typing.Optional[float] = None

    def backoff_ms(self, retry: int, rng=None) -> float:
        """Delay before the ``retry``-th retry (1-based)."""
        delay = min(self.cap_ms,
                    self.base_ms * self.multiplier ** max(0, retry - 1))
        if rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)

    def give_up(self, retry: int, started_ms: float, now_ms: float) -> bool:
        """Should the loop stop instead of retrying again?"""
        if retry > self.max_retries:
            return True
        return (self.deadline_ms is not None
                and now_ms - started_ms > self.deadline_ms)


#: A patient policy for rollback paths: cleanup must not give up while a
#: transient fault window passes, or partially-created state would leak.
ROLLBACK_POLICY = RetryPolicy(max_retries=50, base_ms=0.5, cap_ms=32.0)


def retry_call(sim, policy: RetryPolicy, rng, fn: typing.Callable,
               retryable: typing.Tuple[type, ...]):
    """Generator: call ``fn()`` (synchronous), retrying on ``retryable``.

    Backs off between attempts per ``policy``; re-raises the last error
    once the policy gives up.
    """
    retry = 0
    started = sim.now
    while True:
        try:
            return fn()
        except retryable:
            retry += 1
            if policy.give_up(retry, started, sim.now):
                raise
            yield sim.timeout(policy.backoff_ms(retry, rng))


def retry_generator(sim, policy: RetryPolicy, rng, make_gen,
                    retryable: typing.Tuple[type, ...]):
    """Generator: drive ``make_gen()`` (a generator factory), retrying on
    ``retryable`` with backoff.  Used for simulation-process bodies that
    can fail transiently, e.g. a XenStore removal during rollback."""
    retry = 0
    started = sim.now
    while True:
        try:
            return (yield from make_gen())
        except retryable:
            retry += 1
            if policy.give_up(retry, started, sim.now):
                raise
            yield sim.timeout(policy.backoff_ms(retry, rng))
