"""Pluggable retry policies: exponential backoff with seeded jitter.

Every control-plane retry loop (transaction conflicts, lost XenStore
messages, hotplug script relaunches, transient hypercall failures) takes a
:class:`RetryPolicy` instead of hard-coding its schedule.  Jitter draws
come from a seeded :class:`~repro.sim.rng.RngStream` handed in by the
caller, so retry timing is bit-reproducible and de-synchronized across
competing clients (no lock-step retry storms).
"""

from __future__ import annotations

import dataclasses
import typing


class RetryExhausted(RuntimeError):
    """An operation kept failing past its retry policy's budget."""


class RetryBudgetExhausted(RetryExhausted):
    """An operation's cumulative backoff budget was spent.

    Distinct from plain :class:`RetryExhausted` (which counts attempts):
    this one bounds the total *backoff time* one operation may burn, so
    a recovery storm — many clients retrying against a daemon that just
    restarted — cannot pile unbounded simulated hours of sleep onto a
    single request.  Raised by the retry helpers when the next backoff
    would push the cumulative sleep past ``RetryPolicy.budget_ms``."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with multiplicative jitter and a deadline."""

    #: Give up after this many *retries* (the initial attempt is free).
    max_retries: int = 8
    #: Backoff before the first retry (ms).
    base_ms: float = 0.5
    #: Growth factor per retry.
    multiplier: float = 2.0
    #: Ceiling on a single backoff (ms).
    cap_ms: float = 64.0
    #: Symmetric jitter fraction: the delay is scaled by a uniform draw
    #: from [1 - jitter, 1 + jitter].  0 disables jitter.
    jitter: float = 0.25
    #: Optional wall-clock budget (simulated ms) across all retries; when
    #: exceeded the loop gives up even with retries remaining.
    deadline_ms: typing.Optional[float] = None
    #: Optional cap on the *cumulative backoff* one operation may sleep
    #: (simulated ms, summed over all its retries).  ``None`` — the
    #: default everywhere, which keeps existing replay digests unchanged
    #: — disables the cap; a finite value makes the retry helpers raise
    #: :class:`RetryBudgetExhausted` instead of scheduling a backoff
    #: that would overspend it.
    budget_ms: typing.Optional[float] = None

    def backoff_ms(self, retry: int, rng=None) -> float:
        """Delay before the ``retry``-th retry (1-based)."""
        delay = min(self.cap_ms,
                    self.base_ms * self.multiplier ** max(0, retry - 1))
        if rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)

    def give_up(self, retry: int, started_ms: float, now_ms: float) -> bool:
        """Should the loop stop instead of retrying again?"""
        if retry > self.max_retries:
            return True
        return (self.deadline_ms is not None
                and now_ms - started_ms > self.deadline_ms)

    def over_budget(self, slept_ms: float, next_delay_ms: float) -> bool:
        """Would sleeping ``next_delay_ms`` overspend the backoff budget?

        ``slept_ms`` is the backoff this operation has already paid.  The
        check runs *before* the sleep is scheduled, so a loop never burns
        part of a backoff it cannot afford."""
        return (self.budget_ms is not None
                and slept_ms + next_delay_ms > self.budget_ms)


#: A patient policy for rollback paths: cleanup must not give up while a
#: transient fault window passes, or partially-created state would leak.
ROLLBACK_POLICY = RetryPolicy(max_retries=50, base_ms=0.5, cap_ms=32.0)


def retry_call(sim, policy: RetryPolicy, rng, fn: typing.Callable,
               retryable: typing.Tuple[type, ...]):
    """Generator: call ``fn()`` (synchronous), retrying on ``retryable``.

    Backs off between attempts per ``policy``; re-raises the last error
    once the policy gives up.
    """
    retry = 0
    started = sim.now
    slept = 0.0
    while True:
        try:
            return fn()
        except retryable as exc:
            retry += 1
            if policy.give_up(retry, started, sim.now):
                raise
            delay = policy.backoff_ms(retry, rng)
            if policy.over_budget(slept, delay):
                raise RetryBudgetExhausted(
                    "retry backoff budget (%.1f ms) spent after %d retries"
                    % (policy.budget_ms, retry - 1)) from exc
            slept += delay
            yield sim.timeout(delay)


def retry_generator(sim, policy: RetryPolicy, rng, make_gen,
                    retryable: typing.Tuple[type, ...]):
    """Generator: drive ``make_gen()`` (a generator factory), retrying on
    ``retryable`` with backoff.  Used for simulation-process bodies that
    can fail transiently, e.g. a XenStore removal during rollback."""
    retry = 0
    started = sim.now
    slept = 0.0
    while True:
        try:
            return (yield from make_gen())
        except retryable as exc:
            retry += 1
            if policy.give_up(retry, started, sim.now):
                raise
            delay = policy.backoff_ms(retry, rng)
            if policy.over_budget(slept, delay):
                raise RetryBudgetExhausted(
                    "retry backoff budget (%.1f ms) spent after %d retries"
                    % (policy.budget_ms, retry - 1)) from exc
            slept += delay
            yield sim.timeout(delay)
