"""Static datasets referenced by the paper's motivation figures."""

from .syscalls import SYSCALL_HISTORY, counts_by_year, growth_per_year

__all__ = ["SYSCALL_HISTORY", "counts_by_year", "growth_per_year"]
