"""Linux x86_32 syscall counts over time (Figure 1).

"The unrelenting growth of the Linux syscall API over the years (x86_32)
underlines the difficulty of securing containers."  One data point per
kernel release year, following the i386 syscall table's growth from the
2.5 series (~240 entries) to the 4.x series (~380+).
"""

from __future__ import annotations

import typing

#: (year, release, syscall count on x86_32).
SYSCALL_HISTORY: typing.List[typing.Tuple[int, str, int]] = [
    (2002, "2.5.40", 237),
    (2003, "2.6.0", 256),
    (2004, "2.6.9", 283),
    (2005, "2.6.14", 294),
    (2006, "2.6.19", 312),
    (2007, "2.6.23", 322),
    (2008, "2.6.27", 327),
    (2009, "2.6.31", 333),
    (2010, "2.6.36", 338),
    (2011, "3.1", 345),
    (2012, "3.7", 348),
    (2013, "3.12", 350),
    (2014, "3.17", 354),
    (2015, "4.3", 364),
    (2016, "4.9", 376),
    (2017, "4.14", 384),
]


def counts_by_year() -> typing.List[typing.Tuple[int, int]]:
    """(year, syscall count) pairs — the Figure 1 series."""
    return [(year, count) for year, _release, count in SYSCALL_HISTORY]


def growth_per_year() -> float:
    """Mean syscalls added per year over the covered span."""
    first_year, _r, first = SYSCALL_HISTORY[0]
    last_year, _r2, last = SYSCALL_HISTORY[-1]
    return (last - first) / (last_year - first_year)
