"""The XenStore daemon (oxenstored model, worker-pool capable).

Ties the tree, watches, transactions and access log together behind the
message protocol.  All public operations are **generators** meant to be
driven inside a simulation process — normally via a
:class:`repro.xenstore.client.XsClient` handle (``yield from
client.write(...)``): they serialize on the daemon's worker shards,
charge protocol latency, fire watches and write log lines — reproducing
every §4.2 overhead:

* per-op message/ack round trips (software interrupts + domain crossings);
* watch scans over a registry that grows with the number of VMs;
* the O(N) unique-name admission check;
* transaction conflicts that force clients to retry;
* log rotation spikes;
* queueing inflation as ambient guest traffic loads the daemon.

The default ``workers=1`` is the paper-faithful oxenstored: a single
worker thread all requests serialize on (byte-identical EventTrace
digests vs the frozen pre-redesign daemon are pinned by
``tests/test_xenstore_digest_identity.py``).  ``workers > 1`` models a
sharded store — each ``/local/domain/<id>`` subtree is pinned to one
shard, ops acquire their shard locks in ascending index order
(deterministic, deadlock-free), and global ops (unique-name admission,
transaction commit validation) take every shard.  ``batch_ops=True``
additionally lets clients coalesce N mutations into a single message
round trip (:meth:`XenStoreDaemon.apply_batch`).

The pre-redesign ``op_*`` / ``tx_*`` method names remain as thin
deprecation shims that forward to the canonical verbs; new code goes
through :class:`repro.xenstore.client.XsClient`.
"""

from __future__ import annotations

import functools
import math
import typing
import warnings
import zlib

from ..faults.plan import (NULL_INJECTOR, DaemonRestarted, MessageTimeout,
                           Overloaded)
from ..faults.retry import RetryBudgetExhausted, RetryPolicy
from ..sim.resources import Resource
from ..trace.tracer import tracer_of
from .accesslog import AccessLog
from .protocol import XenStoreCosts
from .store import NoEntError, XenStoreTree, split_path
from .transaction import Transaction, TransactionConflict
from .watches import Watch, WatchManager

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


def _traced(name: str):
    """Wrap a generator op so it runs inside a ``xenstore.<op>`` span
    (a no-op when no tracer is attached to the simulator)."""
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if self.sim.tracer is None:
                # Fast path: skip the context manager and the null-span
                # allocation entirely — XenStore ops are the hottest
                # generator stack in a creation storm.
                return (yield from fn(self, *args, **kwargs))
            with tracer_of(self.sim).span(name):
                result = yield from fn(self, *args, **kwargs)
            return result
        return wrapper
    return decorate


class DuplicateNameError(RuntimeError):
    """A guest with this name already exists."""


class QuotaExceededError(RuntimeError):
    """A guest hit its per-domain node quota (E2BIG)."""


class BatchError(ValueError):
    """A malformed batch was submitted (unknown op kind)."""


#: Valid op kinds inside a coalesced batch message.
_BATCH_KINDS = ("write", "mkdir", "rm")


class XenStoreDaemon:
    """oxenstored/cxenstored behind the Xen bus protocol."""

    def __init__(self, sim: "Simulator",
                 costs: typing.Optional[XenStoreCosts] = None,
                 implementation: str = "oxenstored",
                 log_enabled: bool = True,
                 rng: typing.Optional[typing.Any] = None,
                 enforce_permissions: bool = False,
                 faults=None,
                 retry_policy: typing.Optional[RetryPolicy] = None,
                 workers: int = 1,
                 batch_ops: bool = False,
                 queue_cap: typing.Optional[int] = None):
        if implementation not in ("oxenstored", "cxenstored"):
            raise ValueError("unknown implementation %r" % implementation)
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % (workers,))
        self.sim = sim
        self.costs = costs or XenStoreCosts()
        #: RNG stream for ambient-conflict draws (None disables them).
        self.rng = rng
        #: Fault injector consulted at ``xenstore.*`` fault points.
        self.faults = faults if faults is not None else NULL_INJECTOR
        #: Resend schedule for lost message acks (``xenstore.message``).
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=8, base_ms=0.5, multiplier=2.0, cap_ms=8.0,
            jitter=0.25)
        #: When True, reads/writes are checked against node ACLs
        #: (xenstored always enforces; benchmarks leave it off since the
        #: per-op permission arithmetic is already inside process_us).
        self.enforce_permissions = enforce_permissions
        self.implementation = implementation
        #: Worker-pool width.  1 = the paper's single-threaded oxenstored.
        self.workers = workers
        #: When True, :meth:`apply_batch` coalesces N ops into one round
        #: trip; when False it degrades to N canonical round trips.
        self.batch_ops = batch_ops
        self.tree = XenStoreTree()
        self.watches = WatchManager()
        self.log = AccessLog(enabled=log_enabled)
        #: Worker shards; requests serialize per shard.  With one worker
        #: this is exactly the pre-redesign single-threaded daemon.
        self._shards = [
            Resource(sim, capacity=1, name="xenstore.shard[%d]" % index)
            for index in range(workers)
        ]
        self._next_tx_id = 1
        #: Weighted count of connected running guests generating ambient
        #: traffic (see :meth:`register_client`).
        self.ambient_clients = 0.0
        self.stats = {
            "ops": 0,
            "commits": 0,
            "conflicts": 0,
            "watch_events": 0,
            "rotation_stalls": 0,
            "timeouts": 0,
            "watch_drops": 0,
            "batches": 0,
            "batched_ops": 0,
            "crashes": 0,
            "restarts": 0,
            "replayed": 0,
            "shed": 0,
        }
        #: Nodes created per guest domain (quota accounting).
        self._node_counts: typing.Dict[int, int] = {}
        #: Admission control: requests queued per shard beyond this depth
        #: are shed with :class:`~repro.faults.plan.Overloaded` (None =
        #: unbounded, the pre-recovery behaviour).
        self.queue_cap = queue_cap
        #: Write-ahead op journal (attached by the recovery layer via
        #: :meth:`attach_journal`; None = no crash model, zero overhead —
        #: the ``xenstore.daemon_crash`` fault point is never consulted).
        self.journal = None
        self.journal_costs = None
        #: Restart epoch: bumped on every crash.  Transactions stamped
        #: with an older epoch are invalidated with
        #: :class:`~repro.faults.plan.DaemonRestarted`.
        self.epoch = 0
        self._crashed = False
        #: Triggered when the daemon crashes (the watchdog waits on it);
        #: re-armed by :meth:`restart`.  None until a journal is attached.
        self.crash_event = None
        #: Triggered when a restart completes; requests arriving while
        #: the daemon is down park on it (queued, then resumed).
        self._resume_event = None

    @property
    def worker(self) -> Resource:
        """Compat alias: the first shard (with ``workers=1``, *the*
        single oxenstored worker thread of the pre-redesign daemon)."""
        return self._shards[0]

    def _charge_quota(self, domid: int, path: str) -> None:
        """Count a node creation against the writer's quota."""
        if domid == 0 or not self.costs.quota_nodes_per_domain:
            return
        if self.tree.exists(path):
            return  # overwrite, not creation
        count = self._node_counts.get(domid, 0)
        if count >= self.costs.quota_nodes_per_domain:
            raise QuotaExceededError(
                "domain %d exceeded its %d-node XenStore quota"
                % (domid, self.costs.quota_nodes_per_domain))
        self._node_counts[domid] = count + 1
        if self.journal is not None:
            self.journal.record_quota(domid, 1)

    def _release_quota(self, owner: int, removed: int) -> None:
        """Return removed nodes to their owner's quota (xenstored
        decrements on delete)."""
        if removed and owner and owner in self._node_counts:
            count = self._node_counts[owner]
            self._node_counts[owner] = max(0, count - removed)
            if self.journal is not None:
                self.journal.record_quota(
                    owner, self._node_counts[owner] - count)

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------
    def _impl_factor(self) -> float:
        if self.implementation == "cxenstored":
            return self.costs.cxenstored_multiplier
        return 1.0

    def _load_factor(self) -> float:
        """Queueing inflation from ambient guest traffic: 1 / (1 - rho).

        Ambient traffic spreads across the shards (guests hash to shards
        by domid), so per-worker utilisation divides by the pool width;
        with ``workers=1`` this is exactly the pre-redesign formula.
        """
        rho = min(self.costs.ambient_util_cap,
                  self.ambient_clients * self.costs.ambient_util_per_client
                  / self.workers)
        return 1.0 / (1.0 - rho)

    def _op_latency_ms(self, extra_us: float = 0.0) -> float:
        base = self.costs.op_base_ms() + extra_us / 1000.0
        return base * self._impl_factor() * self._load_factor()

    def register_client(self, weight: float = 1.0) -> None:
        """A guest connected its xenbus (it is now running).

        ``weight`` scales how much ambient traffic this client generates:
        a Debian guest with consoles and daemons is several times chattier
        than a single-purpose unikernel.
        """
        self.ambient_clients += weight
        if self.journal is not None:
            self.journal.record_register(weight)

    def unregister_client(self, weight: float = 1.0) -> None:
        """A guest disconnected (destroyed/suspended)."""
        self.ambient_clients = max(0.0, self.ambient_clients - weight)
        if self.journal is not None:
            self.journal.record_unregister(weight)

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------
    def _shard_index(self, path: typing.Optional[str]) -> int:
        """Deterministically pin ``path`` to one worker shard.

        Guest subtrees (``/local/domain/<id>``) hash by domid so one
        guest's control traffic stays on one shard; Dom0's per-guest
        backend state (``/local/domain/0/backend/<kind>/<frontend>/…``)
        follows the *frontend* guest so a device handshake never
        straddles shards.  Everything else hashes its first path
        component through crc32 (stable across processes — no salted
        ``hash()``).
        """
        if self.workers == 1 or path is None:
            return 0
        parts = split_path(path)
        if len(parts) >= 3 and parts[0] == "local" and parts[1] == "domain":
            if (len(parts) >= 6 and parts[2] == "0"
                    and parts[3] == "backend" and parts[5].isdigit()):
                return int(parts[5]) % self.workers
            if parts[2].isdigit():
                return int(parts[2]) % self.workers
        if len(parts) >= 2 and parts[0] == "vm" and parts[1].isdigit():
            return int(parts[1]) % self.workers
        head = parts[0] if parts else ""
        return zlib.crc32(head.encode("utf-8")) % self.workers

    def _shards_for(self, paths) -> typing.Tuple[int, ...]:
        """Ascending, de-duplicated shard indices for a path set."""
        if self.workers == 1:
            return (0,)
        return tuple(sorted({self._shard_index(p) for p in paths}))

    #: Sentinel shard set meaning "every shard" (global ops).
    def _all_shards(self) -> typing.Tuple[int, ...]:
        return tuple(range(self.workers))

    # ------------------------------------------------------------------
    # Crash / restart (the journaled-recovery model)
    # ------------------------------------------------------------------
    def attach_journal(self, journal, costs=None) -> None:
        """Attach a write-ahead journal, enabling the crash model.

        From here on every committed effect is journaled, and the
        ``xenstore.daemon_crash`` fault point is consulted on each op.
        Hosts that never call this are byte-identical to pre-recovery
        builds (the point is never consulted, so existing fault plans
        keep their schedules)."""
        from ..recovery.journal import JournalCosts
        self.journal = journal
        self.journal_costs = costs or JournalCosts()
        if self.crash_event is None:
            self.crash_event = self.sim.event()

    @property
    def crashed(self) -> bool:
        """True while the daemon is down awaiting its watchdog restart."""
        return self._crashed

    def _crash(self) -> None:
        """The daemon process dies mid-op.

        Bumps the epoch (invalidating open transactions), marks the
        daemon down and wakes the watchdog.  State reconstruction — the
        journal replay — happens in :meth:`restart`, driven by the
        watchdog process so downtime is on the timeline."""
        self.epoch += 1
        self._crashed = True
        self.stats["crashes"] += 1
        self._resume_event = self.sim.event()
        event, self.crash_event = self.crash_event, None
        if event is not None and not event.triggered:
            event.succeed(self.epoch)

    def restart(self):
        """Generator: replay the journal and bring the daemon back.

        Driven by the watchdog (:class:`repro.recovery.Watchdog`).
        Charges the restart downtime plus per-entry replay and per-watch
        reconciliation latency, rebuilds the tree / quota counts /
        ambient weights from the journal, then resumes every request
        that queued while the daemon was down."""
        costs = self.journal_costs
        with tracer_of(self.sim).span("recovery.restart",
                                      entries=len(self.journal),
                                      epoch=self.epoch):
            yield self.sim.timeout(costs.restart_downtime_ms)
            replay_ms = (len(self.journal) * costs.replay_us_per_entry
                         + len(self.watches) * costs.watch_reconcile_us
                         ) / 1000.0
            if replay_ms:
                yield self.sim.timeout(replay_ms)
            tree, counts, ambient = self.journal.replay()
            self.tree = tree
            self._node_counts = counts
            self.ambient_clients = ambient
            self.stats["restarts"] += 1
            self.stats["replayed"] += len(self.journal)
            self._crashed = False
            self.crash_event = self.sim.event()
            event, self._resume_event = self._resume_event, None
            if event is not None:
                event.succeed()

    def _check_tx_epoch(self, tx: Transaction) -> None:
        """Invalidate transactions opened before the last restart: their
        snapshot (and their ``tx.tree`` reference) predate the replay."""
        if self.journal is not None and \
                getattr(tx, "epoch", self.epoch) != self.epoch:
            raise DaemonRestarted(
                "transaction %d predates the daemon restart (epoch %d)"
                % (tx.tx_id, self.epoch))

    # ------------------------------------------------------------------
    # Internal mutation plumbing
    # ------------------------------------------------------------------
    def _charge(self, extra_us: float = 0.0, path: typing.Optional[str] = None,
                shards: typing.Optional[typing.Tuple[int, ...]] = None):
        """Generator: hold the op's worker shard(s) and charge latency.

        Single-shard ops (the common case, and *every* op at
        ``workers=1``) keep the pre-redesign shape exactly: acquire one
        Resource, charge one timeout.  Multi-shard ops acquire their
        shard locks in ascending index order — the deterministic
        dispatch order that makes ``workers>1`` replayable — and release
        in reverse.

        Under fault injection the ``xenstore.message`` point models a lost
        ack: the client waits out its message timeout (without holding the
        worker), backs off, and resends — each resend pays the full op
        latency again.  Past the retry budget, :class:`MessageTimeout`.
        """
        if shards is None:
            shards = (self._shard_index(path),)
        if self._crashed:
            # The daemon is down: this request parks at the (dead)
            # socket and resumes once the watchdog restarted the daemon.
            yield self._resume_event
        if self.queue_cap is not None:
            depth = max(len(self._shards[i].queue) for i in shards)
            if depth >= self.queue_cap:
                # Deterministic load shedding: queue depth is a pure
                # function of the event timeline, so the same requests
                # shed on every replay.
                self.stats["shed"] += 1
                raise Overloaded(
                    "xenstore admission queue full (depth %d >= cap %d)"
                    % (depth, self.queue_cap))
        attempt = 0
        slept = 0.0
        while True:
            if len(shards) == 1:
                with self._shards[shards[0]].request() as req:
                    yield req
                    yield self.sim.timeout(self._op_latency_ms(extra_us))
            else:
                yield from self._acquire_shards(shards, extra_us)
            self.stats["ops"] += 1
            if self.journal is not None:
                if self.faults.fires("xenstore.daemon_crash") is not None:
                    self._crash()
                    raise DaemonRestarted(
                        "xenstore daemon crashed servicing this request")
                if self._crashed:
                    # Another shard's request crashed the daemon while
                    # this one held its lock: it was in flight, so it
                    # fails typed rather than parking.
                    raise DaemonRestarted(
                        "xenstore daemon crashed while this request "
                        "was in flight")
            rule = self.faults.fires("xenstore.message")
            if rule is None:
                return
            self.stats["timeouts"] += 1
            yield self.sim.timeout(rule.delay_ms
                                   or self.costs.message_timeout_ms)
            attempt += 1
            if attempt >= self.retry_policy.max_retries:
                raise MessageTimeout(
                    "XenStore message unacknowledged after %d resends"
                    % attempt)
            delay = self.retry_policy.backoff_ms(attempt, self.rng)
            if self.retry_policy.over_budget(slept, delay):
                raise RetryBudgetExhausted(
                    "XenStore resend backoff budget (%.1f ms) spent"
                    % self.retry_policy.budget_ms)
            slept += delay
            yield self.sim.timeout(delay)

    def _acquire_shards(self, shards: typing.Tuple[int, ...],
                        extra_us: float):
        """Generator: take several shard locks (ascending order) for one
        charged op, releasing all of them afterwards."""
        tracer = self.sim.tracer
        requests = []
        try:
            if tracer is None:
                for index in shards:
                    request = self._shards[index].request()
                    requests.append(request)
                    yield request
            else:
                with tracer_of(self.sim).span("xenstore.shard_wait",
                                              shards=len(shards)):
                    for index in shards:
                        request = self._shards[index].request()
                        requests.append(request)
                        yield request
            yield self.sim.timeout(self._op_latency_ms(extra_us))
        finally:
            for request in reversed(requests):
                request.resource.release(request)

    def _log_access(self, lines: int = 1):
        """Generator: write log lines, stalling on rotation."""
        rotated = self.log.record(self.costs.log_lines_per_op * lines)
        if rotated:
            self.stats["rotation_stalls"] += 1
            yield self.sim.timeout(self.costs.log_rotation_ms)

    def _fire_watches(self, path: str):
        """Generator: scan the registry and deliver matching events."""
        scan_us = len(self.watches) * self.costs.watch_scan_us
        rule = self.faults.fires("xenstore.watch")
        if rule is not None:
            # The delivery is dropped: the daemon still pays the scan but
            # no waiter is woken — they must time out and re-announce.
            self.stats["watch_drops"] += 1
            delay = (scan_us / 1000.0 * self._impl_factor()
                     * self._load_factor() + rule.delay_ms)
            if delay:
                yield self.sim.timeout(delay)
            return
        fired = self.watches.fire(path)
        deliver_us = len(fired) * self.costs.watch_deliver_us
        self.stats["watch_events"] += len(fired)
        if fired:
            tracer_of(self.sim).instant("xenstore.watch_fire",
                                        delivered=len(fired))
        delay = (scan_us + deliver_us) / 1000.0 * self._impl_factor()
        if delay:
            yield self.sim.timeout(delay * self._load_factor())

    # ------------------------------------------------------------------
    # Simple (non-transactional) operations
    # ------------------------------------------------------------------
    def _check_access(self, domid: int, path: str, write: bool) -> None:
        if not self.enforce_permissions or domid == 0:
            return
        if not self.tree.exists(path):
            return  # creation is governed by the parent in real Xen;
            # we allow it and let the new node inherit the writer
        from .permissions import PermissionError_
        perms = self.tree.get_perms(path)
        allowed = (perms.allows_write(domid) if write
                   else perms.allows_read(domid))
        if not allowed:
            raise PermissionError_(
                "domain %d may not %s %s" % (
                    domid, "write" if write else "read", path))

    @_traced("xenstore.read")
    def read(self, domid: int, path: str):
        """Generator: XS_READ."""
        yield from self._charge(path=path)
        self._check_access(domid, path, write=False)
        yield from self._log_access()
        return self.tree.read(path)

    @_traced("xenstore.write")
    def write(self, domid: int, path: str, value: str):
        """Generator: XS_WRITE (fires watches)."""
        yield from self._charge(path=path)
        self._check_access(domid, path, write=True)
        self._charge_quota(domid, path)
        self.tree.write(path, value, owner_domid=domid)
        if self.journal is not None:
            self.journal.record_write(domid, path, value)
        yield from self._fire_watches(path)
        yield from self._log_access()

    @_traced("xenstore.get_perms")
    def get_perms(self, domid: int, path: str):
        """Generator: XS_GET_PERMS."""
        yield from self._charge(path=path)
        yield from self._log_access()
        return self.tree.get_perms(path)

    @_traced("xenstore.set_perms")
    def set_perms(self, domid: int, path: str, perms):
        """Generator: XS_SET_PERMS (owner or Dom0 only)."""
        yield from self._charge(path=path)
        current = self.tree.get_perms(path)
        if domid != 0 and domid != current.owner_domid:
            from .permissions import PermissionError_
            raise PermissionError_(
                "domain %d does not own %s" % (domid, path))
        self.tree.set_perms(path, perms)
        if self.journal is not None:
            self.journal.record_perms(domid, path, perms)
        yield from self._log_access()

    @_traced("xenstore.mkdir")
    def mkdir(self, domid: int, path: str):
        """Generator: XS_MKDIR."""
        yield from self._charge(path=path)
        self.tree.mkdir(path, owner_domid=domid)
        if self.journal is not None:
            self.journal.record_mkdir(domid, path)
        yield from self._fire_watches(path)
        yield from self._log_access()

    @_traced("xenstore.rm")
    def rm(self, domid: int, path: str):
        """Generator: XS_RM (recursive; fires watches)."""
        yield from self._charge(path=path)
        try:
            owner = self.tree._walk(path).owner_domid
            removed = self.tree.rm(path)
            if self.journal is not None:
                self.journal.record_rm(path)
            self._release_quota(owner, removed)
        except NoEntError:
            removed = 0
        if removed:
            yield from self._fire_watches(path)
        yield from self._log_access()
        return removed

    @_traced("xenstore.directory")
    def directory(self, domid: int, path: str):
        """Generator: XS_DIRECTORY."""
        yield from self._charge(path=path)
        yield from self._log_access()
        return self.tree.directory(path)

    @_traced("xenstore.watch")
    def watch(self, domid: int, path: str, token: str, callback):
        """Generator: XS_WATCH registration."""
        yield from self._charge(path=path)
        watch = self.watches.add(domid, path, token, callback)
        yield from self._log_access()
        return watch

    @_traced("xenstore.unwatch")
    def unwatch(self, domid: int, watch: Watch):
        """Generator: XS_UNWATCH."""
        yield from self._charge(path=watch.path)
        self.watches.remove(watch)
        yield from self._log_access()

    # ------------------------------------------------------------------
    # The O(N) unique-name admission check
    # ------------------------------------------------------------------
    @_traced("xenstore.check_unique_name")
    def check_unique_name(self, domid: int, name: str):
        """Generator: compare ``name`` against every running guest's name.

        §4.2: "writing certain types of information, such as unique guest
        names, incurs overhead linear with the number of machines."
        """
        # The *modeled* cost is the §4.2 linear scan: one probe per
        # registered domain.  The *host* cost is O(1) via the tree's
        # name-admission index — equivalent to the scan as long as no
        # concurrent name mutation lands while this op waits its turn on
        # the worker (creations serialize on it; the dual-kernel digest
        # tests pin the equivalence on the figure workloads).
        scan_us = ((self.tree.child_count("/local/domain") + 1)
                   * self.costs.per_node_scan_us)
        # Name admission is global: it must see every shard's subtree,
        # so it takes the whole pool (at workers=1: the one worker).
        yield from self._charge(extra_us=scan_us, shards=self._all_shards())
        if self.tree.name_in_use(name):
            raise DuplicateNameError(name)
        yield from self._log_access()

    # ------------------------------------------------------------------
    # Batched mutations (one message round trip for N ops)
    # ------------------------------------------------------------------
    @_traced("xenstore.batch")
    def apply_batch(self, domid: int, ops):
        """Generator: apply ``ops`` — ``(kind, path, value)`` tuples with
        kind in ``{"write", "mkdir", "rm"}`` — as one message round trip.

        Semantics match the sequential equivalent except for cost: the
        batch pays one ``op_base_ms`` round trip plus ``batch_op_us`` per
        additional op instead of N full round trips.  The batch is
        atomic: every op is validated (path syntax, ACLs, quota — charged
        per *node created*, not per batch) before anything mutates the
        tree, so a failing op leaves the store untouched.  Watches fire
        once per effective mutation, in op order.

        With ``batch_ops=False`` the batch degrades to the canonical
        per-op round trips — digest-identical to the unbatched call
        sites, which is what keeps ``workers=1`` replays byte-identical.
        Returns the list of modified paths.
        """
        ops = list(ops)
        if not ops:
            return []
        if not self.batch_ops:
            # Even the degraded (sequential) path validates kinds up
            # front: a malformed op must reject the whole batch before
            # any mutation, watch event or quota charge — not fail
            # mid-way with the earlier ops already applied.
            for kind, _path, _value in ops:
                if kind not in _BATCH_KINDS:
                    raise BatchError("unknown batch op kind %r" % (kind,))
            modified = []
            for kind, path, value in ops:
                if kind == "write":
                    yield from self.write(domid, path, value)
                    modified.append(path)
                elif kind == "mkdir":
                    yield from self.mkdir(domid, path)
                    modified.append(path)
                else:
                    if (yield from self.rm(domid, path)):
                        modified.append(path)
            return modified
        # --- one coalesced round trip -------------------------------
        shards = self._shards_for(path for _kind, path, _value in ops)
        extra_us = self.costs.batch_op_us * (len(ops) - 1)
        yield from self._charge(extra_us=extra_us, shards=shards)
        # Validate everything before mutating anything: a batch is
        # atomic, so a quota/permission/path failure must not leak the
        # ops that preceded it.
        new_nodes = 0
        staged_new: typing.Set[str] = set()
        staged_rm: typing.Set[str] = set()
        for kind, path, value in ops:
            if kind not in _BATCH_KINDS:
                raise BatchError("unknown batch op kind %r" % (kind,))
            split_path(path)
            if kind == "rm":
                staged_rm.add(path)
                continue
            self._check_access(domid, path, write=True)
            exists = ((self.tree.exists(path) or path in staged_new)
                      and path not in staged_rm)
            if not exists:
                staged_new.add(path)
                new_nodes += 1
            staged_rm.discard(path)
        if (domid != 0 and self.costs.quota_nodes_per_domain
                and new_nodes):
            count = self._node_counts.get(domid, 0)
            if count + new_nodes > self.costs.quota_nodes_per_domain:
                raise QuotaExceededError(
                    "domain %d exceeded its %d-node XenStore quota"
                    % (domid, self.costs.quota_nodes_per_domain))
            self._node_counts[domid] = count + new_nodes
            if self.journal is not None:
                self.journal.record_quota(domid, new_nodes)
        modified = []
        for kind, path, value in ops:
            if kind == "write":
                self.tree.write(path, value, owner_domid=domid)
                if self.journal is not None:
                    self.journal.record_write(domid, path, value)
                modified.append(path)
            elif kind == "mkdir":
                self.tree.mkdir(path, owner_domid=domid)
                if self.journal is not None:
                    self.journal.record_mkdir(domid, path)
                modified.append(path)
            else:
                try:
                    owner = self.tree._walk(path).owner_domid
                    removed = self.tree.rm(path)
                    if self.journal is not None:
                        self.journal.record_rm(path)
                    self._release_quota(owner, removed)
                except NoEntError:
                    removed = 0
                if removed:
                    modified.append(path)
        self.stats["batches"] += 1
        self.stats["batched_ops"] += len(ops)
        for path in modified:
            yield from self._fire_watches(path)
        yield from self._log_access(lines=len(ops))
        return modified

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    @_traced("xenstore.txn_start")
    def transaction_start(self, domid: int):
        """Generator: XS_TRANSACTION_START; returns a Transaction."""
        yield from self._charge(extra_us=self.costs.txn_overhead_us)
        tx = Transaction(self.tree, self._next_tx_id, domid)
        tx.opened_at = self.sim.now
        tx.epoch = self.epoch
        self._next_tx_id += 1
        return tx

    @_traced("xenstore.tx_read")
    def txn_read(self, tx: Transaction, path: str):
        """Generator: XS_READ inside a transaction."""
        yield from self._charge(path=path)
        self._check_tx_epoch(tx)
        yield from self._log_access()
        return tx.read(path)

    @_traced("xenstore.tx_exists")
    def txn_exists(self, tx: Transaction, path: str):
        """Generator: existence check inside a transaction."""
        yield from self._charge(path=path)
        self._check_tx_epoch(tx)
        yield from self._log_access()
        return tx.exists(path)

    @_traced("xenstore.tx_write")
    def txn_write(self, tx: Transaction, path: str, value: str):
        """Generator: XS_WRITE inside a transaction (staged)."""
        yield from self._charge(path=path)
        self._check_tx_epoch(tx)
        tx.write(path, value)
        yield from self._log_access()

    @_traced("xenstore.tx_rm")
    def txn_rm(self, tx: Transaction, path: str):
        """Generator: XS_RM inside a transaction (staged)."""
        yield from self._charge(path=path)
        self._check_tx_epoch(tx)
        tx.rm(path)
        yield from self._log_access()

    @_traced("xenstore.batch")
    def txn_flush_staged(self, tx: Transaction, staged):
        """Generator: stage ``(kind, path, value)`` ops — kind in
        ``{"write", "rm"}`` — into ``tx`` with one batched round trip.

        The batched counterpart of N ``txn_write``/``txn_rm`` round
        trips; used by :class:`repro.xenstore.client.XsTxn` when the
        daemon was built with ``batch_ops=True``.  Falls back to the
        canonical per-op round trips otherwise.
        """
        staged = list(staged)
        if not staged:
            return
        self._check_tx_epoch(tx)
        if not self.batch_ops:
            for kind, path, value in staged:
                if kind == "write":
                    yield from self.txn_write(tx, path, value)
                elif kind == "rm":
                    yield from self.txn_rm(tx, path)
                else:
                    raise BatchError("unknown txn op kind %r" % (kind,))
            return
        shards = self._shards_for(path for _kind, path, _value in staged)
        extra_us = self.costs.batch_op_us * (len(staged) - 1)
        yield from self._charge(extra_us=extra_us, shards=shards)
        for kind, path, value in staged:
            if kind == "write":
                tx.write(path, value)
            elif kind == "rm":
                tx.rm(path)
            else:
                raise BatchError("unknown txn op kind %r" % (kind,))
        self.stats["batches"] += 1
        self.stats["batched_ops"] += len(staged)
        yield from self._log_access(lines=len(staged))

    @_traced("xenstore.txn_commit")
    def transaction_commit(self, tx: Transaction):
        """Generator: XS_TRANSACTION_END(commit=True).

        Raises :class:`TransactionConflict` on a clash; the caller retries.
        Watches fire for every path the commit modified.
        """
        validate_us = ((len(tx.read_set) + len(tx.write_set))
                       * self.costs.per_node_scan_us)
        # Commit validation checks generations across the whole store,
        # so it serializes against every shard (at workers=1: the one
        # worker, exactly as before).
        yield from self._charge(
            extra_us=self.costs.txn_overhead_us + validate_us,
            shards=self._all_shards())
        self._check_tx_epoch(tx)
        if self.faults.fires("xenstore.commit") is not None:
            tx.abort()
            self.stats["conflicts"] += 1
            yield from self._log_access()
            raise TransactionConflict(
                "transaction %d invalidated (injected conflict)" % tx.tx_id)
        if self._ambient_clash(tx):
            tx.abort()
            self.stats["conflicts"] += 1
            yield from self._log_access()
            raise TransactionConflict(
                "transaction %d invalidated by concurrent guest traffic"
                % tx.tx_id)
        try:
            modified = tx.commit()
        except TransactionConflict:
            self.stats["conflicts"] += 1
            yield from self._log_access()
            raise
        if self.journal is not None:
            # Journal the committed effects in the order tx.commit()
            # applied them: staged writes first (insertion order), then
            # the staged removals (replay tolerates already-gone paths
            # exactly like commit does).
            for path, value in tx.write_set.items():
                self.journal.record_write(tx.domid, path, value)
            for path in tx.rm_set:
                self.journal.record_rm(path)
        self.stats["commits"] += 1
        for path in modified:
            yield from self._fire_watches(path)
        yield from self._log_access()

    def _ambient_clash(self, tx: Transaction) -> bool:
        """Draw whether ambient guest traffic invalidated ``tx``.

        Modeled as a Poisson process over the transaction's open duration
        with intensity proportional to the connected-client count; the
        paper's observed behaviour is that overlap (and thus retries)
        grows with the number of running VMs.
        """
        if self.rng is None or not self.ambient_clients:
            return False
        duration = max(0.0, self.sim.now - getattr(tx, "opened_at",
                                                   self.sim.now))
        rate = (self.costs.ambient_conflict_rate_per_client
                * self.ambient_clients)
        probability = min(self.costs.conflict_probability_cap,
                          1.0 - math.exp(-rate * duration))
        return self.rng.random() < probability

    @_traced("xenstore.txn_abort")
    def transaction_abort(self, tx: Transaction):
        """Generator: XS_TRANSACTION_END(commit=False)."""
        yield from self._charge()
        tx.abort()
        yield from self._log_access()


# ----------------------------------------------------------------------
# Legacy surface: pre-redesign op_*/tx_* names as deprecation shims
# ----------------------------------------------------------------------
def _legacy_shim(legacy_name: str, new_name: str):
    def shim(self, *args, **kwargs):
        warnings.warn(
            "XenStoreDaemon.%s is deprecated; go through "
            "repro.xenstore.client.XsClient (daemon verb: %s)"
            % (legacy_name, new_name),
            DeprecationWarning, stacklevel=2)
        return (yield from getattr(self, new_name)(*args, **kwargs))
    shim.__name__ = legacy_name
    shim.__qualname__ = "XenStoreDaemon.%s" % legacy_name
    shim.__doc__ = ("Deprecated pre-redesign alias for "
                    ":meth:`XenStoreDaemon.%s`." % new_name)
    return shim


_LEGACY_NAMES = {
    "op_read": "read",
    "op_write": "write",
    "op_get_perms": "get_perms",
    "op_set_perms": "set_perms",
    "op_mkdir": "mkdir",
    "op_rm": "rm",
    "op_directory": "directory",
    "op_watch": "watch",
    "op_unwatch": "unwatch",
    "op_check_unique_name": "check_unique_name",
    "tx_read": "txn_read",
    "tx_exists": "txn_exists",
    "tx_write": "txn_write",
    "tx_rm": "txn_rm",
}

for _legacy, _new in _LEGACY_NAMES.items():
    setattr(XenStoreDaemon, _legacy, _legacy_shim(_legacy, _new))
del _legacy, _new
