"""The XenStore access log and its rotation spikes.

§4.2: "the XenStore logs every access to log files (20 of them), and
rotates them when a certain maximum number of lines is reached (13,215
lines by default); the spikes happen when this rotation takes place."

We keep real per-file line counters; when a file crosses the threshold the
daemon charges a rotation penalty to the unlucky request that triggered it,
producing the periodic spikes visible in Figs 4 and 9's ``xl`` curves.
"""

from __future__ import annotations

import typing

DEFAULT_LOG_FILES = 20
DEFAULT_ROTATE_LINES = 13_215


class AccessLog:
    """Line-counting model of oxenstored's log files."""

    def __init__(self, files: int = DEFAULT_LOG_FILES,
                 rotate_lines: int = DEFAULT_ROTATE_LINES,
                 enabled: bool = True):
        if files < 1:
            raise ValueError("need at least one log file")
        self.files = files
        self.rotate_lines = rotate_lines
        self.enabled = enabled
        # Every access appends the same line count to every file, so all
        # per-file counters are identical at all times — one counter
        # models the lot (rotation still reports `files` rotated files).
        self._count = 0
        self.rotations = 0
        self.total_lines = 0

    def record(self, lines: int = 1) -> int:
        """Log an access of ``lines`` lines to every file.

        Returns the number of files that rotated as a result (0 almost
        always; ``files`` when the threshold trips, since all files grow in
        lock-step).
        """
        if not self.enabled or lines <= 0:
            return 0
        rotated = 0
        count = self._count + lines
        if count >= self.rotate_lines:
            count = 0
            rotated = self.files
        self._count = count
        self.rotations += rotated
        self.total_lines += lines * self.files
        return rotated

    def lines_in(self, index: int) -> int:
        """Current line count of log file ``index``."""
        # Preserve list-style index checking over the modeled files.
        range(self.files)[index]
        return self._count
