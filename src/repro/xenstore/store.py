"""The XenStore tree: a hierarchical key-value store.

Xen's central registry is a filesystem-like tree (``/local/domain/<id>/...``,
``/vm/...``, backend directories, ...).  Every node carries a value, an owner
domain, and a **generation counter** bumped on each modification — the
generation counters are what transactions validate against at commit time,
so they are the root cause of the retry storms §4.2 blames for superlinear
creation times.
"""

from __future__ import annotations

import typing


class StoreError(RuntimeError):
    """Base class for store access errors."""


class NoEntError(StoreError):
    """Path does not exist (ENOENT)."""


class InvalidPathError(StoreError):
    """Malformed path."""


#: Memo for :func:`split_path`, keyed by the raw path string.  Only
#: successful parses are cached; the population is bounded by the set of
#: distinct paths the toolstack ever touches.  Entries are tuples so a
#: cache hit can never be mutated by a caller.
_SPLIT_CACHE: typing.Dict[str, tuple] = {}
_SPLIT_CACHE_CAP = 65536


def split_path(path: str) -> typing.Tuple[str, ...]:
    """Validate and split an absolute store path into components."""
    try:
        return _SPLIT_CACHE[path]
    except KeyError:
        pass
    if not path.startswith("/"):
        raise InvalidPathError("path must be absolute: %r" % path)
    if "//" in path:
        raise InvalidPathError("empty component in path: %r" % path)
    if path == "/":
        parts: typing.Tuple[str, ...] = ()
    else:
        parts = tuple(path.rstrip("/").split("/")[1:])
    if len(_SPLIT_CACHE) < _SPLIT_CACHE_CAP:
        _SPLIT_CACHE[path] = parts
    return parts


class Node:
    """One tree node."""

    __slots__ = ("name", "value", "owner_domid", "children", "generation",
                 "perms")

    def __init__(self, name: str, value: str = "", owner_domid: int = 0,
                 generation: int = 0):
        self.name = name
        self.value = value
        self.owner_domid = owner_domid
        self.children: typing.Dict[str, "Node"] = {}
        self.generation = generation
        #: Explicit ACL (NodePerms) or None for the implicit owner-only
        #: default.
        self.perms = None


#: Path shape of guest-name nodes (``/local/domain/<id>/name``); ``None``
#: is the domain-id wildcard.  The name-admission index below tracks the
#: values of exactly these nodes.
_NAME_PATTERN = ("local", "domain", None, "name")


class XenStoreTree:
    """The mutable tree plus a global generation counter.

    Alongside the tree proper, a **name-admission index** (``_names``)
    counts how many ``/local/domain/<id>/name`` nodes currently hold each
    value.  It makes the daemon's unique-name check O(1) *host* time; the
    modeled O(N) scan latency from §4.2 is still charged by the daemon
    (see DESIGN.md, "Modeled cost vs host cost").  All mutations funnel
    through :meth:`write` and :meth:`rm` — transactions commit through
    them too — so the index cannot drift from the tree.
    """

    def __init__(self):
        self.root = Node("")
        #: Bumped on every mutation; transactions snapshot this.
        self.generation = 0
        #: Total nodes ever written (for accounting/benchmarks).
        self.write_count = 0
        #: Name-admission index: guest name -> number of domains holding
        #: it (normally 0 or 1; transient overlaps are possible while a
        #: rename is in flight).
        self._names: typing.Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _walk(self, path: str) -> Node:
        node = self.root
        for part in split_path(path):
            try:
                node = node.children[part]
            except KeyError:
                raise NoEntError(path) from None
        return node

    def exists(self, path: str) -> bool:
        """True if ``path`` names a node."""
        try:
            self._walk(path)
            return True
        except NoEntError:
            return False

    def read(self, path: str) -> str:
        """Return the value at ``path``; raises NoEntError."""
        return self._walk(path).value

    def generation_of(self, path: str) -> int:
        """Generation counter of the node at ``path``."""
        return self._walk(path).generation

    def directory(self, path: str) -> typing.List[str]:
        """Child names under ``path`` (sorted, as xenstored returns them)."""
        return sorted(self._walk(path).children)

    def child_count(self, path: str) -> int:
        """Number of children under ``path`` (0 if the path is missing).

        Cheaper than ``len(directory(path))`` — no sort, no list — for
        callers that only size a modeled scan charge.
        """
        try:
            return len(self._walk(path).children)
        except NoEntError:
            return 0

    def name_in_use(self, name: str) -> bool:
        """True if any ``/local/domain/<id>/name`` node holds ``name``.

        O(1) host time via the name-admission index; equivalent to
        scanning every domain's name node.
        """
        return self._names.get(name, 0) > 0

    def get_perms(self, path: str):
        """The node's effective ACL.

        A node without an explicit ACL inherits the nearest ancestor's
        (covering children that raced with the XS_SET_PERMS on their
        directory); with no ACL anywhere on the path, the implicit
        owner-only ACL applies.
        """
        from .permissions import NodePerms
        node = self.root
        inherited = None
        for part in split_path(path):
            try:
                node = node.children[part]
            except KeyError:
                raise NoEntError(path) from None
            if node.perms is not None:
                inherited = node.perms
        return inherited or NodePerms.owned_by(node.owner_domid)

    def set_perms(self, path: str, perms) -> None:
        """Replace the node's ACL (XS_SET_PERMS)."""
        node = self._walk(path)
        node.perms = perms
        node.owner_domid = perms.owner_domid
        self.generation += 1
        node.generation = self.generation

    def count_nodes(self) -> int:
        """Total nodes in the tree (excluding the root)."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += len(node.children)
            stack.extend(node.children.values())
        return total

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def write(self, path: str, value: str, owner_domid: int = 0) -> None:
        """Write ``value`` at ``path``, creating intermediate nodes.

        Mirrors xenstored: a write implicitly mkdir-s missing parents.
        """
        parts = split_path(path)
        if not parts:
            raise InvalidPathError("cannot write to /")
        # Writes at or under /local/domain/<id>/name touch the
        # name-admission index: capture the name node's prior value (None
        # if absent) so the index can be diffed after the write.  A write
        # *below* the name node may create it implicitly (value "").
        touches_name = (len(parts) >= 4 and parts[0] == "local"
                        and parts[1] == "domain" and parts[3] == "name")
        old_name: typing.Optional[str] = None
        if touches_name:
            probe: typing.Optional[Node] = self.root
            for part in parts[:4]:
                probe = probe.children.get(part)
                if probe is None:
                    break
            else:
                old_name = probe.value
        self.generation += 1
        node = self.root
        for part in parts:
            if part not in node.children:
                child = Node(part, owner_domid=owner_domid,
                             generation=self.generation)
                # New nodes inherit the parent's ACL (xenstored
                # semantics) so a directory grant covers later children.
                child.perms = node.perms
                node.children[part] = child
            node = node.children[part]
        node.value = value
        node.generation = self.generation
        node.owner_domid = owner_domid
        self.write_count += 1
        if touches_name:
            new_name = value if len(parts) == 4 else (
                old_name if old_name is not None else "")
            if old_name is None or old_name != new_name:
                if old_name is not None:
                    self._name_discard(old_name)
                self._names[new_name] = self._names.get(new_name, 0) + 1

    def mkdir(self, path: str, owner_domid: int = 0) -> None:
        """Create an (empty-valued) directory node."""
        if not self.exists(path):
            self.write(path, "", owner_domid=owner_domid)

    def rm(self, path: str) -> int:
        """Remove the subtree at ``path``; returns nodes removed."""
        parts = split_path(path)
        if not parts:
            raise InvalidPathError("cannot remove /")
        parent = self.root
        for part in parts[:-1]:
            try:
                parent = parent.children[part]
            except KeyError:
                raise NoEntError(path) from None
        leaf = parts[-1]
        if leaf not in parent.children:
            raise NoEntError(path)
        doomed = parent.children[leaf]
        removed = self._subtree_size(doomed)
        for name in self._doomed_names(parts, doomed):
            self._name_discard(name)
        del parent.children[leaf]
        self.generation += 1
        parent.generation = self.generation
        return removed

    @staticmethod
    def _subtree_size(node: Node) -> int:
        total = 1
        stack = [node]
        while stack:
            current = stack.pop()
            total += len(current.children)
            stack.extend(current.children.values())
        return total

    # ------------------------------------------------------------------
    # Name-admission index maintenance
    # ------------------------------------------------------------------
    def _name_discard(self, name: str) -> None:
        count = self._names.get(name, 0)
        if count <= 1:
            self._names.pop(name, None)
        else:
            self._names[name] = count - 1

    @staticmethod
    def _doomed_names(parts: typing.Sequence[str],
                      doomed: Node) -> typing.Iterator[str]:
        """Values of every name node inside the subtree being removed.

        ``doomed`` sits at depth ``len(parts)``; name nodes sit at depth
        4 on the ``/local/domain/<id>/name`` pattern, so only removals
        rooted at depth <= 4 on a matching prefix can contain any.
        """
        depth = len(parts)
        if depth > 4:
            return
        for i, part in enumerate(parts):
            want = _NAME_PATTERN[i]
            if want is not None and part != want:
                return
        # Descend the remaining pattern components below the doomed root.
        frontier = [doomed]
        for want in _NAME_PATTERN[depth:]:
            if want is None:
                frontier = [child for node in frontier
                            for child in node.children.values()]
            else:
                frontier = [node.children[want] for node in frontier
                            if want in node.children]
            if not frontier:
                return
        for node in frontier:
            yield node.value
