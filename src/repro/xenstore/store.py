"""The XenStore tree: a hierarchical key-value store.

Xen's central registry is a filesystem-like tree (``/local/domain/<id>/...``,
``/vm/...``, backend directories, ...).  Every node carries a value, an owner
domain, and a **generation counter** bumped on each modification — the
generation counters are what transactions validate against at commit time,
so they are the root cause of the retry storms §4.2 blames for superlinear
creation times.
"""

from __future__ import annotations

import typing


class StoreError(RuntimeError):
    """Base class for store access errors."""


class NoEntError(StoreError):
    """Path does not exist (ENOENT)."""


class InvalidPathError(StoreError):
    """Malformed path."""


def split_path(path: str) -> typing.List[str]:
    """Validate and split an absolute store path into components."""
    if not path.startswith("/"):
        raise InvalidPathError("path must be absolute: %r" % path)
    if "//" in path:
        raise InvalidPathError("empty component in path: %r" % path)
    if path == "/":
        return []
    return path.rstrip("/").split("/")[1:]


class Node:
    """One tree node."""

    __slots__ = ("name", "value", "owner_domid", "children", "generation",
                 "perms")

    def __init__(self, name: str, value: str = "", owner_domid: int = 0,
                 generation: int = 0):
        self.name = name
        self.value = value
        self.owner_domid = owner_domid
        self.children: typing.Dict[str, "Node"] = {}
        self.generation = generation
        #: Explicit ACL (NodePerms) or None for the implicit owner-only
        #: default.
        self.perms = None


class XenStoreTree:
    """The mutable tree plus a global generation counter."""

    def __init__(self):
        self.root = Node("")
        #: Bumped on every mutation; transactions snapshot this.
        self.generation = 0
        #: Total nodes ever written (for accounting/benchmarks).
        self.write_count = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _walk(self, path: str) -> Node:
        node = self.root
        for part in split_path(path):
            try:
                node = node.children[part]
            except KeyError:
                raise NoEntError(path) from None
        return node

    def exists(self, path: str) -> bool:
        """True if ``path`` names a node."""
        try:
            self._walk(path)
            return True
        except NoEntError:
            return False

    def read(self, path: str) -> str:
        """Return the value at ``path``; raises NoEntError."""
        return self._walk(path).value

    def generation_of(self, path: str) -> int:
        """Generation counter of the node at ``path``."""
        return self._walk(path).generation

    def directory(self, path: str) -> typing.List[str]:
        """Child names under ``path`` (sorted, as xenstored returns them)."""
        return sorted(self._walk(path).children)

    def get_perms(self, path: str):
        """The node's effective ACL.

        A node without an explicit ACL inherits the nearest ancestor's
        (covering children that raced with the XS_SET_PERMS on their
        directory); with no ACL anywhere on the path, the implicit
        owner-only ACL applies.
        """
        from .permissions import NodePerms
        node = self.root
        inherited = None
        for part in split_path(path):
            try:
                node = node.children[part]
            except KeyError:
                raise NoEntError(path) from None
            if node.perms is not None:
                inherited = node.perms
        return inherited or NodePerms.owned_by(node.owner_domid)

    def set_perms(self, path: str, perms) -> None:
        """Replace the node's ACL (XS_SET_PERMS)."""
        node = self._walk(path)
        node.perms = perms
        node.owner_domid = perms.owner_domid
        self.generation += 1
        node.generation = self.generation

    def count_nodes(self) -> int:
        """Total nodes in the tree (excluding the root)."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += len(node.children)
            stack.extend(node.children.values())
        return total

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def write(self, path: str, value: str, owner_domid: int = 0) -> None:
        """Write ``value`` at ``path``, creating intermediate nodes.

        Mirrors xenstored: a write implicitly mkdir-s missing parents.
        """
        parts = split_path(path)
        if not parts:
            raise InvalidPathError("cannot write to /")
        self.generation += 1
        node = self.root
        for part in parts:
            if part not in node.children:
                child = Node(part, owner_domid=owner_domid,
                             generation=self.generation)
                # New nodes inherit the parent's ACL (xenstored
                # semantics) so a directory grant covers later children.
                child.perms = node.perms
                node.children[part] = child
            node = node.children[part]
        node.value = value
        node.generation = self.generation
        node.owner_domid = owner_domid
        self.write_count += 1

    def mkdir(self, path: str, owner_domid: int = 0) -> None:
        """Create an (empty-valued) directory node."""
        if not self.exists(path):
            self.write(path, "", owner_domid=owner_domid)

    def rm(self, path: str) -> int:
        """Remove the subtree at ``path``; returns nodes removed."""
        parts = split_path(path)
        if not parts:
            raise InvalidPathError("cannot remove /")
        parent = self.root
        for part in parts[:-1]:
            try:
                parent = parent.children[part]
            except KeyError:
                raise NoEntError(path) from None
        leaf = parts[-1]
        if leaf not in parent.children:
            raise NoEntError(path)
        removed = self._subtree_size(parent.children[leaf])
        del parent.children[leaf]
        self.generation += 1
        parent.generation = self.generation
        return removed

    @staticmethod
    def _subtree_size(node: Node) -> int:
        total = 1
        stack = [node]
        while stack:
            current = stack.pop()
            total += len(current.children)
            stack.extend(current.children.values())
        return total
