"""XenStore transactions with optimistic concurrency control.

oxenstored implements transactions by validating, at commit, that nothing
the transaction read or wrote changed since the transaction started; on a
clash the commit fails with EAGAIN and the client must retry the whole
transaction.  §4.2: "As the load increases, XenStore interactions belonging
to different transactions frequently overlap, resulting in failed
transactions that need to be retried."  That retry loop is reproduced here
faithfully: device setup really does re-run when a backend's asynchronous
writes invalidate the toolstack's transaction.
"""

from __future__ import annotations

import typing

from .store import NoEntError, XenStoreTree


class TransactionConflict(RuntimeError):
    """Commit-time validation failed (EAGAIN): retry the transaction."""


class Transaction:
    """A single optimistic transaction against the tree."""

    def __init__(self, tree: XenStoreTree, tx_id: int, domid: int):
        self.tree = tree
        self.tx_id = tx_id
        self.domid = domid
        self.start_generation = tree.generation
        #: path -> generation at first read (None when it did not exist).
        self.read_set: typing.Dict[str, typing.Optional[int]] = {}
        #: path -> value staged for write.
        self.write_set: typing.Dict[str, str] = {}
        #: paths staged for removal.
        self.rm_set: typing.List[str] = []
        self.finished = False
        #: Simulated time the daemon opened this transaction (set by the
        #: daemon; used for the ambient-conflict model).
        self.opened_at = 0.0

    # ------------------------------------------------------------------
    # Operations inside the transaction
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self.finished:
            raise RuntimeError("transaction %d already finished" % self.tx_id)

    def read(self, path: str) -> str:
        """Read through the transaction (sees own staged writes)."""
        self._check_open()
        if path in self.write_set:
            return self.write_set[path]
        try:
            generation = self.tree.generation_of(path)
        except NoEntError:
            self.read_set.setdefault(path, None)
            raise
        self.read_set.setdefault(path, generation)
        return self.tree.read(path)

    def exists(self, path: str) -> bool:
        """Existence check, recorded in the read set."""
        self._check_open()
        if path in self.write_set:
            return True
        try:
            generation = self.tree.generation_of(path)
            self.read_set.setdefault(path, generation)
            return True
        except NoEntError:
            self.read_set.setdefault(path, None)
            return False

    def write(self, path: str, value: str) -> None:
        """Stage a write."""
        self._check_open()
        self.write_set[path] = value

    def rm(self, path: str) -> None:
        """Stage a removal."""
        self._check_open()
        self.rm_set.append(path)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def validate(self) -> bool:
        """True if the read/write sets are still consistent with the tree."""
        for path, seen_generation in self.read_set.items():
            try:
                current = self.tree.generation_of(path)
            except NoEntError:
                current = None
            if current != seen_generation:
                return False
        # Writes also conflict if someone else touched the same node after
        # the transaction started.
        for path in self.write_set:
            try:
                current = self.tree.generation_of(path)
            except NoEntError:
                continue
            if current > self.start_generation:
                return False
        return True

    def commit(self) -> typing.List[str]:
        """Apply the staged mutations atomically.

        Returns the list of modified paths (so the daemon can fire watches).
        Raises :class:`TransactionConflict` if validation fails.
        """
        self._check_open()
        if not self.validate():
            self.finished = True
            raise TransactionConflict(
                "transaction %d clashed; retry" % self.tx_id)
        modified = []
        for path, value in self.write_set.items():
            self.tree.write(path, value, owner_domid=self.domid)
            modified.append(path)
        for path in self.rm_set:
            try:
                self.tree.rm(path)
                modified.append(path)
            except NoEntError:
                pass  # removing a non-existent node inside a tx is a no-op
        self.finished = True
        return modified

    def abort(self) -> None:
        """Discard the transaction."""
        self._check_open()
        self.finished = True
