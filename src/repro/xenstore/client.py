"""First-class XenStore client handles: ``XsClient`` / ``XsBatch`` / ``XsTxn``.

The pre-redesign toolstack drove the daemon through raw ``yield from
xenstore.op_write(domid, ...)`` generators, threading ``domid`` through
every call and hand-rolling transaction retry loops at each site.  This
module is the redesigned surface:

* :class:`XsClient` — a per-domain connection handle (``read`` /
  ``write`` / ``mkdir`` / ``rm`` / ``watch`` / ...) that binds the
  domid once, the way a real libxenstore handle binds its connection;
* :meth:`XsClient.batch` — an :class:`XsBatch` context manager that
  coalesces N mutations into **one** message round trip when the daemon
  was built with ``batch_ops=True`` (and degrades to the canonical
  per-op round trips otherwise — digest-identical to unbatched code);
* :meth:`XsClient.transaction` — the retried-transaction runner
  (exponential backoff + jitter on :class:`TransactionConflict`),
  handing the body an :class:`XsTxn` whose writes are batched into the
  transaction with one round trip on capable daemons.

Every method returns the underlying daemon **generator** — drive it
with ``yield from`` inside a simulation process, exactly like the old
surface.  The handle layer is plain-function delegation: it adds no
simulation events, which is what keeps ``workers=1`` EventTrace digests
byte-identical to the pre-redesign daemon
(``tests/test_xenstore_digest_identity.py`` pins this).

The client resolves daemon verbs by name with a legacy fallback
(``read`` → ``op_read``), so it also drives the frozen pre-redesign
daemon used as the digest measuring stick.
"""

from __future__ import annotations

import typing

from ..faults.plan import DaemonRestarted, Overloaded
from ..faults.retry import RetryExhausted, RetryPolicy
from ..trace.tracer import tracer_of
from .transaction import Transaction, TransactionConflict

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .daemon import XenStoreDaemon

#: The control domain (kept local: ``repro.xenstore`` must not depend on
#: ``repro.hypervisor``; the value is pinned by protocol, not config).
DOM0_ID = 0

#: Transaction retry budget; xenstored clients retry EAGAIN indefinitely,
#: but a bound keeps broken models loud instead of livelocked.  With the
#: conflict-probability ceiling of 0.75 the chance of a legitimate run
#: exhausting 50 retries is ~1e-6.
MAX_TX_RETRIES = 50

#: Default conflict-retry schedule for XenStore transactions: exponential
#: from the cost model's ``conflict_backoff_ms`` with 25% jitter, so
#: clients that conflicted with each other don't retry in lock-step.
TX_RETRY_POLICY = RetryPolicy(max_retries=MAX_TX_RETRIES, base_ms=1.0,
                              multiplier=2.0, cap_ms=16.0, jitter=0.25)

#: Crash/overload retry schedule: a request that hit a daemon restart
#: (:class:`DaemonRestarted` — no durable effect, safe to resend) or was
#: shed (:class:`Overloaded`) backs off briefly and resends a few times,
#: then propagates.  Jitter-free so replays keep identical timelines,
#: and deliberately small so *sustained* overload surfaces as real
#: ``Overloaded`` rejections instead of unbounded client-side queueing.
RECOVERY_RETRY_POLICY = RetryPolicy(max_retries=3, base_ms=2.0,
                                    multiplier=2.0, cap_ms=32.0)


def _resolve(daemon, name: str, legacy: str):
    """The daemon verb, falling back to the pre-redesign ``op_*`` name
    (the frozen reference daemon only speaks the legacy surface)."""
    fn = getattr(daemon, name, None)
    return fn if fn is not None else getattr(daemon, legacy)


class BatchNotCommitted(RuntimeError):
    """An ``XsBatch`` left its ``with`` block with staged ops unflushed."""


class XsClient:
    """A per-domain XenStore connection handle.

    Binds ``domid`` once (like a libxenstore connection running inside
    that domain) so call sites read as protocol, not bookkeeping::

        xs = XsClient(daemon)              # Dom0 toolstack handle
        yield from xs.write("/vm/7/name", "vm-7")
        with xs.batch() as batch:          # one round trip for N ops
            batch.write(base + "/state", "connected")
            batch.rm(base + "/stale")
            yield from batch.commit()
    """

    def __init__(self, daemon: "XenStoreDaemon", domid: int = DOM0_ID):
        self.daemon = daemon
        self.domid = domid
        # Resolve verbs once — these are the hottest call paths in a
        # creation storm, and the getattr fallback should not run per op.
        self._read = _resolve(daemon, "read", "op_read")
        self._write = _resolve(daemon, "write", "op_write")
        self._mkdir = _resolve(daemon, "mkdir", "op_mkdir")
        self._rm = _resolve(daemon, "rm", "op_rm")
        self._directory = _resolve(daemon, "directory", "op_directory")
        self._get_perms = _resolve(daemon, "get_perms", "op_get_perms")
        self._set_perms = _resolve(daemon, "set_perms", "op_set_perms")
        self._watch = _resolve(daemon, "watch", "op_watch")
        self._unwatch = _resolve(daemon, "unwatch", "op_unwatch")
        self._check_unique_name = _resolve(daemon, "check_unique_name",
                                           "op_check_unique_name")
        self._txn_read = _resolve(daemon, "txn_read", "tx_read")
        self._txn_exists = _resolve(daemon, "txn_exists", "tx_exists")
        self._txn_write = _resolve(daemon, "txn_write", "tx_write")
        self._txn_rm = _resolve(daemon, "txn_rm", "tx_rm")

    def for_domain(self, domid: int) -> "XsClient":
        """A sibling handle bound to another domain (guest-side ops)."""
        return XsClient(self.daemon, domid)

    @property
    def tree(self):
        """Host-side (uncharged) view of the store tree."""
        return self.daemon.tree

    # -- simple operations (each returns a daemon generator) -----------
    def read(self, path: str):
        """Generator: XS_READ as this client's domain."""
        return self._read(self.domid, path)

    def write(self, path: str, value: str):
        """Generator: XS_WRITE (fires watches)."""
        return self._write(self.domid, path, value)

    def mkdir(self, path: str):
        """Generator: XS_MKDIR."""
        return self._mkdir(self.domid, path)

    def rm(self, path: str):
        """Generator: XS_RM (recursive); returns nodes removed."""
        return self._rm(self.domid, path)

    def directory(self, path: str):
        """Generator: XS_DIRECTORY."""
        return self._directory(self.domid, path)

    def get_perms(self, path: str):
        """Generator: XS_GET_PERMS."""
        return self._get_perms(self.domid, path)

    def set_perms(self, path: str, perms):
        """Generator: XS_SET_PERMS."""
        return self._set_perms(self.domid, path, perms)

    def watch(self, path: str, token: str, callback):
        """Generator: XS_WATCH; returns the Watch handle."""
        return self._watch(self.domid, path, token, callback)

    def unwatch(self, watch):
        """Generator: XS_UNWATCH."""
        return self._unwatch(self.domid, watch)

    def check_unique_name(self, name: str):
        """Generator: the O(N) unique-name admission check."""
        return self._check_unique_name(self.domid, name)

    # -- batching -------------------------------------------------------
    def batch(self) -> "XsBatch":
        """Stage mutations for one coalesced round trip; see
        :class:`XsBatch`."""
        return XsBatch(self)

    # -- transactions ---------------------------------------------------
    def transaction(self, body,
                    policy: typing.Optional[RetryPolicy] = None,
                    rng=None):
        """Generator: run ``body(txn)`` (a generator taking an
        :class:`XsTxn`) inside a transaction, retrying conflicts with
        exponential backoff + jitter.

        Returns the number of retries it took; raises
        :class:`RetryExhausted` past the policy's budget.  The
        ``base_ms`` of the schedule scales with the store's configured
        ``conflict_backoff_ms``.
        """
        return self._run_transaction(body, policy or TX_RETRY_POLICY, rng)

    def _run_transaction(self, body, policy: RetryPolicy, rng):
        daemon = self.daemon
        sim = daemon.sim
        retries = 0
        shed = 0
        started = sim.now
        scale = daemon.costs.conflict_backoff_ms / 1.0
        with tracer_of(sim).span("xenstore.txn",
                                 domid=self.domid) as txn_span:
            while True:
                try:
                    tx = yield from daemon.transaction_start(self.domid)
                    txn = XsTxn(self, tx)
                    yield from body(txn)
                    yield from txn._flush()
                    yield from daemon.transaction_commit(tx)
                    if retries:
                        txn_span.set(retries=retries)
                    return retries
                except (TransactionConflict, DaemonRestarted) as exc:
                    # A conflict aborted the transaction, or the daemon
                    # crashed mid-transaction (nothing committed either
                    # way): back off and rerun the whole body.  The next
                    # transaction_start parks until the restart finishes.
                    retries += 1
                    if policy.give_up(retries, started, sim.now):
                        txn_span.set(retries=retries)
                        raise RetryExhausted(
                            "transaction retries exhausted (%d)"
                            % retries) from exc
                    yield sim.timeout(
                        scale * policy.backoff_ms(retries, rng))
                except Overloaded:
                    # Shed at admission: resend a few times, then let the
                    # rejection surface (sustained overload must be
                    # visible, not absorbed by client-side retry).
                    shed += 1
                    if shed > RECOVERY_RETRY_POLICY.max_retries:
                        txn_span.set(shed=shed)
                        raise
                    yield sim.timeout(
                        RECOVERY_RETRY_POLICY.backoff_ms(shed, None))


class XsBatch:
    """Mutations coalesced into one message round trip.

    Use as a context manager; stage with :meth:`write` / :meth:`mkdir` /
    :meth:`rm`, then ``yield from batch.commit()`` **inside** the
    ``with`` block (the exit guard raises :class:`BatchNotCommitted` if
    staged ops were silently dropped).  On a daemon built with
    ``batch_ops=True`` the whole batch costs one round trip plus
    ``batch_op_us`` per extra op and applies atomically; otherwise it
    replays as the canonical per-op round trips — digest-identical to
    the unbatched call sites it replaced.
    """

    def __init__(self, client: XsClient):
        self.client = client
        self.ops: typing.List[typing.Tuple[str, str,
                                           typing.Optional[str]]] = []
        self.modified: typing.Optional[typing.List[str]] = None
        self._committed = False

    def __enter__(self) -> "XsBatch":
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None and self.ops and not self._committed:
            raise BatchNotCommitted(
                "XsBatch left its with-block holding %d staged ops; "
                "drive `yield from batch.commit()` before exiting"
                % len(self.ops))
        return False

    def write(self, path: str, value: str) -> "XsBatch":
        """Stage an XS_WRITE (no round trip yet)."""
        self.ops.append(("write", path, value))
        return self

    def mkdir(self, path: str) -> "XsBatch":
        """Stage an XS_MKDIR."""
        self.ops.append(("mkdir", path, None))
        return self

    def rm(self, path: str) -> "XsBatch":
        """Stage a recursive XS_RM."""
        self.ops.append(("rm", path, None))
        return self

    def commit(self):
        """Generator: flush the staged ops; returns modified paths."""
        self._committed = True
        ops, self.ops = self.ops, []
        apply_batch = getattr(self.client.daemon, "apply_batch", None)
        if apply_batch is not None:
            return self._commit_via_daemon(apply_batch, ops)
        return self._commit_sequential(ops)

    def _commit_via_daemon(self, apply_batch, ops):
        attempt = 0
        while True:
            try:
                modified = yield from apply_batch(self.client.domid, ops)
            except (DaemonRestarted, Overloaded):
                # The batch had no durable effect (the crash point fires
                # before mutation; shedding happens at admission), so
                # resending is safe.  Bounded: persistent failure
                # propagates to the caller's own recovery path.
                attempt += 1
                if attempt > RECOVERY_RETRY_POLICY.max_retries:
                    raise
                yield self.client.daemon.sim.timeout(
                    RECOVERY_RETRY_POLICY.backoff_ms(attempt, None))
                continue
            self.modified = modified
            return modified

    def _commit_sequential(self, ops):
        # Pre-batching daemons (the frozen digest reference): replay the
        # ops as individual round trips through the client verbs.
        client = self.client
        modified = []
        for kind, path, value in ops:
            if kind == "write":
                yield from client.write(path, value)
                modified.append(path)
            elif kind == "mkdir":
                yield from client.mkdir(path)
                modified.append(path)
            elif kind == "rm":
                if (yield from client.rm(path)):
                    modified.append(path)
            else:
                raise ValueError("unknown batch op kind %r" % (kind,))
        self.modified = modified
        return modified


class XsTxn:
    """The handle a transaction body receives from
    :meth:`XsClient.transaction`.

    Reads go to the daemon immediately (they populate the transaction's
    read set for commit-time validation).  On a ``batch_ops`` daemon,
    writes and removes are staged client-side and flushed as one batched
    round trip before commit; reads flush any staged ops first so
    read-your-writes still holds.  On other daemons every op is its own
    canonical round trip — byte-identical to the pre-redesign
    ``tx_write`` call sites.
    """

    def __init__(self, client: XsClient, tx: Transaction):
        self.client = client
        self.tx = tx
        self._staged: typing.List[typing.Tuple[str, str,
                                               typing.Optional[str]]] = []
        self._batched = bool(getattr(client.daemon, "batch_ops", False))

    def read(self, path: str):
        """Generator: XS_READ inside the transaction."""
        if not self._batched or not self._staged:
            return self.client._txn_read(self.tx, path)
        return self._flush_then(self.client._txn_read, path)

    def exists(self, path: str):
        """Generator: existence check inside the transaction."""
        if not self._batched or not self._staged:
            return self.client._txn_exists(self.tx, path)
        return self._flush_then(self.client._txn_exists, path)

    def write(self, path: str, value: str):
        """Generator: XS_WRITE inside the transaction (staged on
        batching daemons — the round trip is paid at flush)."""
        if self._batched:
            self._staged.append(("write", path, value))
            return iter(())
        return self.client._txn_write(self.tx, path, value)

    def rm(self, path: str):
        """Generator: XS_RM inside the transaction."""
        if self._batched:
            self._staged.append(("rm", path, None))
            return iter(())
        return self.client._txn_rm(self.tx, path)

    def _flush_then(self, verb, path):
        yield from self._flush()
        return (yield from verb(self.tx, path))

    def _flush(self):
        """Generator: push staged ops into the transaction (one batched
        round trip)."""
        if not self._staged:
            return
        staged, self._staged = self._staged, []
        yield from self.client.daemon.txn_flush_staged(self.tx, staged)
