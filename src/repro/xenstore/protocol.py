"""Cost model of the XenStore wire protocol.

§4.2: "The protocol used by the XenStore is quite expensive, where each
operation requires sending a message and receiving an acknowledgment, each
triggering a software interrupt: a single read or write thus triggers at
least two, and most often four, software interrupts and multiple domain
changes between the guest, hypervisor and Dom0 kernel and userspace."

Costs are expressed in microseconds and converted to simulated
milliseconds by the daemon.  The defaults are calibrated so the xl boot
storm of Fig 9 lands near the paper's curve (≈100 ms for the first daytime
unikernel, just under 1 s for the 1000th); see EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class XenStoreCosts:
    """Tunable cost parameters for one XenStore deployment."""

    #: Cost of one software interrupt (µs).
    interrupt_us: float = 3.0
    #: Cost of one privilege-domain crossing (µs).
    crossing_us: float = 2.5
    #: Daemon-side processing per operation (µs).
    process_us: float = 6.0
    #: Software interrupts per simple op ("at least two, most often four").
    interrupts_per_op: int = 4
    #: Privilege-domain crossings per simple op.
    crossings_per_op: int = 4
    #: Per-node cost of O(N) scans, e.g. the unique-name check (µs).
    per_node_scan_us: float = 4.0
    #: Per-registered-watch comparison cost on every mutation (µs).
    watch_scan_us: float = 1.5
    #: Cost of delivering one fired watch event (a message + interrupt, µs).
    watch_deliver_us: float = 10.0
    #: Extra bookkeeping per transaction start/commit (µs).
    txn_overhead_us: float = 15.0
    #: Penalty for rotating all log files (ms) — the Fig 4/9 spikes.
    log_rotation_ms: float = 30.0
    #: Log lines emitted per access.
    log_lines_per_op: int = 1
    #: Ambient daemon utilisation contributed by each connected (running)
    #: guest: consoles, device state refreshes, xenstored pings.  Drives the
    #: 1/(1-rho) queueing inflation as density grows.
    ambient_util_per_client: float = 0.00055
    #: Utilisation cap so the latency multiplier stays finite.
    ambient_util_cap: float = 0.88
    #: Multiplier applied when running the (slower) C implementation;
    #: §4.2 footnote: "Results with cxenstored show much higher overheads."
    cxenstored_multiplier: float = 3.0
    #: Rate (events per ms per connected client) at which ambient guest
    #: traffic invalidates an open transaction.  §4.2: "As the load
    #: increases, XenStore interactions belonging to different transactions
    #: frequently overlap, resulting in failed transactions that need to
    #: be retried."  The conflict probability for a transaction held open
    #: for ``d`` ms with ``n`` clients is ``1 - exp(-rate * n * d)``.
    ambient_conflict_rate_per_client: float = 5e-5
    #: Conflict probability ceiling (xenstored eventually lets a retried
    #: transaction through; without a ceiling the model could livelock).
    conflict_probability_cap: float = 0.75
    #: Client back-off before retrying a conflicted transaction (ms).
    conflict_backoff_ms: float = 1.0
    #: How long a client waits for the daemon's ack before resending the
    #: message (ms).  Only reached under fault injection: a dropped ack
    #: (``xenstore.message``) charges this timeout per lost round trip.
    message_timeout_ms: float = 5.0
    #: Per-domain node quota (xenstored's defense against a guest
    #: exhausting the store — the §1 resource-DoS argument).  Dom0 is
    #: exempt.  0 disables the quota.
    quota_nodes_per_domain: int = 1000
    #: Daemon-side cost per *additional* operation carried in a batched
    #: message (µs): the marshalling + processing of one more op inside
    #: an already-open round trip.  A batch of N ops costs one
    #: ``op_base_ms`` round trip (interrupts + crossings paid once) plus
    #: ``(N - 1) * batch_op_us`` — this is the §4.2 fix of cutting
    #: round trips per operation, available when the daemon is built
    #: with ``batch_ops=True``.
    batch_op_us: float = 8.0

    def op_base_ms(self) -> float:
        """Base latency of a single message/ack round-trip, in ms."""
        return (self.interrupts_per_op * self.interrupt_us
                + self.crossings_per_op * self.crossing_us
                + self.process_us) / 1000.0

    def batch_ms(self, op_count: int) -> float:
        """Base latency of one batched round trip carrying ``op_count``
        operations, in ms (before implementation/load factors)."""
        if op_count <= 0:
            return 0.0
        return self.op_base_ms() + (op_count - 1) * self.batch_op_us / 1000.0
