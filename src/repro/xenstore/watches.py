"""XenStore watches.

A watch associates a path with a client; any write at or below that path
fires the watch (delivering the modified path and the client's token).  The
split-driver protocol is built entirely on watches: back-ends watch their
backend directories, and every running guest's xenbus holds watches on its
device and control nodes.  Because oxenstored scans its watch list on each
mutation, the per-write cost grows with the number of running VMs — one of
the §4.2 overheads (the daemon charges ``len(manager)`` comparisons of
simulated time per mutation).

Implementation note: to keep the *simulator* fast at thousands of guests,
watches are indexed by path prefix, so firing costs O(path depth +
deliveries) of real time while still reporting the linear-scan cost the
real daemon would pay in *simulated* time.
"""

from __future__ import annotations

import typing


class Watch(typing.NamedTuple):
    """One registered watch."""

    domid: int
    path: str
    token: str
    callback: typing.Callable[[str, str], None]  # (fired_path, token)


#: Memo of ancestor-prefix chains keyed by (already normalized) path.
#: The toolstack touches the same guest paths over and over, so fires hit
#: this cache nearly always; bounded like the store's split-path memo.
_ANCESTOR_CACHE: typing.Dict[str, typing.Tuple[str, ...]] = {}
_ANCESTOR_CACHE_CAP = 65536


def _ancestors(path: str) -> typing.Tuple[str, ...]:
    """'/', then every prefix of ``path`` including itself."""
    cached = _ANCESTOR_CACHE.get(path)
    if cached is not None:
        return cached
    chain = ["/"]
    if path != "/":
        prefix = ""
        for part in path.strip("/").split("/"):
            prefix += "/" + part
            chain.append(prefix)
    result = tuple(chain)
    if len(_ANCESTOR_CACHE) < _ANCESTOR_CACHE_CAP:
        _ANCESTOR_CACHE[path] = result
    return result


class WatchManager:
    """Registry of watches with subtree-fire semantics."""

    def __init__(self):
        self._by_path: typing.Dict[str, typing.List[Watch]] = {}
        self._count = 0
        #: Total watch events delivered (for the cost accounting).
        self.fired_total = 0
        #: Simulated linear-scan comparisons (what oxenstored would do).
        self.scans_total = 0

    def __len__(self) -> int:
        return self._count

    def add(self, domid: int, path: str, token: str,
            callback: typing.Callable[[str, str], None]) -> Watch:
        """Register a watch on ``path`` (and its subtree)."""
        watch = Watch(domid, path.rstrip("/") or "/", token, callback)
        self._by_path.setdefault(watch.path, []).append(watch)
        self._count += 1
        return watch

    def remove(self, watch: Watch) -> None:
        """Unregister a watch."""
        bucket = self._by_path.get(watch.path)
        if not bucket or watch not in bucket:
            raise ValueError("watch not registered: %r" % (watch,))
        bucket.remove(watch)
        if not bucket:
            del self._by_path[watch.path]
        self._count -= 1

    def remove_for_domain(self, domid: int) -> int:
        """Drop all watches held by ``domid``; returns the count."""
        removed = 0
        for path in list(self._by_path):
            bucket = self._by_path[path]
            kept = [w for w in bucket if w.domid != domid]
            removed += len(bucket) - len(kept)
            if kept:
                self._by_path[path] = kept
            else:
                del self._by_path[path]
        self._count -= removed
        return removed

    def fire(self, path: str) -> typing.List[Watch]:
        """Deliver the watch events for a modification at ``path``.

        Returns the watches that fired.  Callbacks run synchronously (the
        daemon charges delivery latency separately).
        """
        path = path.rstrip("/") or "/"
        self.scans_total += self._count  # the daemon's linear scan
        fired: typing.List[Watch] = []
        for prefix in _ancestors(path):
            fired.extend(self._by_path.get(prefix, ()))
        for watch in fired:
            self.fired_total += 1
            watch.callback(path, watch.token)
        return fired
