"""The XenStore: Xen's centralized registry, reproduced in full.

Tree + transactions + watches + wire-protocol costs + access-log rotation.
The LightVM paper's §4.2 bottleneck analysis is entirely about this
subsystem; :mod:`repro.noxs` is its replacement.
"""

from .accesslog import DEFAULT_LOG_FILES, DEFAULT_ROTATE_LINES, AccessLog
from .daemon import DuplicateNameError, QuotaExceededError, XenStoreDaemon
from .permissions import (NodePerms, PERM_BOTH, PERM_NONE, PERM_READ,
                          PERM_WRITE, PermEntry, PermissionError_)
from .protocol import XenStoreCosts
from .store import (InvalidPathError, NoEntError, Node, StoreError,
                    XenStoreTree, split_path)
from .transaction import Transaction, TransactionConflict
from .watches import Watch, WatchManager

__all__ = [
    "AccessLog",
    "DEFAULT_LOG_FILES",
    "DEFAULT_ROTATE_LINES",
    "DuplicateNameError",
    "InvalidPathError",
    "NoEntError",
    "Node",
    "NodePerms",
    "PERM_BOTH",
    "PERM_NONE",
    "PERM_READ",
    "PERM_WRITE",
    "PermEntry",
    "PermissionError_",
    "QuotaExceededError",
    "StoreError",
    "Transaction",
    "TransactionConflict",
    "Watch",
    "WatchManager",
    "XenStoreCosts",
    "XenStoreDaemon",
    "XenStoreTree",
    "split_path",
]
