"""The XenStore: Xen's centralized registry, reproduced in full.

Tree + transactions + watches + wire-protocol costs + access-log rotation.
The LightVM paper's §4.2 bottleneck analysis is entirely about this
subsystem; :mod:`repro.noxs` is its replacement.
"""

from .accesslog import DEFAULT_LOG_FILES, DEFAULT_ROTATE_LINES, AccessLog
from .client import (DOM0_ID, MAX_TX_RETRIES, TX_RETRY_POLICY,
                     BatchNotCommitted, XsBatch, XsClient, XsTxn)
from .daemon import (BatchError, DuplicateNameError, QuotaExceededError,
                     XenStoreDaemon)
from .permissions import (NodePerms, PERM_BOTH, PERM_NONE, PERM_READ,
                          PERM_WRITE, PermEntry, PermissionError_)
from .protocol import XenStoreCosts
from .store import (InvalidPathError, NoEntError, Node, StoreError,
                    XenStoreTree, split_path)
from .transaction import Transaction, TransactionConflict
from .watches import Watch, WatchManager

__all__ = [
    "AccessLog",
    "BatchError",
    "BatchNotCommitted",
    "DEFAULT_LOG_FILES",
    "DEFAULT_ROTATE_LINES",
    "DOM0_ID",
    "DuplicateNameError",
    "MAX_TX_RETRIES",
    "TX_RETRY_POLICY",
    "InvalidPathError",
    "NoEntError",
    "Node",
    "NodePerms",
    "PERM_BOTH",
    "PERM_NONE",
    "PERM_READ",
    "PERM_WRITE",
    "PermEntry",
    "PermissionError_",
    "QuotaExceededError",
    "StoreError",
    "Transaction",
    "TransactionConflict",
    "Watch",
    "WatchManager",
    "XenStoreCosts",
    "XenStoreDaemon",
    "XenStoreTree",
    "XsBatch",
    "XsClient",
    "XsTxn",
    "split_path",
]
