"""XenStore node permissions (ACLs).

Every XenStore node carries an owner domain and an access-control list,
exactly like xenstored's ``XS_SET_PERMS``: the first entry names the
owner and the *default* permission for everyone else; later entries give
specific domains read (``r``), write (``w``) or both (``b``).  Dom0 is
omnipotent.  The split-driver protocol depends on this: the toolstack
grants the front-end domain read access to its back-end directory so the
guest can fetch the event channel and grant reference at boot.
"""

from __future__ import annotations

import dataclasses
import typing

PERM_NONE = "n"
PERM_READ = "r"
PERM_WRITE = "w"
PERM_BOTH = "b"

_VALID = (PERM_NONE, PERM_READ, PERM_WRITE, PERM_BOTH)


class PermissionError_(PermissionError):
    """Access denied by a node's ACL (EACCES)."""


@dataclasses.dataclass(frozen=True)
class PermEntry:
    """One ACL entry: a domain and its rights."""

    domid: int
    perm: str

    def __post_init__(self):
        if self.perm not in _VALID:
            raise ValueError("invalid permission %r; expected one of %s"
                             % (self.perm, "/".join(_VALID)))

    @property
    def can_read(self) -> bool:
        return self.perm in (PERM_READ, PERM_BOTH)

    @property
    def can_write(self) -> bool:
        return self.perm in (PERM_WRITE, PERM_BOTH)


@dataclasses.dataclass
class NodePerms:
    """A node's complete ACL.

    ``entries[0]`` is the owner; its ``perm`` field is the default
    permission applied to domains not listed explicitly (xenstored
    semantics).
    """

    entries: typing.List[PermEntry]

    def __post_init__(self):
        if not self.entries:
            raise ValueError("ACL needs at least the owner entry")

    @classmethod
    def owned_by(cls, domid: int,
                 default: str = PERM_NONE) -> "NodePerms":
        """The standard ACL: owner with everyone-else default."""
        return cls([PermEntry(domid, default)])

    @property
    def owner_domid(self) -> int:
        return self.entries[0].domid

    def grant(self, domid: int, perm: str) -> "NodePerms":
        """Return a new ACL with ``domid`` granted ``perm``."""
        kept = [e for e in self.entries[1:] if e.domid != domid]
        return NodePerms([self.entries[0]]
                         + kept + [PermEntry(domid, perm)])

    def _effective(self, domid: int) -> PermEntry:
        if domid == self.owner_domid:
            return PermEntry(domid, PERM_BOTH)  # owners see their nodes
        for entry in self.entries[1:]:
            if entry.domid == domid:
                return entry
        # Unlisted domains get the owner entry's default permission.
        return PermEntry(domid, self.entries[0].perm)

    def allows_read(self, domid: int) -> bool:
        """Dom0 bypasses ACLs entirely."""
        return domid == 0 or self._effective(domid).can_read

    def allows_write(self, domid: int) -> bool:
        return domid == 0 or self._effective(domid).can_write
