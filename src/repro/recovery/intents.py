"""Per-phase intent records for toolstack crash consistency.

A toolstack operation (create/destroy/migrate) that can die mid-flight
opens an :class:`Intent` before touching shared state and advances it at
each phase boundary.  Normal completion closes the record; a crash
(:class:`~repro.faults.plan.ToolstackCrashed` — the process is gone, no
inline rollback runs) leaves it open, and the orphan reaper
(:class:`repro.recovery.reaper.OrphanReaper`) later walks the open
intents in id order and rolls each operation back or forward
deterministically:

=============  =====================================================
op             recovery action
=============  =====================================================
``create``     roll **back**: tear down whatever the half-built guest
               already acquired (devices, store subtrees, watches,
               ambient weight, the domain itself)
``destroy``    roll **forward**: the user asked for the guest to go;
               finish the teardown
``migrate``    resume the suspended source guest, destroy the
               destination's partial state
=============  =====================================================

The ``toolstack.create`` / ``toolstack.destroy`` / ``toolstack.migrate``
fault points are consulted through :func:`crash_check` at each phase
boundary — only when an intent is open, so toolstacks without the
recovery layer attached never consult them and existing fault plans keep
their exact schedules and digests.
"""

from __future__ import annotations

import dataclasses
import typing

from ..faults.plan import ToolstackCrashed


@dataclasses.dataclass
class Intent:
    """One in-flight toolstack operation's crash-recovery record."""

    intent_id: int
    #: Operation kind: "create", "destroy" or "migrate".
    op: str
    toolstack: typing.Any = None
    #: The domain the op concerns (None until one is allocated).
    domain: typing.Any = None
    config: typing.Any = None
    #: Last phase boundary the op reached ("" = opened, nothing done).
    phase: str = ""
    #: True while the op is in flight (or crashed); closed on completion
    #: and by the reaper after recovery.
    open: bool = True
    #: True once the op's crash point fired.
    crashed: bool = False
    #: Op-specific references (migration: source/destination/remote).
    notes: typing.Dict[str, typing.Any] = dataclasses.field(
        default_factory=dict)

    def advance(self, phase: str) -> None:
        """Record that the op completed the work up to ``phase``."""
        self.phase = phase

    def close(self) -> None:
        """Normal completion (or recovery done): nothing left to reap."""
        self.open = False


class IntentLog:
    """Append-only log of toolstack operation intents."""

    def __init__(self):
        self.intents: typing.List[Intent] = []
        self._next_id = 1

    def __len__(self) -> int:
        return len(self.intents)

    def open(self, op: str, toolstack=None, domain=None, config=None,
             **notes) -> Intent:
        intent = Intent(self._next_id, op, toolstack=toolstack,
                        domain=domain, config=config, notes=dict(notes))
        self._next_id += 1
        self.intents.append(intent)
        return intent

    def open_intents(self) -> typing.List[Intent]:
        """Open records in intent-id order — the reaper's work list."""
        return [intent for intent in self.intents if intent.open]


def crash_check(faults, intent: typing.Optional[Intent],
                phase: str) -> None:
    """Advance ``intent`` to ``phase`` and consult its op's crash point.

    A no-op when no intent is open (the toolstack runs without the
    recovery layer), so the ``toolstack.*`` points are only counted on
    recovery-enabled hosts.  When the point fires the toolstack process
    is considered dead: marks the intent crashed and raises
    :class:`ToolstackCrashed` — callers must *not* run inline rollback
    on it (the reaper owns recovery).
    """
    if intent is None:
        return
    intent.advance(phase)
    if faults is None:
        return
    if faults.fires("toolstack.%s" % intent.op) is not None:
        intent.crashed = True
        raise ToolstackCrashed(
            "toolstack died during %s of %r (phase %s)"
            % (intent.op, getattr(intent.config, "name", None)
               or getattr(intent.domain, "name", "?"), phase))
