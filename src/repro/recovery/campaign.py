"""The ``repro chaos`` campaign runner.

A *campaign* is N independent seeded runs of one scenario (a boot storm
or a create/destroy churn) on a recovery-enabled host, each under a
schedule of injected faults drawn deterministically from the run's seed.
After every run the campaign recovers the host (reaper pass), drains the
simulator, and audits :mod:`repro.faults.invariants` — a run *fails* iff
the audit reports violations (or an exception nobody typed escapes the
scenario).

Failing schedules are **shrunk** with delta debugging (ddmin over the
fault-rule list): the campaign re-runs the same seed with subsets of the
schedule until it finds a 1-minimal set of rules that still violates the
invariants.  The result is a *reproducer* — a small JSON document naming
the scenario, seed and minimal schedule — which :func:`replay` re-runs
bit-for-bit (same violations, same replay digest) on any machine.

Everything here is deterministic: schedules come from a named RNG stream
of the seed, runs are pure functions of ``(seed, schedule, scenario)``,
and the shrinker's re-runs build fresh simulators each time, so the
reproducer's recorded digest doubles as a replay check.

This module is *not* imported by :mod:`repro.recovery`'s ``__init__``:
it needs :class:`~repro.core.host.Host`, which lazily imports the
recovery package, and keeping the campaign out of that cycle keeps
``Host`` importable from either side.  Import it explicitly::

    from repro.recovery import campaign
"""

from __future__ import annotations

import dataclasses
import typing

from ..analysis.sanitize import EventTrace
from ..core.host import Host
from ..faults import (FaultPlan, FaultRule, InjectedFault, MigrationAborted,
                      Overloaded, RetryExhausted)
from ..guests.catalog import lookup
from ..guests.images import GuestImage
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry

#: Reproducer JSON format version (bump on incompatible change).
REPRODUCER_VERSION = 1

#: Fault points a generated schedule draws from.  All of them are live
#: on the XenStore-backed variants; occurrence-based rules on points the
#: run never reaches are simply inert (and get shrunk away).
CAMPAIGN_POINTS = (
    "xenstore.daemon_crash",
    "toolstack.create",
    "toolstack.destroy",
    "xenstore.message",
    "xenstore.commit",
    "hypervisor.hypercall",
)

#: Errors a scenario absorbs per-operation and keeps going — the typed
#: failures the control plane is *supposed* to surface under faults.
#: Anything else that escapes is recorded as an invariant violation.
ABSORBED = (InjectedFault, Overloaded, MigrationAborted, RetryExhausted)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _absorb(outcome, fn):
    """Run ``fn``; fold typed failures into the outcome counters."""
    try:
        return fn()
    except ABSORBED as exc:
        name = type(exc).__name__
        outcome["errors"][name] = outcome["errors"].get(name, 0) + 1
    except Exception as exc:  # untyped escape = a finding, not a crash
        outcome["unhandled"].append("%s: %s" % (type(exc).__name__, exc))
    return None


def _boot_storm(host, image, count, outcome):
    """Create ``count`` guests back to back (Fig 10's regime)."""
    for _ in range(count):
        _absorb(outcome, lambda: host.create_vm(image))


def _churn(host, image, count, outcome):
    """Interleave creates with destroys of the oldest survivor."""
    alive = []
    for index in range(count):
        record = _absorb(outcome, lambda: host.create_vm(image))
        if record is not None:
            alive.append(record.domain)
        if index % 3 == 2 and alive:
            victim = alive.pop(0)
            _absorb(outcome, lambda: host.destroy_vm(victim))


SCENARIOS = {
    "boot-storm": _boot_storm,
    "churn": _churn,
}


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def generate_schedule(seed: int,
                      points: typing.Sequence[str] = CAMPAIGN_POINTS,
                      max_rules: int = 3,
                      max_occurrence: int = 40
                      ) -> typing.Tuple[FaultRule, ...]:
    """Draw a fault schedule from ``seed``: 1..max_rules occurrence-based
    rules over ``points``.  Occurrence-based (not probabilistic) so the
    schedule *is* the reproducer — replaying it needs no RNG state."""
    rng = RngRegistry(seed).stream("chaos/schedule")
    rules = []
    for _ in range(1 + rng.randrange(max_rules)):
        point = points[rng.randrange(len(points))]
        occurrence = 1 + rng.randrange(max_occurrence)
        rules.append(FaultRule(point=point, at=(occurrence,), kind="chaos"))
    return tuple(rules)


def rule_to_dict(rule: FaultRule) -> dict:
    return {"point": rule.point, "probability": rule.probability,
            "at": list(rule.at), "max_fires": rule.max_fires,
            "kind": rule.kind, "delay_ms": rule.delay_ms}


def rule_from_dict(data: dict) -> FaultRule:
    return FaultRule(point=data["point"],
                     probability=data.get("probability", 0.0),
                     at=tuple(data.get("at") or ()),
                     max_fires=data.get("max_fires"),
                     kind=data.get("kind", ""),
                     delay_ms=data.get("delay_ms", 0.0))


# ----------------------------------------------------------------------
# One run
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ScheduleResult:
    """Outcome of one seeded run under one fault schedule."""

    seed: int
    schedule: typing.Tuple[FaultRule, ...]
    #: Invariant violations after recovery + drain (empty = pass).
    violations: typing.List[str]
    #: Replay digest of the full event timeline, crashes included.
    digest: str
    #: Guests still running at the end.
    guests: int
    #: Typed errors the scenario absorbed, by exception name.
    errors: typing.Dict[str, int]
    #: Recovery-layer counters (RecoveryManager.metrics()).
    recovery: typing.Dict[str, typing.Any]

    @property
    def ok(self) -> bool:
        return not self.violations


def run_schedule(schedule: typing.Sequence[FaultRule],
                 seed: int = 0,
                 scenario: str = "boot-storm",
                 variant: str = "chaos+xs",
                 image: typing.Union[str, GuestImage] = "daytime",
                 count: int = 8,
                 queue_cap: typing.Optional[int] = None,
                 reap: bool = True) -> ScheduleResult:
    """One chaos run: scenario under ``schedule``, recovery pass, audit.

    ``reap=False`` skips the recovery pass (the reaper) — crashed
    operations then stay half-done, which the invariant audit reports.
    That is the campaign's self-test knob: a schedule that crashes the
    toolstack *must* fail when nobody reaps."""
    try:
        scenario_fn = SCENARIOS[scenario]
    except KeyError:
        raise ValueError("unknown scenario %r; expected one of %s"
                         % (scenario, ", ".join(sorted(SCENARIOS))))
    guest = lookup(image) if isinstance(image, str) else image
    sim = Simulator()
    trace = EventTrace().attach(sim)
    host = Host(variant=variant, seed=seed, sim=sim,
                pool_target=count + 8, shell_memory_kb=guest.memory_kb,
                fault_plan=FaultPlan(rules=tuple(schedule), seed=seed),
                xenstore_queue_cap=queue_cap,
                recovery=True)
    host.warmup(20.0 * (count + 8))
    outcome = {"errors": {}, "unhandled": []}
    scenario_fn(host, guest, count, outcome)
    if reap:
        _absorb(outcome, lambda: host.recover())
    # Drain in-flight teardowns and restarts before auditing.
    sim.run(until=sim.now + 500.0)
    violations = host.check_invariants()
    violations.extend("unhandled error escaped the scenario: %s" % item
                      for item in outcome["unhandled"])
    return ScheduleResult(seed=seed, schedule=tuple(schedule),
                          violations=violations, digest=trace.digest(),
                          guests=host.running_guests,
                          errors=outcome["errors"],
                          recovery=host.recovery.metrics())


# ----------------------------------------------------------------------
# Shrinking (ddmin)
# ----------------------------------------------------------------------
def _split(items: list, n: int) -> typing.List[list]:
    size, rem = divmod(len(items), n)
    chunks, start = [], 0
    for index in range(n):
        end = start + size + (1 if index < rem else 0)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks


def shrink(schedule: typing.Sequence[FaultRule],
           failing: typing.Callable[[typing.Tuple[FaultRule, ...]], bool]
           ) -> typing.Tuple[FaultRule, ...]:
    """Delta-debug ``schedule`` down to a 1-minimal failing subset.

    ``failing(subset)`` re-runs the experiment and returns True when the
    subset still fails; ``failing(schedule)`` must be True on entry.
    Classic ddmin: try each chunk alone, then each complement, doubling
    granularity when neither reduces."""
    rules = list(schedule)
    n = 2
    while len(rules) >= 2:
        chunks = _split(rules, n)
        reduced = False
        for chunk in chunks:
            if failing(tuple(chunk)):
                rules, n, reduced = chunk, 2, True
                break
        if not reduced:
            for index in range(len(chunks)):
                complement = [rule
                              for other in chunks[:index] + chunks[index + 1:]
                              for rule in other]
                if complement and failing(tuple(complement)):
                    rules, n, reduced = complement, max(n - 1, 2), True
                    break
        if not reduced:
            if n >= len(rules):
                break
            n = min(len(rules), n * 2)
    return tuple(rules)


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CampaignReport:
    """Aggregate outcome of a multi-seed campaign."""

    scenario: str
    variant: str
    image: str
    count: int
    runs: typing.List[ScheduleResult] = dataclasses.field(
        default_factory=list)
    #: One reproducer dict per failing seed, schedule already shrunk.
    failures: typing.List[dict] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def make_reproducer(result: ScheduleResult, scenario: str, variant: str,
                    image: str, count: int,
                    queue_cap: typing.Optional[int],
                    reap: bool) -> dict:
    """The replayable JSON document for one failing (shrunk) run."""
    return {
        "version": REPRODUCER_VERSION,
        "scenario": scenario,
        "variant": variant,
        "image": image,
        "count": count,
        "seed": result.seed,
        "queue_cap": queue_cap,
        "reap": reap,
        "schedule": [rule_to_dict(rule) for rule in result.schedule],
        "violations": list(result.violations),
        "digest": result.digest,
    }


def replay(reproducer: dict) -> ScheduleResult:
    """Re-run a reproducer document; deterministic, so the result's
    violations and digest match the recorded ones."""
    version = reproducer.get("version")
    if version != REPRODUCER_VERSION:
        raise ValueError("reproducer version %r not supported (want %d)"
                         % (version, REPRODUCER_VERSION))
    schedule = tuple(rule_from_dict(data)
                     for data in reproducer["schedule"])
    return run_schedule(schedule,
                        seed=reproducer["seed"],
                        scenario=reproducer["scenario"],
                        variant=reproducer["variant"],
                        image=reproducer["image"],
                        count=reproducer["count"],
                        queue_cap=reproducer.get("queue_cap"),
                        reap=reproducer.get("reap", True))


def run_campaign(seeds: int = 16,
                 base_seed: int = 0,
                 scenario: str = "boot-storm",
                 variant: str = "chaos+xs",
                 image: str = "daytime",
                 count: int = 8,
                 queue_cap: typing.Optional[int] = None,
                 reap: bool = True,
                 do_shrink: bool = True,
                 max_rules: int = 3,
                 max_occurrence: int = 40,
                 log: typing.Optional[typing.Callable[[str], None]] = None
                 ) -> CampaignReport:
    """Run ``seeds`` independent seeded fault schedules; shrink and
    record a reproducer for every failing one."""
    report = CampaignReport(scenario=scenario, variant=variant,
                            image=image, count=count)
    say = log or (lambda _line: None)
    for index in range(seeds):
        seed = base_seed + index

        def rerun(subset):
            return run_schedule(subset, seed=seed, scenario=scenario,
                                variant=variant, image=image, count=count,
                                queue_cap=queue_cap, reap=reap)

        schedule = generate_schedule(seed, max_rules=max_rules,
                                     max_occurrence=max_occurrence)
        result = rerun(schedule)
        report.runs.append(result)
        if result.ok:
            say("seed %d: ok (%d rule(s), %d guest(s), digest %s)"
                % (seed, len(schedule), result.guests, result.digest[:12]))
            continue
        say("seed %d: %d violation(s) under %d rule(s); shrinking..."
            % (seed, len(result.violations), len(schedule)))
        final = result
        if do_shrink and len(result.schedule) > 1:
            minimal = shrink(result.schedule,
                             lambda subset: not rerun(subset).ok)
            final = rerun(minimal)
        report.failures.append(make_reproducer(
            final, scenario, variant, image, count, queue_cap, reap))
        say("seed %d: minimal reproducer has %d rule(s): %s"
            % (seed, len(final.schedule),
               ", ".join("%s@%s" % (rule.point, list(rule.at))
                         for rule in final.schedule)))
    return report
