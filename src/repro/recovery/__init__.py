"""Crash recovery and graceful degradation for the control plane.

The paper's density argument (§4.2, Fig 10) assumes the control plane
*stays up* while thousands of guests churn.  This package models what it
takes to keep that true when pieces of it die:

* :mod:`~repro.recovery.journal` — the XenStore daemon's write-ahead op
  journal; a crash (``xenstore.daemon_crash``) discards in-memory state
  and a restart replays the journal (oxenstored's tdb durability model);
* :mod:`~repro.recovery.watchdog` — the Dom0 service manager that
  notices the crash and drives the restart on the timeline;
* :mod:`~repro.recovery.intents` — per-phase intent records for
  toolstack operations, so a toolstack killed mid-create/destroy/migrate
  (``toolstack.*`` crash points) leaves an auditable trail instead of
  silent orphans;
* :mod:`~repro.recovery.reaper` — walks open intents and the store and
  rolls half-done operations back or forward deterministically;
* :mod:`~repro.recovery.campaign` — the ``repro chaos`` campaign runner:
  N seeded fault schedules against a scenario, invariants checked after
  every recovery, failing schedules shrunk to a minimal reproducer.

Everything is **opt-in and digest-gated**: a
:class:`~repro.core.host.Host` built without ``recovery=True`` never
consults the new fault points, never journals and never sheds, so its
event timelines (and replay digests) are byte-identical to pre-recovery
builds.  Recovery-enabled runs keep the same contract among themselves:
same seed + same plan = same digest, crashes included.
"""

from .intents import Intent, IntentLog, crash_check
from .journal import JournalCosts, OpJournal
from .reaper import OrphanReaper
from .watchdog import Watchdog, WatchdogCosts

__all__ = [
    "Intent",
    "IntentLog",
    "JournalCosts",
    "OpJournal",
    "OrphanReaper",
    "RecoveryManager",
    "Watchdog",
    "WatchdogCosts",
    "crash_check",
]


class RecoveryManager:
    """Wires the whole recovery layer into one :class:`Host`.

    Attaches the op journal + watchdog to the XenStore daemon (when the
    variant has one), intent records + the crash injector to the
    toolstack, and builds the orphan reaper.  Constructed by
    ``Host(recovery=True)``.
    """

    def __init__(self, host, journal_costs=None, watchdog_costs=None):
        self.host = host
        self.intents = IntentLog()
        self.journal = None
        self.watchdog = None
        if host.xenstore is not None:
            self.journal = OpJournal()
            host.xenstore.attach_journal(self.journal, journal_costs)
            self.watchdog = Watchdog(host.sim, host.xenstore,
                                     watchdog_costs)
            self.watchdog.arm()
        host.toolstack.attach_intents(self.intents, host.faults)
        self.reaper = OrphanReaper(host.sim, self.intents, host.toolstack)

    def recover(self):
        """Generator: one recovery pass — reap open intents (rolling
        crashed operations back or forward), then sweep the store for
        orphan subtrees."""
        yield from self.reaper.reap()

    def metrics(self):
        """Counters for the whole layer (campaign/CLI reporting)."""
        return {
            "intents": len(self.intents),
            "open_intents": len(self.intents.open_intents()),
            "reaped": dict(self.reaper.reaped),
            "swept_paths": len(self.reaper.swept_paths),
            "journal_entries": (len(self.journal)
                                if self.journal is not None else 0),
            "watchdog": (self.watchdog.health()
                         if self.watchdog is not None else None),
        }
