"""Write-ahead op journal for the XenStore daemon.

oxenstored persists its store to a database (``tdb``) and replays it on
restart; clients then re-announce their watches.  The journal models that
durability boundary: the daemon appends one entry per *committed* effect
— tree mutations, quota deltas, ambient-client registrations — and a
restart rebuilds the whole daemon state by replaying the entries in
order against a fresh tree.

The crash point (``xenstore.daemon_crash``) fires inside the daemon's
charge path *before* the current op mutates anything, so at crash time
the journal is exactly the committed history: replay is deterministic
re-execution and reproduces the tree (values, owners, ACLs, generation
counters), the per-domain quota counts and the ambient-weight float
bit-for-bit.  Watches are daemon-side callback registrations held by
live client objects; the restart keeps the registry (modeling clients
re-announcing during the recovery window) and charges reconciliation
latency per registered watch.

Entries are in-memory tuples — the journal is a simulation artifact, not
a file format.  Entry kinds:

=============  ========================================  =================
kind           payload                                   appended by
=============  ========================================  =================
``write``      ``(domid, path, value)``                  write / batch / tx
``mkdir``      ``(domid, path)``                         mkdir / batch
``rm``         ``(path,)``                               rm / batch / tx
``perms``      ``(domid, path, perms)``                  set_perms
``quota``      ``(domid, delta)`` (the *applied* delta)  quota accounting
``register``   ``(weight,)``                             register_client
``unregister`` ``(weight,)``                             unregister_client
=============  ========================================  =================
"""

from __future__ import annotations

import dataclasses
import typing

from ..xenstore.store import NoEntError, XenStoreTree


@dataclasses.dataclass(frozen=True)
class JournalCosts:
    """Latency constants for the crash/restart model (ms unless noted)."""

    #: Crash detection + daemon re-exec before replay starts (the
    #: watchdog's health-check interval is modeled separately).
    restart_downtime_ms: float = 5.0
    #: Replaying one journal entry into the fresh tree (µs).
    replay_us_per_entry: float = 1.0
    #: Reconciling one registered watch on restart (µs) — the client
    #: re-announces and the daemon re-indexes it.
    watch_reconcile_us: float = 2.0


class OpJournal:
    """Append-only journal of the daemon's committed effects."""

    def __init__(self):
        self.entries: typing.List[tuple] = []
        #: Total entries ever appended (survives :meth:`reset`).
        self.appended_total = 0

    def __len__(self) -> int:
        return len(self.entries)

    # -- append (called by the daemon at each committed effect) ---------
    def _append(self, entry: tuple) -> None:
        self.entries.append(entry)
        self.appended_total += 1

    def record_write(self, domid: int, path: str, value: str) -> None:
        self._append(("write", domid, path, value))

    def record_mkdir(self, domid: int, path: str) -> None:
        self._append(("mkdir", domid, path))

    def record_rm(self, path: str) -> None:
        self._append(("rm", path))

    def record_perms(self, domid: int, path: str, perms) -> None:
        self._append(("perms", domid, path, perms))

    def record_quota(self, domid: int, delta: int) -> None:
        """Record the quota delta *actually applied* (clamps included),
        so replay is unconditional addition — no re-derivation drift."""
        if delta:
            self._append(("quota", domid, delta))

    def record_register(self, weight: float) -> None:
        self._append(("register", weight))

    def record_unregister(self, weight: float) -> None:
        self._append(("unregister", weight))

    # -- replay ---------------------------------------------------------
    def replay(self) -> typing.Tuple[XenStoreTree,
                                     typing.Dict[int, int], float]:
        """Rebuild ``(tree, node_counts, ambient_clients)`` from scratch.

        Replays the committed history in append order; every formula
        mirrors the daemon's original mutation site (including the
        ``max(0.0, ...)`` clamp on unregister), so the rebuilt state is
        bit-identical to the pre-crash state.
        """
        tree = XenStoreTree()
        counts: typing.Dict[int, int] = {}
        ambient = 0.0
        for entry in self.entries:
            kind = entry[0]
            if kind == "write":
                _, domid, path, value = entry
                tree.write(path, value, owner_domid=domid)
            elif kind == "mkdir":
                tree.mkdir(entry[2], owner_domid=entry[1])
            elif kind == "rm":
                try:
                    tree.rm(entry[1])
                except NoEntError:
                    pass
            elif kind == "perms":
                _, _domid, path, perms = entry
                tree.set_perms(path, perms)
            elif kind == "quota":
                _, domid, delta = entry
                counts[domid] = counts.get(domid, 0) + delta
            elif kind == "register":
                ambient = ambient + entry[1]
            elif kind == "unregister":
                ambient = max(0.0, ambient - entry[1])
            else:  # pragma: no cover - the daemon only appends the above
                raise ValueError("unknown journal entry kind %r" % (kind,))
        return tree, counts, ambient
