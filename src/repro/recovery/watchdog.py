"""The watchdog: health checks and crash-driven daemon restart.

Models the Dom0 service manager (systemd unit / xenstored's watchdog
wrapper) that notices the XenStore daemon died and re-execs it.  The
watchdog is a **daemon process** in the simulation (excluded from the
sanitizer's stalled-process checks) that parks on the daemon's
``crash_event`` — fully event-driven, so an idle watchdog adds zero
events to the timeline and never perturbs digests.

On a crash it waits the detection delay (the health-check interval: a
real watchdog polls, it does not get a signal) and then drives
:meth:`XenStoreDaemon.restart`, which replays the op journal and resumes
every request that queued while the daemon was down.
"""

from __future__ import annotations

import dataclasses
import typing

from ..trace.tracer import tracer_of

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator
    from ..xenstore.daemon import XenStoreDaemon


@dataclasses.dataclass(frozen=True)
class WatchdogCosts:
    """Latency constants (ms)."""

    #: Time from the crash to the watchdog noticing (half a health-check
    #: interval on average; fixed here for determinism).
    detection_delay_ms: float = 3.0


class Watchdog:
    """Restarts the XenStore daemon when it crashes."""

    def __init__(self, sim: "Simulator", daemon: "XenStoreDaemon",
                 costs: typing.Optional[WatchdogCosts] = None):
        self.sim = sim
        self.daemon = daemon
        self.costs = costs or WatchdogCosts()
        #: Crashes detected (== restarts driven).
        self.detections = 0
        self._stopped = False
        self._process = None

    def arm(self) -> None:
        """Start the watchdog process (idempotent)."""
        if self._process is None:
            self._process = self.sim.process(self._run())
            self._process.daemon = True

    def stop(self) -> None:
        """Stop watching after the current restart (end-of-run)."""
        self._stopped = True

    def health(self) -> typing.Dict[str, typing.Any]:
        """Snapshot of the daemon's health as the watchdog sees it."""
        daemon = self.daemon
        return {
            "up": not daemon.crashed,
            "epoch": daemon.epoch,
            "crashes": daemon.stats["crashes"],
            "restarts": daemon.stats["restarts"],
            "journal_entries": (len(daemon.journal)
                                if daemon.journal is not None else 0),
            "queue_depth": max(len(shard.queue)
                               for shard in daemon._shards),
        }

    def _run(self):
        """Process: wait for crashes, drive restarts (event-driven)."""
        while not self._stopped:
            event = self.daemon.crash_event
            if event is None:
                return  # no journal attached (or daemon mid-crash)
            yield event
            if self._stopped:
                return
            self.detections += 1
            with tracer_of(self.sim).span("recovery.watchdog",
                                          epoch=self.daemon.epoch):
                yield self.sim.timeout(self.costs.detection_delay_ms)
                yield from self.daemon.restart()
