"""The orphan reaper: crash consistency for half-done toolstack ops.

When a toolstack process dies mid-operation (the ``toolstack.*`` crash
points), no inline rollback runs — the half-built or half-torn-down
guest simply stays behind, exactly like an ``xl create`` killed with
SIGKILL leaves stale ``/local/domain/<id>`` entries and a paused domain.
The reaper restores consistency deterministically:

1. walk the open :class:`~repro.recovery.intents.Intent` records in
   intent-id order and roll each operation back (create) or forward
   (destroy), or resume-source / reap-destination (migrate);
2. sweep the store against the hypervisor's domain list and remove any
   ``/local/domain/<id>`` / ``/vm/<id>`` subtree whose domain no longer
   exists (orphans from operations that never opened an intent).

Every teardown path is the toolstack's own tolerant rollback, so the
reaper ends in the same state an un-crashed failure path would have —
which is what lets the post-recovery invariant check
(:func:`repro.faults.invariants.check_host`) stay strict.
"""

from __future__ import annotations

import typing

from ..hypervisor.domain import DomainState
from ..toolstack.devices import _patient_rm
from ..trace.tracer import tracer_of
from .intents import Intent, IntentLog

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


class _TeardownSpec:
    """Minimal config stand-in built from ``domain.image`` — enough for
    the toolstacks' ``_rollback_create`` (device counts + a name)."""

    def __init__(self, domain):
        image = domain.image
        self.name = domain.name
        self.vifs = [dict() for _ in range(image.vifs if image else 0)]
        self.vbds = [dict() for _ in range(image.vbds if image else 0)]


class OrphanReaper:
    """Rolls crashed toolstack operations back or forward."""

    def __init__(self, sim: "Simulator", intents: IntentLog,
                 toolstack=None):
        self.sim = sim
        self.intents = intents
        #: Primary toolstack — supplies the store handle and hypervisor
        #: for the orphan sweep (migration intents carry their own).
        self.toolstack = toolstack
        self.reaped = {"create": 0, "destroy": 0, "migrate": 0}
        #: Orphan subtrees the sweep removed (no intent pointed at them).
        self.swept_paths: typing.List[str] = []

    def reap(self):
        """Generator: recover every open intent, then sweep the store."""
        for intent in self.intents.open_intents():
            with tracer_of(self.sim).span("recovery.reap", op=intent.op,
                                          intent=intent.intent_id,
                                          phase=intent.phase):
                yield from self._reap_intent(intent)
            intent.close()
            self.reaped[intent.op] += 1
        yield from self.sweep()

    def _reap_intent(self, intent: Intent):
        if intent.op == "create":
            yield from self._roll_back_create(intent)
        elif intent.op == "destroy":
            yield from self._roll_forward_destroy(intent)
        elif intent.op == "migrate":
            yield from self._recover_migration(intent)
        else:
            raise ValueError("unknown intent op %r" % (intent.op,))

    # -- create: roll back ---------------------------------------------
    def _roll_back_create(self, intent: Intent):
        """The guest never finished creating — nothing depends on it, so
        take it apart with the toolstack's own tolerant rollback."""
        if intent.domain is None:
            return  # died before the domain existed: nothing to undo
        config = intent.config or _TeardownSpec(intent.domain)
        yield from intent.toolstack._rollback_create(intent.domain, config)

    # -- destroy: roll forward -----------------------------------------
    def _roll_forward_destroy(self, intent: Intent):
        """The user asked for the guest to go; finish the teardown.  The
        tolerant rollback reaches the same end state from any phase."""
        domain = intent.domain
        toolstack = intent.toolstack
        if domain.state == DomainState.RUNNING:
            toolstack.hypervisor.domctl_pause(domain)
        config = intent.config or _TeardownSpec(domain)
        yield from toolstack._rollback_create(domain, config)

    # -- migrate: resume source, reap destination ----------------------
    def _recover_migration(self, intent: Intent):
        """The migrating process died mid-memory-copy: the source guest
        is suspended (and intact) and the destination holds a pre-created
        domain that never received memory.  Resume the source exactly
        like a link-failure abort, then reap the destination's partial
        state."""
        from ..toolstack.migration import _abort_migration
        yield from _abort_migration(intent.notes["source"],
                                    intent.notes["destination"],
                                    intent.domain, intent.config,
                                    intent.notes["remote_domain"])

    # -- the orphan sweep ----------------------------------------------
    def sweep(self):
        """Generator: remove store subtrees whose domain is gone.

        Compares ``/local/domain/<id>`` and ``/vm/<id>`` against the
        hypervisor's live domain table (child listings are sorted, so
        the sweep order is deterministic).  Catches leftovers from
        operations that never opened an intent — the store-side analogue
        of ``xl destroy`` on a zombie domid.
        """
        toolstack = self.toolstack
        xs = getattr(toolstack, "xs", None)
        if toolstack is None or xs is None:
            return
        hypervisor = toolstack.hypervisor
        rng = getattr(toolstack, "rng", None)
        for base in ("/local/domain", "/vm"):
            if not xs.tree.exists(base):
                continue
            names = yield from xs.directory(base)
            for name in names:
                if not name.isdigit():
                    continue
                domid = int(name)
                if domid == 0 or domid in hypervisor.domains:
                    continue
                path = "%s/%s" % (base, name)
                with tracer_of(self.sim).span("recovery.sweep",
                                              path=path):
                    yield from _patient_rm(self.sim, xs, path, rng)
                toolstack.xenstore.watches.remove_for_domain(domid)
                self.swept_paths.append(path)
