"""Guest image descriptions.

A :class:`GuestImage` carries everything the virtualization platform needs
to know about a VM image: on-disk sizes (kernel vs root filesystem — the
distinction matters because only the kernel+initrd is parsed and loaded at
creation time, which is what makes Fig 2 linear in *kernel* image size),
runtime memory footprint, and the guest-side boot behaviour parameters.
"""

from __future__ import annotations

import dataclasses
import enum


class GuestKind(enum.Enum):
    """The three VM families the paper evaluates, §6."""

    UNIKERNEL = "unikernel"   # MiniOS-based, single address space
    TINYX = "tinyx"           # trimmed Linux built by the Tinyx system
    DISTRO = "distro"         # full distribution (Debian jessie)


@dataclasses.dataclass(frozen=True)
class GuestImage:
    """An immutable VM image description."""

    name: str
    kind: GuestKind
    #: Kernel (+ bundled initramfs) size: parsed/loaded at creation (KiB).
    kernel_size_kb: int
    #: Root filesystem size (KiB); 0 for unikernels/Tinyx-initramfs images.
    rootfs_size_kb: int
    #: Runtime memory the VM needs (KiB).
    memory_kb: int
    #: Guest-side CPU work to boot, in cpu-ms on an uncontended core.
    boot_cpu_ms: float
    #: Fixed non-CPU boot latency (device waits, timers), ms.
    boot_fixed_ms: float = 0.0
    #: Number of virtual network interfaces the image expects.
    vifs: int = 0
    #: Number of virtual block devices the image expects.
    vbds: int = 0
    #: Fluid background CPU weight an *idle* instance exerts (Fig 15):
    #: Debian runs services; Tinyx runs occasional housekeeping;
    #: unikernels are perfectly idle.
    idle_cpu_weight: float = 0.0
    #: Boot slow-down per co-resident guest on the same core (Fig 11):
    #: idle guests' periodic wakeups delay a booting guest's timeslices.
    sched_contention: float = 0.0
    #: Co-residents per core before contention starts to bite: below this,
    #: the background tasks' duty cycles fit into the core's idle time
    #: (Fig 11: Tinyx tracks Docker until ~250 guests per core).
    sched_contention_threshold: int = 0
    #: Extra XenStore nodes this image's configuration writes beyond the
    #: common set (consoles, features, platform flags...).
    extra_xenstore_entries: int = 0
    #: Persistent watches the guest's xenbus registers while running
    #: (frontend state watches, shutdown control, console...).  oxenstored
    #: scans all of them on every mutation, so these drive the superlinear
    #: XenStore cost of §4.2.
    xenbus_watches: int = 0
    #: How much ambient XenStore traffic a running instance generates,
    #: relative to a single-purpose unikernel (consoles, daemons, udev...).
    ambient_weight: float = 1.0
    #: Fixed toolstack-side image build cost beyond the size-linear load
    #: (bzImage/initramfs processing for Linux guests vs a plain ELF for
    #: unikernels), ms.
    toolstack_build_ms: float = 0.0

    @property
    def disk_size_kb(self) -> int:
        """Total on-disk footprint (kernel + root filesystem)."""
        return self.kernel_size_kb + self.rootfs_size_kb

    def with_kernel_size(self, kernel_size_kb: int) -> "GuestImage":
        """Clone with an inflated kernel image (the Fig 2 methodology:
        "injecting binary objects into the uncompressed image file")."""
        return dataclasses.replace(self, kernel_size_kb=kernel_size_kb)

    def with_name(self, name: str) -> "GuestImage":
        """Clone under a different name."""
        return dataclasses.replace(self, name=name)

    def with_memory(self, memory_kb: int) -> "GuestImage":
        """Clone with a different runtime memory reservation."""
        return dataclasses.replace(self, memory_kb=memory_kb)

    @property
    def device_count(self) -> int:
        """Total virtual devices to set up at creation."""
        return self.vifs + self.vbds
