"""Guest-side boot: front-end device bring-up plus kernel boot work.

Two control-plane paths exist, matching Figure 7:

* **XenStore path** (7a): the guest's xenbus contacts the XenStore to read
  the connection details the back-end published (event channel, grant
  reference), then binds and maps them — several protocol round-trips per
  device.
* **noxs path** (7b): the guest issues one hypercall to map its device
  page, parses the packed entries, and connects to the back-end directly —
  no XenStore involved.

After device bring-up the kernel's boot work runs on the guest's vCPU.
Idle co-resident guests slow it down (their periodic wakeups steal
timeslices), which is what bends the Tinyx curve in Fig 11.
"""

from __future__ import annotations

import dataclasses
import typing

from ..hypervisor.devicepage import DevicePage, STATE_CONNECTED
from ..hypervisor.domain import Domain, DomainState
from ..hypervisor.hypervisor import DOM0_ID, Hypervisor
from .images import GuestImage

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator
    from ..xenstore.daemon import XenStoreDaemon


@dataclasses.dataclass
class GuestCosts:
    """Guest-side cost constants (µs unless noted)."""

    #: Binding an event channel (hypercall).
    evtchn_bind_us: float = 4.0
    #: Mapping a granted page (hypercall + page-table update).
    grant_map_us: float = 6.0
    #: Front-end driver initialization per device (ring setup etc.).
    frontend_init_us: float = 40.0
    #: Mapping + parsing the noxs device page (one hypercall).
    devpage_map_us: float = 8.0
    #: Connecting the guest's xenbus to the XenStore at boot.
    xenbus_connect_us: float = 30.0


@dataclasses.dataclass
class BootReport:
    """Timing breakdown of one guest boot."""

    device_ms: float
    cpu_ms: float
    total_ms: float


class GuestBootError(RuntimeError):
    """The guest could not bring up its devices (missing entries etc.)."""


#: Fluid Dom0 CPU weight per connected device: netback/blkback polling and
#: interrupt handling for an otherwise idle guest.  This is why Fig 15's
#: unikernel CPU utilisation sits "only a fraction of a percentage point
#: higher" than Docker's.
NETBACK_DOM0_WEIGHT_PER_DEVICE = 1.5e-5


def _contention_multiplier(hypervisor: Hypervisor, domain: Domain,
                           image: GuestImage) -> float:
    """Boot slowdown from idle co-residents on the boot vCPU's core."""
    if not image.sched_contention or not domain.vcpu_cores:
        return 1.0
    core = domain.vcpu_cores[0]
    co_residents = max(0, hypervisor.scheduler.residents_on(core) - 1)
    excess = max(0, co_residents - image.sched_contention_threshold)
    return 1.0 + excess * image.sched_contention


def _bring_up_noxs_devices(sim: "Simulator", hypervisor: Hypervisor,
                           domain: Domain, costs: GuestCosts):
    """Generator: the Fig 7b guest path — map page, parse, connect."""
    view = hypervisor.devpage_map(domain.domid)
    yield sim.timeout(costs.devpage_map_us / 1000.0)
    entries = DevicePage.parse(view)
    for entry in entries:
        grant = hypervisor.grants.entry(entry.backend_domid,
                                        entry.grant_ref)
        if grant.mapped_by == domain.domid:
            # Reboot fast path: the control page is still mapped and the
            # channel bound from the previous life; just re-init.
            yield sim.timeout(costs.frontend_init_us / 1000.0)
            continue
        # Bind to the back-end's unbound event channel.
        hypervisor.event_channels.bind_interdomain(
            domain.domid, entry.backend_domid, entry.evtchn_port)
        yield sim.timeout(costs.evtchn_bind_us / 1000.0)
        # Map the device control page by grant reference.
        hypervisor.grants.map_ref(domain.domid, entry.backend_domid,
                                  entry.grant_ref)
        yield sim.timeout(costs.grant_map_us / 1000.0)
        yield sim.timeout(costs.frontend_init_us / 1000.0)
    # Mark each entry connected (hypervisor-side state page update).
    if domain.device_page is not None:
        for index, _entry in domain.device_page.entries():
            domain.device_page.update_state(index, STATE_CONNECTED)
    return len(entries)


def _until_admitted(sim: "Simulator", make_gen):
    """Generator: drive ``make_gen()``, waiting out daemon load shedding.

    A frontend's xenbus requests have nowhere else to go: when the
    daemon's bounded admission queue sheds one (:class:`Overloaded`,
    only possible on hosts built with a ``queue_cap``), the guest parks
    and re-issues it.  Shedding happens before the daemon mutates
    anything, so the re-issue is idempotent; the backoff is
    deterministic (no jitter), so replays digest identically."""
    from ..faults.plan import Overloaded
    delay_ms = 0.5
    while True:
        try:
            return (yield from make_gen())
        except Overloaded:
            yield sim.timeout(delay_ms)
            delay_ms = min(delay_ms * 2.0, 8.0)


def _bring_up_xenstore_devices(sim: "Simulator", hypervisor: Hypervisor,
                               domain: Domain, image: GuestImage,
                               xenstore: "XenStoreDaemon",
                               costs: GuestCosts):
    """Generator: the Fig 7a guest path — read back-end info via XenStore."""
    from ..xenstore.client import XsClient
    xs = XsClient(xenstore, domain.domid)  # guest-side handle
    yield sim.timeout(costs.xenbus_connect_us / 1000.0)
    # Register the guest's persistent xenbus watches (frontend state,
    # shutdown control, console...).  These live for the VM's lifetime and
    # make every later XenStore mutation's scan a little more expensive —
    # the root of §4.2's superlinear growth.
    registered = []
    for index in range(image.xenbus_watches):
        path = "/local/domain/%d/watch/%d" % (domain.domid, index)
        watch = yield from _until_admitted(
            sim, lambda: xs.watch(path, "guest", lambda _p, _t: None))
        registered.append(watch)
    domain.notes["xenbus_watches"] = registered
    connected = 0
    for kind, count in (("vif", image.vifs), ("vbd", image.vbds)):
        for index in range(count):
            base = "/local/domain/%d/backend/%s/%d/%d" % (
                DOM0_ID, kind, domain.domid, index)
            try:
                port = int((yield from _until_admitted(
                    sim, lambda: xs.read(base + "/event-channel"))))
                ref = int((yield from _until_admitted(
                    sim, lambda: xs.read(base + "/grant-ref"))))
            except Exception as exc:
                raise GuestBootError(
                    "domain %d: back-end never published %s/%d: %s"
                    % (domain.domid, kind, index, exc)) from exc
            backend_channel = hypervisor.event_channels.channel(DOM0_ID,
                                                                port)
            if backend_channel.state == "interdomain" and \
                    backend_channel.remote_domid == domain.domid:
                # Reboot fast path: still bound from the previous life.
                yield sim.timeout(costs.frontend_init_us / 1000.0)
            else:
                hypervisor.event_channels.bind_interdomain(
                    domain.domid, DOM0_ID, port)
                yield sim.timeout(costs.evtchn_bind_us / 1000.0)
                hypervisor.grants.map_ref(domain.domid, DOM0_ID, ref)
                yield sim.timeout(costs.grant_map_us / 1000.0)
                yield sim.timeout(costs.frontend_init_us / 1000.0)
            # Announce the front-end is connected (fires back-end watches).
            front = "/local/domain/%d/device/%s/%d/state" % (
                domain.domid, kind, index)
            yield from _until_admitted(
                sim, lambda: xs.write(front, "connected"))
            connected += 1
    return connected


def boot_guest(sim: "Simulator", hypervisor: Hypervisor, domain: Domain,
               image: GuestImage,
               xenstore: typing.Optional["XenStoreDaemon"] = None,
               costs: typing.Optional[GuestCosts] = None):
    """Generator: run the guest's boot sequence; returns a BootReport.

    The control plane is chosen by the domain's configuration: a domain
    with a noxs device page boots via the device-page path; otherwise it
    needs ``xenstore``.
    """
    costs = costs or GuestCosts()
    start = sim.now
    domain.require_state(DomainState.RUNNING)

    if domain.device_page is not None:
        yield from _bring_up_noxs_devices(sim, hypervisor, domain, costs)
    elif image.device_count:
        if xenstore is None:
            raise GuestBootError(
                "domain %d has devices but neither a device page nor a "
                "XenStore" % domain.domid)
        yield from _bring_up_xenstore_devices(
            sim, hypervisor, domain, image, xenstore, costs)
    device_ms = sim.now - start

    multiplier = _contention_multiplier(hypervisor, domain, image)
    cpu_start = sim.now
    done = hypervisor.scheduler.run_on_domain(
        domain, image.boot_cpu_ms * multiplier)
    yield done
    if image.boot_fixed_ms:
        yield sim.timeout(image.boot_fixed_ms)
    cpu_ms = sim.now - cpu_start

    # The guest is now up: it exerts its idle profile and, on the XenStore
    # path, keeps a live xenbus connection (ambient daemon load).
    if image.idle_cpu_weight:
        hypervisor.scheduler.set_idle_load(domain, image.idle_cpu_weight)
    if image.device_count:
        netback_weight = NETBACK_DOM0_WEIGHT_PER_DEVICE * image.device_count
        hypervisor.scheduler.dom0_cores[0].add_background(netback_weight)
        domain.notes["netback_weight"] = netback_weight
    if domain.device_page is None and xenstore is not None:
        xenstore.register_client(image.ambient_weight)
        domain.notes["xenstore_client"] = image.ambient_weight

    return BootReport(device_ms=device_ms, cpu_ms=cpu_ms,
                      total_ms=sim.now - start)
