"""Guest images and guest-side boot behaviour.

The catalogue (:mod:`repro.guests.catalog`) carries the paper's named
images (daytime/noop/Minipython unikernels, Tinyx variants, Debian); the
boot model (:mod:`repro.guests.boot`) runs a guest's front-end device
bring-up — via the XenStore or via noxs device pages — and its kernel boot
work under CPU contention.
"""

from .boot import BootReport, GuestBootError, GuestCosts, boot_guest
from .catalog import (CATALOG, CLICKOS_FIREWALL, DAYTIME_UNIKERNEL, DEBIAN,
                      MINIPYTHON_UNIKERNEL, NOOP_UNIKERNEL, TINYX,
                      TINYX_MICROPYTHON, TINYX_TLS, TLS_UNIKERNEL, lookup)
from .images import GuestImage, GuestKind

__all__ = [
    "BootReport",
    "CATALOG",
    "CLICKOS_FIREWALL",
    "DAYTIME_UNIKERNEL",
    "DEBIAN",
    "GuestBootError",
    "GuestCosts",
    "GuestImage",
    "GuestKind",
    "MINIPYTHON_UNIKERNEL",
    "NOOP_UNIKERNEL",
    "TINYX",
    "TINYX_MICROPYTHON",
    "TINYX_TLS",
    "TLS_UNIKERNEL",
    "boot_guest",
    "lookup",
]
