"""The catalogue of guest images used throughout the paper's evaluation.

Sizes and footprints come straight from the text:

* §3.1: the daytime unikernel is 480 KB on disk and runs in 3.6 MB of RAM
  (with the toolstack patch that lifts the 4 MB minimum); the TLS and
  Minipython unikernels are ~1 MB images running in 8 MB.
* §3.2: Tinyx images are "a few tens of MBs" and "need around 30MBs of RAM
  to boot"; the Fig 4 Tinyx image is 9.5 MB.
* §4.2: the Debian jessie VM image is 1.1 GB; §6.3 gives 111 MB as the
  minimum RAM for Debian to run.
* §7.1: the ClickOS firewall image is 1.7 MB and needs 8 MB of RAM.
* §7.3: the TLS unikernel boots in 6 ms with 16 MB of RAM; the Tinyx TLS
  image uses 40 MB and boots in 190 ms.

Boot CPU work and contention parameters are calibrated against Figs 4 and
11 (see EXPERIMENTS.md).
"""

from __future__ import annotations

from .images import GuestImage, GuestKind

#: Minimal MiniOS unikernel with no devices: the 2.3 ms boot floor of §6.1.
NOOP_UNIKERNEL = GuestImage(
    name="noop",
    kind=GuestKind.UNIKERNEL,
    kernel_size_kb=300,
    rootfs_size_kb=0,
    memory_kb=3584,
    boot_cpu_ms=0.8,
    boot_fixed_ms=0.1,
    vifs=0,
)

#: §3.1's daytime unikernel: MiniOS + lwip TCP server, 480 KB / 3.6 MB.
DAYTIME_UNIKERNEL = GuestImage(
    name="daytime",
    kind=GuestKind.UNIKERNEL,
    kernel_size_kb=480,
    rootfs_size_kb=0,
    memory_kb=3686,
    boot_cpu_ms=2.4,
    boot_fixed_ms=0.2,
    vifs=1,
    xenbus_watches=3,
)

#: Micropython-based unikernel for the lightweight compute service (§7.4).
MINIPYTHON_UNIKERNEL = GuestImage(
    name="minipython",
    kind=GuestKind.UNIKERNEL,
    kernel_size_kb=1024,
    rootfs_size_kb=0,
    memory_kb=8192,
    boot_cpu_ms=2.2,
    boot_fixed_ms=0.2,
    vifs=1,
    xenbus_watches=3,
)

#: ClickOS running the personal-firewall configuration (§7.1).
CLICKOS_FIREWALL = GuestImage(
    name="clickos-firewall",
    kind=GuestKind.UNIKERNEL,
    kernel_size_kb=1740,
    rootfs_size_kb=0,
    memory_kb=8192,
    boot_cpu_ms=4.5,
    boot_fixed_ms=0.3,
    vifs=1,
    xenbus_watches=3,
)

#: axtls-based TLS termination unikernel (§7.3): boots in 6 ms, 16 MB RAM.
TLS_UNIKERNEL = GuestImage(
    name="tls-unikernel",
    kind=GuestKind.UNIKERNEL,
    kernel_size_kb=1100,
    rootfs_size_kb=0,
    memory_kb=16384,
    boot_cpu_ms=3.2,
    boot_fixed_ms=0.3,
    vifs=1,
    xenbus_watches=3,
)

#: Tinyx with no applications installed (Fig 4's Tinyx): 9.5 MB image,
#: distribution bundled into the kernel as an initramfs.
TINYX = GuestImage(
    name="tinyx",
    kind=GuestKind.TINYX,
    kernel_size_kb=9728,
    rootfs_size_kb=0,
    memory_kb=30720,
    boot_cpu_ms=165.0,
    boot_fixed_ms=8.0,
    vifs=1,
    idle_cpu_weight=4e-5,
    sched_contention=0.018,
    sched_contention_threshold=230,
    extra_xenstore_entries=6,
    xenbus_watches=8,
    ambient_weight=2.0,
    toolstack_build_ms=185.0,
)

#: Tinyx with Micropython installed (§6.3 memory-footprint experiment).
TINYX_MICROPYTHON = GuestImage(
    name="tinyx-micropython",
    kind=GuestKind.TINYX,
    kernel_size_kb=12288,
    rootfs_size_kb=0,
    memory_kb=35840,
    boot_cpu_ms=172.0,
    boot_fixed_ms=8.0,
    vifs=1,
    idle_cpu_weight=4e-5,
    sched_contention=0.018,
    sched_contention_threshold=230,
    extra_xenstore_entries=6,
    xenbus_watches=8,
    ambient_weight=2.0,
    toolstack_build_ms=185.0,
)

#: Tinyx with the axtls TLS proxy (§7.3): 40 MB RAM, boots in ~190 ms.
TINYX_TLS = GuestImage(
    name="tinyx-tls",
    kind=GuestKind.TINYX,
    kernel_size_kb=11264,
    rootfs_size_kb=0,
    memory_kb=40960,
    boot_cpu_ms=175.0,
    boot_fixed_ms=8.0,
    vifs=1,
    idle_cpu_weight=4e-5,
    sched_contention=0.018,
    sched_contention_threshold=230,
    extra_xenstore_entries=6,
    xenbus_watches=8,
    ambient_weight=2.0,
    toolstack_build_ms=185.0,
)

#: Minimal install of Debian jessie: the "typical VM used in practice".
DEBIAN = GuestImage(
    name="debian",
    kind=GuestKind.DISTRO,
    kernel_size_kb=35840,          # kernel + initrd actually loaded
    rootfs_size_kb=1126400 - 35840,  # 1.1 GB total on disk
    memory_kb=113664,              # 111 MB minimum to run (§6.3)
    boot_cpu_ms=1350.0,
    boot_fixed_ms=60.0,
    vifs=1,
    vbds=1,
    idle_cpu_weight=1e-3,
    sched_contention=0.012,
    extra_xenstore_entries=40,
    xenbus_watches=25,
    ambient_weight=6.0,
    toolstack_build_ms=120.0,
)

#: Everything above, by name.
CATALOG = {
    image.name: image
    for image in (
        NOOP_UNIKERNEL,
        DAYTIME_UNIKERNEL,
        MINIPYTHON_UNIKERNEL,
        CLICKOS_FIREWALL,
        TLS_UNIKERNEL,
        TINYX,
        TINYX_MICROPYTHON,
        TINYX_TLS,
        DEBIAN,
    )
}


def lookup(name: str) -> GuestImage:
    """Find a catalogue image by name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError("unknown guest image %r; known: %s"
                       % (name, ", ".join(sorted(CATALOG)))) from None
