"""AST-based determinism linter for the simulation codebase.

Discrete-event frameworks die by a thousand tiny nondeterminisms: one
stray ``random.random()`` instead of a named
:class:`~repro.sim.rng.RngStream`, one wall-clock read, one iteration
over a ``set`` whose hash order (salted per process by
``PYTHONHASHSEED``) decides which event reaches the heap first.  Each
hazard silently breaks the bit-replay contract that the fault injector
and every figure benchmark rely on.

This module walks Python sources with :mod:`ast` and flags those
hazards.  Rules are pluggable (subclass :class:`LintRule`, decorate with
:func:`register`) and each carries a stable ID:

==========  =========  ====================================================
ID          severity   hazard
==========  =========  ====================================================
``RPR001``  error      ambient randomness: ``random``/``secrets``/``uuid``
                       imports or ``os.urandom`` outside ``repro.sim.rng``
``RPR002``  error      wall-clock reads: ``time``/``datetime`` imports or
                       ``time.time()``-style calls in simulation code
``RPR003``  error      iteration over a ``set``/``frozenset`` value whose
                       order is not fixed by ``sorted()``
``RPR004``  warning    dict-view iteration (``.keys()``/``.values()``/
                       ``.items()``) whose loop body reaches a sim-visible
                       sink (event scheduling, RNG draws, fault points)
``RPR005``  error      ``id()``-based ordering or comparison (CPython
                       addresses differ between runs)
``RPR006``  error      float drift: ``+=``/``-=`` accumulation on a
                       simulation-clock attribute instead of assigning
                       absolute event times
``RPR007``  error      mutable default argument (shared across calls, so
                       call order leaks into behaviour)
``RPR008``  warning    per-event closure allocation in kernel modules
                       (``repro/sim``): a ``lambda`` handed to
                       ``add_callback``/``schedule``/``call_later`` or
                       appended to ``callbacks`` allocates one closure
                       cell per event — pass ``(callback, args)`` instead
``RPR009``  error      deprecated XenStore surface: a ``.op_*`` /
                       ``.tx_*`` daemon call outside ``repro/xenstore``
                       — go through ``repro.xenstore.client.XsClient``
``RPR010``  error      real concurrency: ``threading`` /
                       ``multiprocessing`` / ``asyncio`` /
                       ``concurrent.futures`` imports in simulation code
                       (preemption breaks replay determinism; parallelism
                       belongs in an allowlisted process runner)
``RPR000``  error      a ``# noqa: RPRxxx`` suppression without a
                       justification
==========  =========  ====================================================

Suppression: append ``# noqa: RPRxxx -- <justification>`` to the flagged
line.  A justification is **mandatory** — a bare ``# noqa`` or
``# noqa: RPR003`` still suppresses the original finding but is itself
reported as ``RPR000``, so every silenced hazard documents why the order
(or randomness) provably cannot leak into the event timeline.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
import typing


@dataclasses.dataclass(frozen=True)
class Finding:
    """One linter hit, pointing at a source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return "%s:%d:%d: %s [%s] %s" % (self.path, self.line,
                                         self.col + 1, self.rule_id,
                                         self.severity, self.message)


class ModuleContext:
    """A parsed module handed to every rule: source, tree, parent links."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._parents: typing.Optional[dict] = None

    @property
    def parents(self) -> typing.Dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built lazily)."""
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        return self._parents

    def ancestors(self, node: ast.AST) -> typing.Iterator[ast.AST]:
        parents = self.parents
        while node in parents:
            node = parents[node]
            yield node


class LintRule:
    """Base class for pluggable rules.  Subclasses set the class
    attributes and implement :meth:`check`."""

    id: str = "RPR999"
    severity: str = "error"
    synopsis: str = ""

    def check(self, module: ModuleContext
              ) -> typing.Iterator[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(rule_id=self.id, severity=self.severity,
                       path=module.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message)


#: The active rule set, in reporting order.  Extend with :func:`register`.
RULES: typing.List[LintRule] = []


class DuplicateRuleError(ValueError):
    """Two rules claimed the same RPR id; the second would silently
    shadow the first in reports and noqa matching."""


def register(cls: typing.Type[LintRule]) -> typing.Type[LintRule]:
    """Class decorator adding a rule instance to :data:`RULES`.

    Rejects duplicate rule ids loudly: suppression comments and CI
    baselines key on the id, so a plugin re-using one would silently
    change what an existing ``# noqa`` means.
    """
    rule = cls()
    for existing in RULES:
        if existing.id == rule.id:
            raise DuplicateRuleError(
                "rule id %s already registered by %s; pick a fresh id"
                % (rule.id, type(existing).__name__))
    RULES.append(rule)
    return cls


def find_rule(rule_id: str) -> LintRule:
    """Look up a registered rule by its RPR id; raises ``KeyError``."""
    for rule in RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError("no registered rule with id %r" % rule_id)


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

#: Builtins whose result does not depend on argument iteration order.
_ORDER_INSENSITIVE_CALLS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
})

#: Method/function names through which iteration order becomes visible to
#: the simulation: event scheduling, RNG draws, fault-point evaluation,
#: and resource/store traffic.
_SIM_SINKS = frozenset({
    "timeout", "schedule", "process", "succeed", "fail", "interrupt",
    "random", "uniform", "randint", "choice", "shuffle", "sample",
    "stream", "heappush", "_push", "put", "request", "fires", "backoff_ms",
})

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = frozenset({"union", "intersection", "difference",
                          "symmetric_difference", "copy"})


def _call_name(node: ast.AST) -> typing.Optional[str]:
    """Name of a called function: ``foo(...)`` -> "foo",
    ``x.foo(...)`` -> "foo"."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _setish_names(scope: ast.AST) -> typing.Set[str]:
    """Names bound to set-valued expressions anywhere in ``scope``.

    Deliberately flow-insensitive: a name that is *ever* a set in the
    function is treated as a set at every use — cheap, and safe in the
    false-positive direction (a ``# noqa`` with justification handles
    the rare misfire).
    """
    names: typing.Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(node, "value", None)
            if value is None or not _is_setish(value, names):
                # Annotation-driven: x: typing.Set[...] = ...
                annotation = getattr(node, "annotation", None)
                if annotation is None or "Set" not in ast.dump(annotation):
                    continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.Call):
            # x.add(...) / x.discard(...) are set-only verbs.
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in ("add", "discard") and \
                    isinstance(func.value, ast.Name):
                names.add(func.value.id)
    return names


def _is_setish(node: ast.AST, names: typing.Set[str]) -> bool:
    """Is ``node`` syntactically a set-valued expression?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in names
    if isinstance(node, ast.Call):
        called = _call_name(node)
        if isinstance(node.func, ast.Name) and \
                called in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and \
                called in _SET_METHODS:
            return _is_setish(node.func.value, names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return (_is_setish(node.left, names)
                or _is_setish(node.right, names))
    return False


def _is_dict_view(node: ast.AST) -> typing.Optional[str]:
    """Return "keys"/"values"/"items" for an explicit dict-view call."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in ("keys", "values", "items") \
            and not node.args and not node.keywords:
        return node.func.attr
    return None


def _reaches_sim_sink(scope_nodes: typing.Iterable[ast.AST]) -> bool:
    """Does any node in ``scope_nodes`` (loop body / comprehension) call a
    sim-visible sink or yield control back to the simulator?"""
    for root in scope_nodes:
        for node in ast.walk(root):
            if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
                return True
            if isinstance(node, ast.Call) and \
                    _call_name(node) in _SIM_SINKS:
                return True
    return False


def _iteration_sites(module: ModuleContext
                     ) -> typing.Iterator[typing.Tuple[ast.AST, ast.AST,
                                                       typing.List[ast.AST]]]:
    """Yield ``(site, iterable, body_nodes)`` for every for-loop and
    comprehension in the module."""
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter, list(node.body)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for comp in node.generators:
                yield node, comp.iter, [node.elt]
        elif isinstance(node, ast.DictComp):
            for comp in node.generators:
                yield node, comp.iter, [node.key, node.value]


def _enclosing_scope(module: ModuleContext, node: ast.AST) -> ast.AST:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return module.tree


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

@register
class AmbientRandomnessRule(LintRule):
    """RPR001: randomness must flow through ``repro.sim.rng`` streams."""

    id = "RPR001"
    severity = "error"
    synopsis = ("ambient randomness (random/secrets/uuid/os.urandom) "
                "outside repro.sim.rng")

    _MODULES = ("random", "secrets", "uuid")

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._MODULES:
                        yield self.finding(
                            module, node,
                            "import of %r: draw from a named RngStream "
                            "(repro.sim.rng) instead" % alias.name)
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self._MODULES and node.level == 0:
                    yield self.finding(
                        module, node,
                        "import from %r: draw from a named RngStream "
                        "(repro.sim.rng) instead" % node.module)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and \
                        func.attr == "urandom" and \
                        isinstance(func.value, ast.Name) and \
                        func.value.id == "os":
                    yield self.finding(
                        module, node,
                        "os.urandom() is nondeterministic; derive bytes "
                        "from a seeded RngStream")


@register
class WallClockRule(LintRule):
    """RPR002: simulated time is ``sim.now``; the host clock never is."""

    id = "RPR002"
    severity = "error"
    synopsis = "wall-clock reads (time/datetime) in simulation code"

    _CLOCK_CALLS = frozenset({"time", "monotonic", "perf_counter",
                              "process_time", "now", "utcnow", "today"})

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in ("time", "datetime"):
                        yield self.finding(
                            module, node,
                            "import of %r: simulated time is sim.now, "
                            "never the host clock" % alias.name)
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] in ("time",
                                                         "datetime") \
                        and node.level == 0:
                    yield self.finding(
                        module, node,
                        "import from %r: simulated time is sim.now, "
                        "never the host clock" % node.module)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and \
                        func.attr in self._CLOCK_CALLS and \
                        isinstance(func.value, ast.Name) and \
                        func.value.id in ("time", "datetime"):
                    yield self.finding(
                        module, node,
                        "%s.%s() reads the host clock; use sim.now"
                        % (func.value.id, func.attr))


@register
class SetIterationRule(LintRule):
    """RPR003: set iteration order is salted per process — sort it."""

    id = "RPR003"
    severity = "error"
    synopsis = "iteration over a set/frozenset without sorted()"

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        setish_cache: typing.Dict[ast.AST, typing.Set[str]] = {}
        for site, iterable, _body in _iteration_sites(module):
            scope = _enclosing_scope(module, site)
            if scope not in setish_cache:
                setish_cache[scope] = _setish_names(scope)
            if _is_setish(iterable, setish_cache[scope]):
                yield self.finding(
                    module, iterable,
                    "iteration over a set: order follows the per-process "
                    "hash seed; wrap in sorted() or keep a list")
        # list()/tuple()/"".join() materialise the same hidden order.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ("list", "tuple") and \
                    len(node.args) == 1:
                scope = _enclosing_scope(module, node)
                if scope not in setish_cache:
                    setish_cache[scope] = _setish_names(scope)
                if _is_setish(node.args[0], setish_cache[scope]):
                    yield self.finding(
                        module, node,
                        "%s() over a set materialises hash order; use "
                        "sorted()" % node.func.id)


@register
class DictViewIterationRule(LintRule):
    """RPR004: dict views are insertion-ordered (deterministic given
    deterministic inserts), but when the loop body schedules events or
    draws randomness the insertion history becomes part of the
    determinism contract — flag it so the author states the order is
    intentional (sort, or suppress with the reason)."""

    id = "RPR004"
    severity = "warning"
    synopsis = "dict-view iteration feeding a sim-visible sink"

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for _site, iterable, body in _iteration_sites(module):
            view = _is_dict_view(iterable)
            if view is None:
                continue
            if _reaches_sim_sink(body):
                yield self.finding(
                    module, iterable,
                    ".%s() iteration reaches the event heap/RNG from its "
                    "loop body; sort the keys or justify the insertion "
                    "order" % view)


@register
class IdOrderingRule(LintRule):
    """RPR005: CPython object addresses differ between runs."""

    id = "RPR005"
    severity = "error"
    synopsis = "id()-based ordering or comparison"

    _ORDERING_CALLS = frozenset({"sorted", "min", "max", "sort"})
    _MESSAGE = ("id() varies between runs; order by a stable key "
                "(name, insertion counter) instead")

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        flagged_lines: typing.Set[int] = set()

        def emit(node: ast.AST) -> typing.Iterator[Finding]:
            line = getattr(node, "lineno", 1)
            if line not in flagged_lines:
                flagged_lines.add(line)
                yield self.finding(module, node, self._MESSAGE)

        for node in ast.walk(module.tree):
            # The bare builtin passed as a sort key: sorted(xs, key=id).
            if isinstance(node, ast.Call) and \
                    _call_name(node) in self._ORDERING_CALLS:
                for keyword in node.keywords:
                    if isinstance(keyword.value, ast.Name) and \
                            keyword.value.id == "id":
                        yield from emit(keyword.value)
            # id(...) calls feeding an ordering/comparison context.
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "id"):
                continue
            for ancestor in module.ancestors(node):
                if isinstance(ancestor, ast.stmt):
                    break
                ordered = (
                    isinstance(ancestor, (ast.Compare, ast.BinOp,
                                          ast.Lambda))
                    or (isinstance(ancestor, ast.Call)
                        and _call_name(ancestor) in self._ORDERING_CALLS))
                if ordered:
                    yield from emit(node)
                    break


@register
class ClockDriftRule(LintRule):
    """RPR006: accumulate clock values by assignment from event times,
    not by repeated float addition (drift breaks cross-platform
    replay)."""

    id = "RPR006"
    severity = "error"
    synopsis = "float += accumulation on a simulation clock"

    _CLOCK_NAMES = re.compile(
        r"^_?(now|clock|sim_time|current_time|virtual_time)$")

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            target = node.target
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is not None and self._CLOCK_NAMES.match(name):
                yield self.finding(
                    module, node,
                    "augmented assignment on clock %r accumulates float "
                    "error; assign the absolute event time instead" % name)


@register
class MutableDefaultRule(LintRule):
    """RPR007: mutable defaults are shared across calls, so call order
    leaks into behaviour — a replay hazard on any sim-visible path."""

    id = "RPR007"
    severity = "error"
    synopsis = "mutable default argument"

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                               ast.ListComp, ast.DictComp,
                                               ast.SetComp)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set",
                                            "bytearray"))
                if mutable:
                    yield self.finding(
                        module, default,
                        "mutable default argument is shared across "
                        "calls; default to None and allocate inside")


@register
class KernelClosureRule(LintRule):
    """RPR008: the DES kernel's hot path must not allocate a closure per
    event.  A ``lambda`` passed to ``add_callback``/``schedule``/
    ``call_later`` — or appended to an event's ``callbacks`` list —
    costs one code object call plus one closure cell *per scheduled
    event*; the kernel's tuple protocol (``(callback, args)`` entries)
    carries the same binding with a plain tuple.  Only kernel modules
    (paths under ``repro/sim``) are in scope: user code may trade the
    allocation for readability."""

    id = "RPR008"
    severity = "warning"
    synopsis = "per-event closure allocation in a kernel module"

    _KERNEL_PATH = re.compile(r"repro[\\/]sim[\\/]")
    _CALLBACK_CALLS = frozenset({"add_callback", "schedule", "call_later"})

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        if not self._KERNEL_PATH.search(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            is_callbacks_append = (
                name == "append"
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr == "callbacks")
            if name not in self._CALLBACK_CALLS \
                    and not is_callbacks_append:
                continue
            arguments = list(node.args) + [kw.value
                                           for kw in node.keywords]
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    yield self.finding(
                        module, argument,
                        "lambda allocates a closure per event on the "
                        "kernel hot path; pass a (callback, args) tuple "
                        "entry instead")


@register
class LegacyXenStoreSurfaceRule(LintRule):
    """RPR009: the pre-redesign daemon surface is shimmed, not current.

    ``daemon.op_read``/``op_write``/... and ``tx_read``/``tx_write``/...
    are deprecation shims kept for old callers; new code goes through
    :class:`repro.xenstore.client.XsClient` (which binds the domid once
    and unlocks batching).  Only the ``repro/xenstore`` package itself —
    the shims, the client, and their tests' frozen reference — may spell
    the legacy names.
    """

    id = "RPR009"
    severity = "error"
    synopsis = "deprecated XenStore op_*/tx_* call outside repro/xenstore"

    _EXEMPT_PATH = re.compile(r"repro[\\/]xenstore[\\/]")
    #: The exact legacy method names (not a prefix match: ``op_base_ms``
    #: and friends are legitimate cost-model calls).
    _LEGACY_CALLS = frozenset({
        "op_read", "op_write", "op_get_perms", "op_set_perms",
        "op_mkdir", "op_rm", "op_directory", "op_watch", "op_unwatch",
        "op_check_unique_name",
        "tx_read", "tx_exists", "tx_write", "tx_rm",
    })

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        if self._EXEMPT_PATH.search(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in self._LEGACY_CALLS:
                yield self.finding(
                    module, node,
                    "deprecated XenStore surface .%s(); use an XsClient "
                    "handle (repro.xenstore.client) instead" % func.attr)


#: Paths where RPR010 does not apply.  Exactly two modules are
#: sanctioned, both *runners* that fan whole, independent DES timelines
#: out over OS processes and exchange nothing mid-timeline:
#: ``repro/cluster/procs.py`` (per-host engines under deterministic
#: epoch-barrier message exchange) and ``repro/stdlib/sweep.py`` (whole
#: (spec, seed) scenario runs, one digest each, merged seed-ordered).
#: Scenario and coordination code — ``repro/cluster/`` node/controller/
#: placement, the stdlib spec/runner modules — runs *inside* the DES
#: timeline and stays banned like any other sim code; widening this list
#: beyond the runners would let a second scheduler leak into code the
#: replay digest is supposed to pin.
RPR010_ALLOWED_PATHS: typing.List["re.Pattern"] = [
    re.compile(r"repro[\\/]cluster[\\/]procs\.py$"),
    re.compile(r"repro[\\/]stdlib[\\/]sweep\.py$"),
]


@register
class RealConcurrencyRule(LintRule):
    """RPR010: real concurrency primitives are banned in sim code.

    The whole determinism story rests on one scheduler: the DES event
    heap, with its ``(time, insertion order)`` tie-break.  A thread, an
    OS process pool, or an asyncio loop introduces a *second* scheduler
    whose interleavings the replay digest cannot pin — the race tooling
    in :mod:`repro.analysis.races` reasons about ``sim.Resource`` locks
    precisely because they are the only legal synchronisation.  Paths in
    :data:`RPR010_ALLOWED_PATHS` (the future cluster process runner) are
    exempt; anywhere else, a justified noqa must argue the import never
    touches the timeline (e.g. tooling that only post-processes
    artifacts).
    """

    id = "RPR010"
    severity = "error"
    synopsis = ("threading/multiprocessing/asyncio/concurrent.futures "
                "import in simulation code")

    _BANNED_ROOTS = frozenset({
        "threading", "multiprocessing", "asyncio", "concurrent",
        "_thread",
    })

    def check(self, module: ModuleContext) -> typing.Iterator[Finding]:
        for pattern in RPR010_ALLOWED_PATHS:
            if pattern.search(module.path):
                return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module or ""]
            else:
                continue
            for name in names:
                if name.split(".")[0] in self._BANNED_ROOTS:
                    yield self.finding(
                        module, node,
                        "import of %r brings a second scheduler into the "
                        "simulation; all concurrency must go through the "
                        "DES kernel (sim.process / sim.Resource)" % name)


# ----------------------------------------------------------------------
# Suppression (# noqa: RPRxxx -- justification)
# ----------------------------------------------------------------------

_NOQA = re.compile(
    r"#\s*noqa(?P<codes>:\s*[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)?"
    r"(?P<why>\s*(?:--|—)\s*\S.*)?\s*$")


def _suppression_for(line_text: str
                     ) -> typing.Optional[typing.Tuple[typing.Set[str],
                                                       bool]]:
    """Parse a trailing noqa comment: returns ``(codes, justified)`` or
    None.  An empty ``codes`` set means "suppress everything"."""
    match = _NOQA.search(line_text)
    if match is None:
        return None
    codes: typing.Set[str] = set()
    if match.group("codes"):
        codes = {code.strip()
                 for code in match.group("codes").lstrip(": ").split(",")}
    return codes, bool(match.group("why"))


def apply_suppressions(module: ModuleContext,
                       findings: typing.Iterable[Finding]
                       ) -> typing.List[Finding]:
    """Drop findings silenced by justified noqa comments; turn
    unjustified suppressions into RPR000 findings."""
    kept: typing.List[Finding] = []
    unjustified: typing.Dict[typing.Tuple[int, str], Finding] = {}
    for finding in findings:
        index = finding.line - 1
        line_text = (module.lines[index]
                     if 0 <= index < len(module.lines) else "")
        parsed = _suppression_for(line_text)
        if parsed is None:
            kept.append(finding)
            continue
        codes, justified = parsed
        if codes and finding.rule_id not in codes:
            kept.append(finding)
            continue
        if not justified:
            key = (finding.line, finding.rule_id)
            if key not in unjustified:
                unjustified[key] = Finding(
                    rule_id="RPR000", severity="error",
                    path=finding.path, line=finding.line, col=finding.col,
                    message="suppression of %s lacks a justification "
                            "('# noqa: %s -- why the hazard cannot "
                            "leak')" % (finding.rule_id, finding.rule_id))
        # Justified (or pending-RPR000) — the original finding is silenced.
    kept.extend(unjustified.values())
    return kept


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>",
                rules: typing.Optional[typing.Sequence[LintRule]] = None
                ) -> typing.List[Finding]:
    """Lint one module's source text; returns surviving findings."""
    try:
        module = ModuleContext(path, source)
    except SyntaxError as exc:
        return [Finding(rule_id="RPR999", severity="error", path=path,
                        line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                        message="syntax error: %s" % exc.msg)]
    raw: typing.List[Finding] = []
    for rule in (rules if rules is not None else RULES):
        raw.extend(rule.check(module))
    survivors = apply_suppressions(module, raw)
    survivors.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return survivors


def lint_paths(paths: typing.Iterable[typing.Union[str, pathlib.Path]],
               rules: typing.Optional[typing.Sequence[LintRule]] = None
               ) -> typing.List[Finding]:
    """Lint files and/or directories (recursing into ``*.py``)."""
    files: typing.List[pathlib.Path] = []
    for path in paths:
        path = pathlib.Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: typing.List[Finding] = []
    for file_path in files:
        findings.extend(lint_source(file_path.read_text(encoding="utf-8"),
                                    str(file_path), rules=rules))
    return findings


def render_findings(findings: typing.Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_rule: typing.Dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        summary = ", ".join("%s x%d" % (rule_id, count)
                            for rule_id, count in sorted(by_rule.items()))
        lines.append("%d finding(s): %s" % (len(findings), summary))
    else:
        lines.append("0 findings")
    return "\n".join(lines)


#: Formats accepted by ``repro lint --format`` / ``repro races --format``.
FORMATS = ("text", "json", "github")


def findings_to_json(findings: typing.Sequence[Finding]) -> str:
    """Findings as a JSON array (stable key order, trailing newline)."""
    import json

    payload = [dataclasses.asdict(finding) for finding in findings]
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _github_escape(text: str) -> str:
    """Escape a workflow-command message per the Actions spec."""
    return (text.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def findings_to_github(findings: typing.Sequence[Finding]) -> str:
    """Findings as GitHub workflow-annotation lines.

    ``::error file=...,line=...,col=...,title=RPRxxx::message`` renders
    inline on the PR diff; warnings map to ``::warning``.
    """
    lines = []
    for finding in findings:
        level = "warning" if finding.severity == "warning" else "error"
        lines.append(
            "::%s file=%s,line=%d,col=%d,title=%s::%s"
            % (level, finding.path, finding.line, finding.col + 1,
               finding.rule_id, _github_escape(finding.message)))
    lines.append("%d finding(s)" % len(findings))
    return "\n".join(lines)


def format_findings(findings: typing.Sequence[Finding],
                    fmt: str = "text") -> str:
    """Render findings in one of :data:`FORMATS`."""
    if fmt == "json":
        return findings_to_json(findings)
    if fmt == "github":
        return findings_to_github(findings)
    if fmt == "text":
        return render_findings(findings)
    raise ValueError("unknown format %r; expected one of %s"
                     % (fmt, ", ".join(FORMATS)))
