"""Static and runtime determinism analysis for the reproduction.

The whole repository stands on bit-identical determinism: a ``(seed,
config)`` pair must replay the exact same simulated timeline, or the
paper's curves (and the fault injector's "replays bit-identically"
promise) are not credible.  This package makes that promise
machine-checked instead of by-convention:

* :mod:`repro.analysis.lint` — an AST-based linter (``repro lint``) with
  pluggable rules ``RPR001``… that flag determinism hazards at the
  source level: ambient randomness, wall-clock reads, unordered
  ``set``/dict-view iteration on sim-visible paths, ``id()``-based
  ordering, float clock drift, and mutable default arguments.
* :mod:`repro.analysis.sanitize` — opt-in runtime sanitizers
  (``repro sanitize``) hooked into the simulation kernel: double-trigger
  detection, stalled-process (deadlock/leak) detection, end-of-run
  resource/store waiter audits, RNG stream-collision detection, and the
  dual-run digest checker that proves replay-identity by running a
  scenario twice and diffing a streaming SHA-256 of its event timeline.
"""

from .bench import (BenchResultError, bench_gate, bench_trend,
                    figure_gate, load_results)
from .lint import (Finding, LintRule, RULES, lint_paths, lint_source,
                   render_findings)
from .sanitize import (EventTrace, ReplayDivergence, ReplayReport, Sanitizer,
                       SanitizerViolation, assert_replay_identical,
                       canonical, verify_replay)

__all__ = [
    "BenchResultError",
    "bench_gate",
    "bench_trend",
    "figure_gate",
    "load_results",
    "EventTrace",
    "Finding",
    "LintRule",
    "RULES",
    "ReplayDivergence",
    "ReplayReport",
    "Sanitizer",
    "SanitizerViolation",
    "assert_replay_identical",
    "canonical",
    "lint_paths",
    "lint_source",
    "render_findings",
    "verify_replay",
]
