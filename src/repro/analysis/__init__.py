"""Static and runtime determinism analysis for the reproduction.

The whole repository stands on bit-identical determinism: a ``(seed,
config)`` pair must replay the exact same simulated timeline, or the
paper's curves (and the fault injector's "replays bit-identically"
promise) are not credible.  This package makes that promise
machine-checked instead of by-convention:

* :mod:`repro.analysis.lint` — an AST-based linter (``repro lint``) with
  pluggable rules ``RPR001``… that flag determinism hazards at the
  source level: ambient randomness, wall-clock reads, unordered
  ``set``/dict-view iteration on sim-visible paths, ``id()``-based
  ordering, float clock drift, and mutable default arguments.
* :mod:`repro.analysis.sanitize` — opt-in runtime sanitizers
  (``repro sanitize``) hooked into the simulation kernel: double-trigger
  detection, stalled-process (deadlock/leak) detection, end-of-run
  resource/store waiter audits, RNG stream-collision detection, and the
  dual-run digest checker that proves replay-identity by running a
  scenario twice and diffing a streaming SHA-256 of its event timeline.
* :mod:`repro.analysis.races` — the lock-order/race analysis
  (``repro races``): an interprocedural AST pass over every
  ``sim.Resource`` acquire/release site that builds the global
  lock-order graph, reports deadlock cycles (``RPR101``), exception-path
  lock leaks (``RPR102``) and yield-spanning stale read-modify-writes
  (``RPR103``), and diffs the graph against a committed baseline.
* :mod:`repro.analysis.witness` — the runtime side of ``races``: an
  opt-in vector-clock :class:`RaceWitness` threading happens-before
  through spawn/wake/lock hand-off, which cross-validates the static
  lock-order graph against orders actually observed in the figure
  workloads.
"""

from .bench import (BenchResultError, bench_gate, bench_trend,
                    figure_gate, load_results)
from .lint import (DuplicateRuleError, Finding, LintRule, RULES, find_rule,
                   format_findings, lint_paths, lint_source,
                   render_findings)
from .races import (LockOrderGraph, RaceReport, analyze_paths,
                    analyze_source, load_baseline, normalize_lock_name,
                    save_baseline)
from .sanitize import (EventTrace, ReplayDivergence, ReplayReport, Sanitizer,
                       SanitizerViolation, assert_replay_identical,
                       canonical, combine_digests, verify_replay)
from .witness import RaceWitness, WitnessViolation, run_shard_witness

__all__ = [
    "BenchResultError",
    "bench_gate",
    "bench_trend",
    "figure_gate",
    "load_results",
    "DuplicateRuleError",
    "EventTrace",
    "Finding",
    "LintRule",
    "LockOrderGraph",
    "RULES",
    "RaceReport",
    "RaceWitness",
    "ReplayDivergence",
    "ReplayReport",
    "Sanitizer",
    "SanitizerViolation",
    "WitnessViolation",
    "analyze_paths",
    "analyze_source",
    "assert_replay_identical",
    "canonical",
    "combine_digests",
    "find_rule",
    "format_findings",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "normalize_lock_name",
    "render_findings",
    "run_shard_witness",
    "save_baseline",
    "verify_replay",
]
