"""Benchmark result trajectory tools: ``repro bench-trend`` / ``bench-gate``.

The figure benchmarks write machine-readable ``BENCH_<fig>.json`` files
when run with ``--json`` (see ``benchmarks/_support.py``): figure id,
title, scale, the measured data series, and ``wall_clock_s`` — the DES
engine's self-timed wall-clock cost of regenerating that figure.  Two
consumers live here:

* :func:`bench_trend` compares two result sets (directories of
  ``BENCH_*.json``) and prints the wall-clock delta per figure — the
  before/after view for any performance work on the simulator.
* :func:`bench_gate` checks the engine microbench
  (``BENCH_engine.json``) against the committed
  ``benchmarks/baseline_engine.json``: the machine-independent
  optimized-vs-naive speedup must meet ``required_speedup``, and the
  absolute events/sec must sit inside the baseline's ``tolerance`` band.
  Failures name the regression percentage instead of a bare assert.
"""

from __future__ import annotations

import json
import pathlib
import typing


class BenchResultError(ValueError):
    """A result or baseline file is missing or malformed."""


def load_results(location: typing.Union[str, pathlib.Path]) \
        -> typing.Dict[str, dict]:
    """Load ``BENCH_*.json`` payloads from a directory (or a single
    file); returns ``{figure_id: payload}``."""
    path = pathlib.Path(location)
    if path.is_file():
        files = [path]
    elif path.is_dir():
        files = sorted(path.glob("BENCH_*.json"))
    else:
        raise BenchResultError("no such file or directory: %s" % path)
    if not files:
        raise BenchResultError("no BENCH_*.json files under %s" % path)
    results = {}
    for file in files:
        try:
            payload = json.loads(file.read_text())
        except ValueError as exc:
            raise BenchResultError("unparsable %s: %s" % (file, exc))
        figure = payload.get("figure")
        if not figure:
            raise BenchResultError("%s has no 'figure' field" % file)
        results[figure] = payload
    return results


def _fmt_seconds(value: typing.Optional[float]) -> str:
    return "%.2fs" % value if isinstance(value, (int, float)) else "-"


def bench_trend(old: typing.Dict[str, dict],
                new: typing.Dict[str, dict]) -> str:
    """Render the per-figure wall-clock deltas between two result sets."""
    lines = ["%-12s %10s %10s %10s   %s"
             % ("figure", "old", "new", "delta", "scale")]
    for figure in sorted(set(old) | set(new)):
        before = old.get(figure, {})
        after = new.get(figure, {})
        old_s = before.get("wall_clock_s")
        new_s = after.get("wall_clock_s")
        if isinstance(old_s, (int, float)) and \
                isinstance(new_s, (int, float)) and old_s > 0:
            delta = "%+.1f%%" % ((new_s - old_s) / old_s * 100.0)
        elif figure not in old:
            delta = "new"
        elif figure not in new:
            delta = "gone"
        else:
            delta = "-"
        scales = "/".join(sorted({str(payload.get("scale"))
                                  for payload in (before, after)
                                  if payload}))
        lines.append("%-12s %10s %10s %10s   %s"
                     % (figure, _fmt_seconds(old_s), _fmt_seconds(new_s),
                        delta, scales))
    return "\n".join(lines)


def bench_gate(result: dict, baseline: dict) -> typing.Tuple[bool, str]:
    """Check an engine-bench result against the committed baseline.

    Returns ``(passed, report)``.  Two checks:

    1. **Speedup** (machine-independent): the optimized/naive ratio on
       the baseline's primary metric must be >= ``required_speedup``.
    2. **Absolute band**: optimized events/sec must be >=
       ``events_per_sec * (1 - tolerance)``.  The band is wide because
       CI hardware differs from the machine that committed the baseline;
       the ratio check is the sharp one.
    """
    metric = baseline.get("metric")
    required = baseline.get("required_speedup")
    committed = baseline.get("events_per_sec")
    tolerance = baseline.get("tolerance", 0.5)
    data = result.get("data", {})
    entry = data.get(metric)
    if not isinstance(entry, dict):
        return False, ("bench-gate: result has no data for primary metric "
                       "%r (figures present: %s)"
                       % (metric, ", ".join(sorted(data)) or "none"))
    opt = entry.get("opt_events_per_sec")
    ref = entry.get("ref_events_per_sec")
    speedup = entry.get("speedup")
    lines = ["bench-gate: metric %s" % metric,
             "  optimized: %d events/sec" % opt,
             "  naive ref: %d events/sec" % ref,
             "  speedup:   %.2fx (required >= %.2fx)" % (speedup, required),
             "  baseline:  %d events/sec (tolerance %d%%)"
             % (committed, tolerance * 100)]
    passed = True
    if speedup < required:
        shortfall = (required - speedup) / required * 100.0
        lines.append(
            "  FAIL: speedup regressed %.1f%% below the required %.2fx "
            "(got %.2fx)" % (shortfall, required, speedup))
        passed = False
    floor = committed * (1.0 - tolerance)
    if opt < floor:
        regression = (committed - opt) / committed * 100.0
        lines.append(
            "  FAIL: optimized throughput is %.1f%% below the committed "
            "baseline %d events/sec (floor %d after %d%% tolerance)"
            % (regression, committed, floor, tolerance * 100))
        passed = False
    if passed:
        lines.append("  PASS")
    return passed, "\n".join(lines)
