"""Benchmark result trajectory tools: ``repro bench-trend`` / ``bench-gate``.

The figure benchmarks write machine-readable ``BENCH_<fig>.json`` files
when run with ``--json`` (see ``benchmarks/_support.py``): figure id,
title, scale, the measured data series, and ``wall_clock_s`` — the DES
engine's self-timed wall-clock cost of regenerating that figure.  Two
consumers live here:

* :func:`bench_trend` compares two result sets (directories of
  ``BENCH_*.json``) and prints the wall-clock delta per figure — the
  before/after view for any performance work on the simulator.
* :func:`bench_gate` checks the engine microbench
  (``BENCH_engine.json``) against the committed
  ``benchmarks/baseline_engine.json``: the machine-independent
  optimized-vs-naive speedup must meet ``required_speedup``, and the
  absolute events/sec must sit inside the baseline's ``tolerance`` band.
  Failures name the regression percentage instead of a bare assert.
* :func:`figure_gate` checks figure-level requirements the baseline's
  ``figures`` section declares (``repro bench-gate --figures DIR``):
  each entry names a figure id, an optional required ``scale``, and
  per-metric ``min`` / ``max`` / ``equals`` bounds on the figure's
  ``data`` payload.  The committed entry pins Fig 10's density storm at
  full paper scale (n=8000) on the single-worker daemon even at quick
  CI — the PR-5 scaling win cannot silently regress to a smaller n or
  be bought with the multi-worker ablation knobs.
"""

from __future__ import annotations

import json
import pathlib
import typing


class BenchResultError(ValueError):
    """A result or baseline file is missing or malformed."""


def load_results(location: typing.Union[str, pathlib.Path]) \
        -> typing.Dict[str, dict]:
    """Load ``BENCH_*.json`` payloads from a directory (or a single
    file); returns ``{figure_id: payload}``."""
    path = pathlib.Path(location)
    if path.is_file():
        files = [path]
    elif path.is_dir():
        files = sorted(path.glob("BENCH_*.json"))
    else:
        raise BenchResultError("no such file or directory: %s" % path)
    if not files:
        raise BenchResultError("no BENCH_*.json files under %s" % path)
    results = {}
    for file in files:
        try:
            payload = json.loads(file.read_text())
        except ValueError as exc:
            raise BenchResultError("unparsable %s: %s" % (file, exc))
        figure = payload.get("figure")
        if not figure:
            raise BenchResultError("%s has no 'figure' field" % file)
        results[figure] = payload
    return results


def _fmt_seconds(value: typing.Optional[float]) -> str:
    return "%.2fs" % value if isinstance(value, (int, float)) else "-"


def bench_trend(old: typing.Dict[str, dict],
                new: typing.Dict[str, dict]) -> str:
    """Render the per-figure wall-clock deltas between two result sets."""
    lines = ["%-12s %10s %10s %10s   %s"
             % ("figure", "old", "new", "delta", "scale")]
    for figure in sorted(set(old) | set(new)):
        before = old.get(figure, {})
        after = new.get(figure, {})
        old_s = before.get("wall_clock_s")
        new_s = after.get("wall_clock_s")
        if isinstance(old_s, (int, float)) and \
                isinstance(new_s, (int, float)) and old_s > 0:
            delta = "%+.1f%%" % ((new_s - old_s) / old_s * 100.0)
        elif figure not in old:
            delta = "new"
        elif figure not in new:
            delta = "gone"
        else:
            delta = "-"
        scales = "/".join(sorted({str(payload.get("scale"))
                                  for payload in (before, after)
                                  if payload}))
        lines.append("%-12s %10s %10s %10s   %s"
                     % (figure, _fmt_seconds(old_s), _fmt_seconds(new_s),
                        delta, scales))
    detail = _data_metric_trend(old, new)
    if detail:
        lines.append("")
        lines.append("data metrics (per-figure):")
        lines.extend(detail)
    return "\n".join(lines)


def _metric_scalar(entry: object) -> typing.Optional[float]:
    """A comparable number for one ``data`` entry, if it has one.

    Engine-shaped entries (``{"opt_events_per_sec": ..., ...}``) compare
    by optimized throughput; plain numbers compare directly; anything
    else (lists, descriptive strings) has no scalar and is only tracked
    for presence.
    """
    if isinstance(entry, dict):
        value = entry.get("opt_events_per_sec")
        return value if isinstance(value, (int, float)) else None
    if isinstance(entry, (int, float)) and not isinstance(entry, bool):
        return float(entry)
    return None


def _data_metric_trend(old: typing.Dict[str, dict],
                       new: typing.Dict[str, dict]) -> typing.List[str]:
    """Diff the per-figure ``data`` metrics between two result sets.

    Total by construction: a shape or metric present on only one side is
    reported as ``added`` / ``removed``, never raised on — a brand-new
    BENCH_*.json (or a retired one) must not break the perf-smoke diff.
    """
    lines: typing.List[str] = []
    for figure in sorted(set(old) | set(new)):
        before = old.get(figure, {}).get("data")
        after = new.get(figure, {}).get("data")
        before = before if isinstance(before, dict) else {}
        after = after if isinstance(after, dict) else {}
        for metric in sorted(set(before) | set(after)):
            label = "%s/%s" % (figure, metric)
            if metric not in before:
                lines.append("  %-28s added" % label)
            elif metric not in after:
                lines.append("  %-28s removed" % label)
            else:
                old_v = _metric_scalar(before[metric])
                new_v = _metric_scalar(after[metric])
                if old_v is not None and new_v is not None and old_v != 0:
                    lines.append("  %-28s %+.1f%%"
                                 % (label,
                                    (new_v - old_v) / old_v * 100.0))
    return lines


def _gate_metric(metric: str, entry: typing.Optional[dict],
                 required: float, committed: typing.Optional[float],
                 tolerance: float,
                 lines: typing.List[str]) -> bool:
    """Check one shape's speedup + absolute band; append report lines."""
    if not isinstance(entry, dict):
        lines.append("bench-gate: metric %s" % metric)
        lines.append("  FAIL: result has no data for this metric")
        return False
    opt = entry.get("opt_events_per_sec")
    ref = entry.get("ref_events_per_sec")
    speedup = entry.get("speedup")
    lines.append("bench-gate: metric %s" % metric)
    lines.append("  optimized: %d events/sec" % opt)
    lines.append("  naive ref: %d events/sec" % ref)
    lines.append("  speedup:   %.2fx (required >= %.2fx)"
                 % (speedup, required))
    passed = True
    if speedup < required:
        shortfall = (required - speedup) / required * 100.0
        lines.append(
            "  FAIL: speedup regressed %.1f%% below the required %.2fx "
            "(got %.2fx)" % (shortfall, required, speedup))
        passed = False
    if isinstance(committed, (int, float)):
        lines.append("  baseline:  %d events/sec (tolerance %d%%)"
                     % (committed, tolerance * 100))
        floor = committed * (1.0 - tolerance)
        if opt < floor:
            regression = (committed - opt) / committed * 100.0
            lines.append(
                "  FAIL: optimized throughput is %.1f%% below the "
                "committed baseline %d events/sec (floor %d after %d%% "
                "tolerance)"
                % (regression, committed, floor, tolerance * 100))
            passed = False
    if passed:
        lines.append("  PASS")
    return passed


def bench_gate(result: dict, baseline: dict) -> typing.Tuple[bool, str]:
    """Check an engine-bench result against the committed baseline.

    Returns ``(passed, report)``.  Two checks per gated metric:

    1. **Speedup** (machine-independent): the optimized/naive ratio must
       be >= the metric's ``required_speedup``.
    2. **Absolute band**: optimized events/sec must be >=
       ``events_per_sec * (1 - tolerance)``.  The band is wide because
       CI hardware differs from the machine that committed the baseline;
       the ratio check is the sharp one.

    The baseline may gate **several** shapes via ``gated_metrics``::

        "gated_metrics": {
            "timer_wheel":   {"required_speedup": 2.0,
                              "events_per_sec": 1100000},
            "process_chain": {"required_speedup": 2.0}
        }

    Per-metric ``required_speedup``/``events_per_sec`` default to the
    top-level values; ``tolerance`` is shared.  A baseline without
    ``gated_metrics`` gates only the top-level primary ``metric`` — the
    pre-trampoline schema keeps working unchanged.
    """
    tolerance = baseline.get("tolerance", 0.5)
    top_required = baseline.get("required_speedup")
    top_committed = baseline.get("events_per_sec")
    data = result.get("data", {})
    gated = baseline.get("gated_metrics")
    if not isinstance(gated, dict) or not gated:
        gated = {baseline.get("metric"): {}}
    lines: typing.List[str] = []
    passed = True
    for metric in sorted(gated):
        spec = gated[metric] or {}
        required = spec.get("required_speedup", top_required)
        committed = spec.get("events_per_sec",
                             top_committed if metric == baseline.get("metric")
                             else None)
        entry = data.get(metric)
        if not _gate_metric(metric, entry, required, committed, tolerance,
                            lines):
            passed = False
    if not lines:  # no metric named at all — malformed baseline
        return False, "bench-gate: baseline names no metric to gate"
    return passed, "\n".join(lines)


def figure_gate(results: typing.Dict[str, dict],
                baseline: dict) -> typing.Tuple[bool, str]:
    """Check figure results against the baseline's ``figures`` section.

    ``results`` is a :func:`load_results` mapping; ``baseline`` is the
    committed baseline JSON.  Each ``figures`` entry may declare:

    * ``scale`` — the result's scale must match exactly (so a gate on a
      quick-CI guarantee is not satisfied by a full-scale run);
    * ``require`` — ``{metric: {"min"|"max"|"equals": bound}}`` checks
      on the figure's ``data`` payload.

    Returns ``(passed, report)``; a figure named by the baseline but
    absent from the results fails (the gate exists to catch exactly
    that kind of silent disappearance).
    """
    figures = baseline.get("figures")
    if not isinstance(figures, dict) or not figures:
        return False, ("bench-gate: baseline declares no 'figures' "
                       "entries to check")
    passed = True
    lines = []
    for figure, spec in sorted(figures.items()):
        lines.append("bench-gate: figure %s" % figure)
        payload = results.get(figure)
        if payload is None:
            lines.append("  FAIL: no BENCH_%s.json in the result set "
                         "(figures present: %s)"
                         % (figure, ", ".join(sorted(results)) or "none"))
            passed = False
            continue
        scale = spec.get("scale")
        if scale and payload.get("scale") != scale:
            lines.append("  FAIL: result scale is %r, baseline requires %r"
                         % (payload.get("scale"), scale))
            passed = False
        data = payload.get("data", {})
        for metric, bounds in sorted(spec.get("require", {}).items()):
            value = data.get(metric)
            if not isinstance(value, (int, float)):
                lines.append("  FAIL: %s: missing from the result data"
                             % metric)
                passed = False
                continue
            ok = True
            if "min" in bounds and value < bounds["min"]:
                lines.append("  FAIL: %s = %s, below the required minimum "
                             "%s" % (metric, value, bounds["min"]))
                ok = passed = False
            if "max" in bounds and value > bounds["max"]:
                lines.append("  FAIL: %s = %s, above the allowed maximum "
                             "%s" % (metric, value, bounds["max"]))
                ok = passed = False
            if "equals" in bounds and value != bounds["equals"]:
                lines.append("  FAIL: %s = %s, baseline requires exactly "
                             "%s" % (metric, value, bounds["equals"]))
                ok = passed = False
            if ok:
                lines.append("  %s = %s: ok" % (metric, value))
    lines.append("  PASS" if passed else "  FAIL")
    return passed, "\n".join(lines)
