"""Runtime happens-before witness for the DES kernel.

:mod:`repro.analysis.races` proves lock discipline *statically*; this
module checks the same discipline *dynamically*.  :class:`RaceWitness`
is an opt-in kernel hook (``sim.witness``, same contract as
``sanitizer``/``trace``/``tracer``: one ``is None`` check per hook site,
timeline-read-only) that threads **vector clocks** through the three
places causality flows in the simulator:

* **spawn** — a child process starts with a copy of its parent's clock;
* **trigger → wake** — ``Event.succeed``/``fail`` snapshots the
  triggering context's clock onto the event, and the woken process joins
  that snapshot before its generator resumes;
* **Resource hand-off** — ``release`` folds the holder's clock into the
  lock's clock, and the next grantee joins it on wake, so lock-ordered
  critical sections are happens-before-ordered even when no event value
  flows between them.

On top of the clocks the witness keeps two ledgers:

* **observed lock order** — every acquisition made while other named
  locks are held records an edge between the *normalized* lock labels
  (``xenstore.shard[3]`` → ``xenstore.shard[*]``, matching the static
  pass).  Same-family acquisitions additionally check the concrete
  indices really ascend; a descending pair is an
  :attr:`RaceWitness.order_violations` entry on the spot.
  :meth:`RaceWitness.validate_static` diffs the observed edge set
  against a static :class:`~repro.analysis.races.LockOrderGraph` so CI
  can prove the model and the execution agree.
* **tracked shared state** — code under test calls
  :meth:`RaceWitness.track` for a label and :meth:`RaceWitness.access`
  at each read/write.  A write is racy when a conflicting access from
  another process has **no happens-before path** to it *and* the two
  held-lock sets are disjoint — the DES analogue of FastTrack's check.
  In a cooperative kernel such a pair is not memory-unsafe, but it means
  the outcome depends only on scheduler accident, which is exactly what
  the determinism contract forbids relying on.

The witness never creates, triggers, or reorders events, so attaching
it cannot change a replay digest; ``tests/test_race_witness.py`` proves
digest byte-identity over the fig04/fig09/fig10 dual-kernel slices.
"""

from __future__ import annotations

import re
import typing
import weakref

from .races import LockOrderGraph, normalize_lock_name

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


class WitnessViolation(AssertionError):
    """The runtime witness observed a lock-order or race hazard."""


#: Concrete shard index at the end of a lock name (``...[7]``).
_TRAILING_INDEX = re.compile(r"\[(\d+)\]$")


def _lock_index(name: str) -> typing.Optional[int]:
    match = _TRAILING_INDEX.search(name)
    return int(match.group(1)) if match else None


def _join(into: dict, other: dict) -> None:
    """Pointwise-max merge of vector clock ``other`` into ``into``."""
    for pid, tick in other.items():
        if tick > into.get(pid, 0):
            into[pid] = tick


def _happens_before(earlier: dict, later: dict) -> bool:
    """True when clock snapshot ``earlier`` <= clock ``later`` pointwise."""
    return all(tick <= later.get(pid, 0) for pid, tick in earlier.items())


class _Access:
    """One recorded access to a tracked shared-state label."""

    __slots__ = ("pid", "proc_name", "write", "clock", "held", "site")

    def __init__(self, pid, proc_name, write, clock, held, site):
        self.pid = pid
        self.proc_name = proc_name
        self.write = write
        self.clock = clock
        self.held = held
        self.site = site

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        where = " at %s" % self.site if self.site else ""
        locks = ("{%s}" % ", ".join(sorted(self.held))) if self.held \
            else "no locks"
        return "%s by pid %d (%s)%s holding %s" % (
            kind, self.pid, self.proc_name, where, locks)


class RaceWitness:
    """Vector-clock sanitizer for process spawn/wake and lock hand-off.

    Attach before running (``RaceWitness().attach(sim)``); the kernel
    hooks in :mod:`repro.sim` call :meth:`on_spawn`, :meth:`on_trigger`,
    :meth:`on_wake` and :meth:`on_release` — everything else
    (:meth:`track`/:meth:`access`, the report accessors) is driven by
    the harness.
    """

    def __init__(self):
        self.sim: typing.Optional["Simulator"] = None
        #: pid 0 is the top-level driver context (no active process).
        self._pid_of: "weakref.WeakKeyDictionary" = \
            weakref.WeakKeyDictionary()
        self._names: typing.Dict[int, str] = {0: "<main>"}
        self._clocks: typing.Dict[int, dict] = {0: {0: 1}}
        self._next_pid = 1
        #: Event -> clock snapshot taken when it was triggered.
        self._event_vc: "weakref.WeakKeyDictionary" = \
            weakref.WeakKeyDictionary()
        #: Resource -> clock accumulated across releases.
        self._lock_vc: "weakref.WeakKeyDictionary" = \
            weakref.WeakKeyDictionary()
        #: pid -> list of (resource, concrete name, label, index) held.
        self._held: typing.Dict[int, list] = {}
        #: (src label, dst label) -> {"ascending": bool, "count": int}.
        self._edges: typing.Dict[tuple, dict] = {}
        self.order_violations: typing.List[str] = []
        self._tracked: typing.Dict[str, dict] = {}
        self.races: typing.List[str] = []
        self.spawns = 0
        self.wakes = 0

    def attach(self, sim: "Simulator") -> "RaceWitness":
        self.sim = sim
        sim.witness = self
        return self

    # ------------------------------------------------------------------
    # Kernel hooks
    # ------------------------------------------------------------------
    def _context(self) -> int:
        proc = self.sim.active_process
        if proc is None:
            return 0
        pid = self._pid_of.get(proc)
        if pid is None:
            # Spawned before the witness attached; adopt it with a fresh
            # clock (no known parent edge).
            pid = self._register(proc, None)
        return pid

    def _register(self, process, parent_vc) -> int:
        pid = self._next_pid
        self._next_pid = pid + 1
        self._pid_of[process] = pid
        self._names[pid] = getattr(process, "name", None) or "process"
        clock = dict(parent_vc) if parent_vc else {}
        clock[pid] = 1
        self._clocks[pid] = clock
        return pid

    def on_spawn(self, process) -> None:
        """A :class:`~repro.sim.process.Process` was created."""
        parent = self._context()
        parent_vc = self._clocks[parent]
        parent_vc[parent] = parent_vc.get(parent, 0) + 1
        self._register(process, parent_vc)
        self.spawns += 1

    def on_trigger(self, event) -> None:
        """An event was succeeded/failed; snapshot the trigger clock."""
        pid = self._context()
        clock = self._clocks[pid]
        self._event_vc[event] = dict(clock)
        clock[pid] = clock.get(pid, 0) + 1

    def on_wake(self, process, event) -> None:
        """``process`` is about to resume on ``event``."""
        pid = self._pid_of.get(process)
        if pid is None:
            pid = self._register(process, None)
        clock = self._clocks[pid]
        snapshot = self._event_vc.get(event)
        if snapshot is not None:
            _join(clock, snapshot)
        resource = getattr(event, "resource", None)
        if resource is not None:
            self._on_acquire(pid, clock, resource)
        clock[pid] = clock.get(pid, 0) + 1
        self.wakes += 1

    def on_release(self, resource, request) -> None:
        """A :class:`~repro.sim.resources.Resource` slot was returned."""
        pid = self._context()
        clock = self._clocks[pid]
        lock_vc = self._lock_vc.get(resource)
        if lock_vc is None:
            self._lock_vc[resource] = dict(clock)
        else:
            _join(lock_vc, clock)
        clock[pid] = clock.get(pid, 0) + 1
        held = self._held.get(pid)
        if held:
            for position, entry in enumerate(held):
                if entry[0] is resource:
                    del held[position]
                    break

    def _on_acquire(self, pid, clock, resource) -> None:
        lock_vc = self._lock_vc.get(resource)
        if lock_vc is not None:
            _join(clock, lock_vc)
        name = getattr(resource, "name", None)
        held = self._held.setdefault(pid, [])
        if name is None:
            held.append((resource, None, None, None))
            return
        label = normalize_lock_name(name)
        index = _lock_index(name)
        for _, held_name, held_label, held_index in held:
            if held_label is None:
                continue
            if held_label == label:
                ascending = (held_index is not None and index is not None
                             and held_index < index)
                self._note_edge(label, label, ascending)
                if not ascending:
                    self.order_violations.append(
                        "pid %d (%s) acquired %s while holding %s "
                        "(same family, non-ascending)"
                        % (pid, self._names[pid], name, held_name))
            else:
                self._note_edge(held_label, label, False)
        held.append((resource, name, label, index))

    def _note_edge(self, src, dst, ascending) -> None:
        edge = self._edges.get((src, dst))
        if edge is None:
            self._edges[(src, dst)] = {"ascending": ascending, "count": 1}
        else:
            edge["count"] += 1
            if not ascending:
                edge["ascending"] = False

    # ------------------------------------------------------------------
    # Tracked shared state
    # ------------------------------------------------------------------
    def track(self, label: str) -> None:
        """Start checking happens-before on accesses to ``label``."""
        self._tracked.setdefault(label, {"write": None, "reads": []})

    def access(self, label: str, write: bool, site: str = "") -> None:
        """Record a read/write of tracked ``label`` by the current
        process; reports a race when a conflicting prior access is
        neither happens-before-ordered nor lock-protected."""
        state = self._tracked.get(label)
        if state is None:
            return
        pid = self._context()
        clock = self._clocks[pid]
        held = frozenset(
            entry[1] for entry in self._held.get(pid, ()) if entry[1])
        record = _Access(pid, self._names[pid], write, dict(clock),
                         held, site)
        conflicts = []
        if state["write"] is not None:
            conflicts.append(state["write"])
        if write:
            conflicts.extend(state["reads"])
        for prior in conflicts:
            if prior.pid == pid:
                continue
            if _happens_before(prior.clock, clock):
                continue
            if prior.held & held:
                continue
            self.races.append(
                "race on %r: %s is unordered with %s"
                % (label, record.describe(), prior.describe()))
        if write:
            state["write"] = record
            state["reads"] = []
        else:
            state["reads"].append(record)

    # ------------------------------------------------------------------
    # Reporting / cross-validation
    # ------------------------------------------------------------------
    def observed_order(self) -> typing.List[dict]:
        """Observed lock-order edges as sorted, JSON-ready dicts."""
        return [
            {"src": src, "dst": dst,
             "ascending": info["ascending"], "count": info["count"]}
            for (src, dst), info in sorted(self._edges.items())
        ]

    def validate_static(self, graph: LockOrderGraph) -> typing.List[str]:
        """Diff observed edges against the static lock-order graph.

        Returns human-readable discrepancies; empty means every edge the
        execution exercised was predicted by the static pass with a
        compatible ascending verdict.
        """
        problems = list(self.order_violations)
        static_edges = {key: edge.ascending
                        for key, edge in graph.edges.items()}
        for (src, dst), info in sorted(self._edges.items()):
            if (src, dst) not in static_edges:
                problems.append(
                    "observed lock-order edge %s -> %s never predicted "
                    "by the static pass" % (src, dst))
            elif src == dst and not info["ascending"] \
                    and static_edges[(src, dst)]:
                problems.append(
                    "static pass proves %s self-acquisition ascending "
                    "but runtime observed a non-ascending pair" % src)
        return problems

    def report(self) -> dict:
        return {
            "spawns": self.spawns,
            "wakes": self.wakes,
            "observed_edges": self.observed_order(),
            "order_violations": list(self.order_violations),
            "races": list(self.races),
        }

    def render(self) -> str:
        lines = ["witness: %d spawn(s), %d wake(s), %d observed edge(s)"
                 % (self.spawns, self.wakes, len(self._edges))]
        for edge in self.observed_order():
            arrow = "=asc=>" if edge["ascending"] else "->"
            lines.append("  observed %s %s %s  (x%d)"
                         % (edge["src"], arrow, edge["dst"], edge["count"]))
        for violation in self.order_violations:
            lines.append("  ORDER VIOLATION: %s" % violation)
        for race in self.races:
            lines.append("  RACE: %s" % race)
        return "\n".join(lines)

    def assert_clean(self) -> None:
        problems = self.order_violations + self.races
        if problems:
            raise WitnessViolation(
                "%d witness violation(s):\n%s"
                % (len(problems), "\n".join("  " + p for p in problems)))


def run_shard_witness(workers: int = 4, guests: int = 12,
                      seed: int = 0) -> RaceWitness:
    """Boot-storm a sharded-daemon host under the witness.

    This is the built-in cross-validation workload used by ``repro races
    --witness``: a ``workers``-shard XenStore daemon under an ``xl``
    boot storm (lightvm skips XenStore entirely, so it would observe
    nothing) exercises both the single-shard fast path and the
    all-shards ascending walk (name admission, transaction commits), so
    the returned witness's :meth:`~RaceWitness.observed_order` contains
    the ``xenstore.shard[*]`` family edge for
    :meth:`~RaceWitness.validate_static` to check.
    """
    from ..core import Host
    from ..guests import DAYTIME_UNIKERNEL
    from ..sim import Simulator

    sim = Simulator()
    witness = RaceWitness().attach(sim)
    host = Host(variant="xl", seed=seed, sim=sim,
                xenstore_workers=workers, xenstore_batch=True)
    for _ in range(guests):
        host.create_vm(DAYTIME_UNIKERNEL)
    return witness
