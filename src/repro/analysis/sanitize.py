"""Runtime sanitizers and the dual-run replay-digest checker.

Static linting (:mod:`repro.analysis.lint`) catches hazards visible in
the source; this module catches the ones only visible at runtime:

* **Double triggers** — an :class:`~repro.sim.events.Event` succeeded or
  failed twice.  The kernel raises on the spot, but defensive call sites
  often swallow that raise; the sanitizer records every attempt so the
  bug surfaces in the end-of-run report.
* **Stalled processes** — a :class:`~repro.sim.process.Process` still
  alive after the queue drained is deadlocked (waiting on an event
  nobody will trigger) or leaked; this extends the post-run auditing of
  :mod:`repro.faults.invariants` from control-plane state to kernel
  state.
* **Waiters at end of run** — a :class:`~repro.sim.resources.Resource`
  with a non-empty queue or a :class:`~repro.sim.resources.Store` with
  pending getters after the drain means some process parked forever.
* **RNG stream collisions** — two distinct
  :class:`~repro.sim.rng.RngStream` objects derived from the same
  ``(seed, name)`` silently produce *correlated* randomness: two
  components believe they have independent streams but replay each
  other's draws.

All hooks are **opt-in**: a plain :class:`~repro.sim.engine.Simulator`
pays one ``is None`` check per hook site and nothing else.

The **dual-run digest checker** (:func:`verify_replay`) is the
determinism end-game: it runs a scenario twice from the same seed, each
time streaming every processed event — ``(time, event type, ok, canonical
payload)`` — into a SHA-256, and compares the digests.  Equal digests
prove the two timelines are byte-identical without storing either.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing
import weakref

from ..sim.engine import Simulator
from ..sim.events import _Cell
from ..sim.rng import RngStream


class SanitizerViolation(AssertionError):
    """The sanitizer observed a kernel-level hazard; see the message."""


class ReplayDivergence(AssertionError):
    """Two runs of the same (seed, scenario) produced different event
    timelines — the determinism contract is broken."""


# ----------------------------------------------------------------------
# Canonical payload encoding (address-free, replay-stable)
# ----------------------------------------------------------------------

def canonical(value: object, depth: int = 0) -> str:
    """Encode ``value`` for digesting, stable across processes.

    ``repr`` is unusable here: default object reprs embed ``id()``
    addresses that differ between runs even when the timeline is
    identical.  Scalars and containers are encoded structurally;
    everything else collapses to its type name, which still pins the
    *shape* of the timeline (what fired, when, in which order) without
    smuggling in address entropy.
    """
    if depth > 4:
        return "..."
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return repr(value)
    if isinstance(value, float):
        return value.hex()  # exact bits, not shortest-repr rounding
    if isinstance(value, (list, tuple)):
        open_, close = ("[", "]") if isinstance(value, list) else ("(", ")")
        return open_ + ",".join(canonical(v, depth + 1)
                                for v in value) + close
    if isinstance(value, dict):
        return "{" + ",".join(
            "%s:%s" % (canonical(k, depth + 1), canonical(v, depth + 1))
            for k, v in value.items()) + "}"
    if isinstance(value, BaseException):
        return "%s(%s)" % (type(value).__name__,
                           ",".join(canonical(a, depth + 1)
                                    for a in value.args))
    return "<%s>" % type(value).__name__


class EventTrace:
    """Streaming SHA-256 over a simulator's processed-event timeline.

    Attach with :meth:`attach`; :meth:`Simulator.step` feeds every event
    through :meth:`record`.  The digest is order-, time-, type- and
    payload-sensitive but address-free, so two bit-identical runs in
    different processes produce the same hex digest.
    """

    def __init__(self):
        self._hash = hashlib.sha256()
        self.events = 0

    def attach(self, sim: Simulator) -> "EventTrace":
        sim.trace = self
        return self

    def record(self, when: float, event: object) -> None:
        ok = getattr(event, "_ok", None)
        value = getattr(event, "_value", None)
        line = "%s|%s|%s|%s\n" % (when.hex(), type(event).__name__,
                                  ok, canonical(value))
        self._hash.update(line.encode("utf-8", "backslashreplace"))
        self.events += 1

    def digest(self) -> str:
        """Hex digest of everything recorded so far."""
        return self._hash.hexdigest()


def combine_digests(digests: typing.Sequence[str]) -> str:
    """Fold per-component digests into one canonical cluster digest.

    Position-sensitive: component ``i``'s digest is hashed with its index,
    so the combination is a pure function of the ordered sequence — for a
    cluster, per-host :class:`EventTrace` digests in host-index order.
    Two backends that produce byte-identical per-host timelines therefore
    produce the same combined digest regardless of how hosts were
    partitioned across OS processes.
    """
    rollup = hashlib.sha256()
    for index, digest in enumerate(digests):
        rollup.update(("%d:%s\n" % (index, digest)).encode("ascii"))
    return rollup.hexdigest()


# ----------------------------------------------------------------------
# Sanitizer
# ----------------------------------------------------------------------

class Sanitizer:
    """Opt-in runtime hazard detector for one or more simulators.

    Usage::

        san = Sanitizer()
        sim = Simulator()
        san.attach(sim)
        with san.watch_rng():
            ...  # build hosts, run the scenario
        sim.run()
        san.assert_clean()
    """

    def __init__(self):
        self.double_triggers: typing.List[str] = []
        self.rng_collisions: typing.List[str] = []
        self._processes: "weakref.WeakSet" = weakref.WeakSet()
        self._resources: "weakref.WeakSet" = weakref.WeakSet()
        self._stores: "weakref.WeakSet" = weakref.WeakSet()
        self._streams_seen: typing.Set[typing.Tuple[int, str]] = set()

    # -- hook points (called from the sim kernel when attached) --------
    def attach(self, sim: Simulator) -> "Sanitizer":
        sim.sanitizer = self
        return self

    def event_double_trigger(self, event: object) -> None:
        self.double_triggers.append(
            "%s re-triggered at t=%s (already %s)"
            % (type(event).__name__, event.sim.now,
               "ok" if getattr(event, "_ok", None) else "failed"))

    def track_process(self, process: object) -> None:
        self._processes.add(process)

    def track_resource(self, resource: object) -> None:
        self._resources.add(resource)

    def track_store(self, store: object) -> None:
        self._stores.add(store)

    def stream_created(self, seed: int, name: str) -> None:
        key = (seed, name)
        if key in self._streams_seen:
            self.rng_collisions.append(
                "rng stream (seed=%r, name=%r) derived twice: the two "
                "streams replay identical draws" % (seed, name))
        else:
            self._streams_seen.add(key)

    def watch_rng(self) -> "typing.ContextManager[None]":
        """Context manager: observe every RngStream construction
        process-wide (class-level hook, so scope it tightly)."""
        sanitizer = self

        class _Watch:
            def __enter__(self):
                RngStream.observers.append(sanitizer)

            def __exit__(self, *exc):
                RngStream.observers.remove(sanitizer)

        return _Watch()

    # -- end-of-run audit ----------------------------------------------
    def check(self) -> typing.List[str]:
        """Audit everything tracked; returns violation descriptions.

        Call with the simulator drained — a stalled process mid-run is
        just a process that has not been scheduled yet.
        """
        violations: typing.List[str] = list(self.double_triggers)
        violations.extend(self.rng_collisions)
        stalled = [process for process in self._processes
                   if getattr(process, "is_alive", False)
                   and not getattr(process, "daemon", False)]
        stalled.sort(key=lambda p: getattr(p, "name", ""))
        for process in stalled:
            waiting = process._waiting_on
            # A pooled kernel cell (_Cell) is the bootstrap/kick carrier,
            # not something the guest chose to wait on; a process parked
            # on one with the queue drained simply never got resumed.
            # (Its class __name__ deliberately reads "Event" for digest
            # reasons, so report it by meaning, not by name.)
            if waiting is None or waiting.__class__ is _Cell:
                waited = "nothing (never resumed)"
            else:
                waited = type(waiting).__name__
            violations.append(
                "process %r never finished: waiting on %s (deadlock or "
                "leaked wakeup)" % (process.name, waited))
        for resource in self._resources:
            if getattr(resource, "queue", None):
                violations.append(
                    "resource (capacity %d) drained with %d waiter(s) "
                    "still queued"
                    % (resource.capacity, len(resource.queue)))
        for store in self._stores:
            pending = [getter for getter in getattr(store, "_getters", ())
                       if not getter.triggered]
            if pending:
                violations.append(
                    "store drained with %d blocked getter(s)"
                    % len(pending))
        return violations

    def assert_clean(self) -> None:
        """Raise :class:`SanitizerViolation` if :meth:`check` found any."""
        violations = self.check()
        if violations:
            raise SanitizerViolation(
                "%d sanitizer violation(s):\n  %s"
                % (len(violations), "\n  ".join(violations)))


# ----------------------------------------------------------------------
# Dual-run replay verification
# ----------------------------------------------------------------------

@dataclasses.dataclass
class ReplayReport:
    """Outcome of :func:`verify_replay`."""

    digests: typing.List[str]
    event_counts: typing.List[int]

    @property
    def identical(self) -> bool:
        return len(set(self.digests)) == 1

    def render(self) -> str:
        lines = ["run %d: %d events, digest %s"
                 % (index + 1, count, digest)
                 for index, (digest, count)
                 in enumerate(zip(self.digests, self.event_counts))]
        lines.append("replay: %s" % ("IDENTICAL" if self.identical
                                     else "DIVERGED"))
        return "\n".join(lines)


def verify_replay(scenario: typing.Callable[[Simulator], object],
                  runs: int = 2) -> ReplayReport:
    """Run ``scenario`` ``runs`` times, each on a fresh traced
    :class:`Simulator`, and compare the event-timeline digests.

    ``scenario(sim)`` must build all of its state on the simulator it is
    given (e.g. ``Host(..., sim=sim)``) and drive it to completion; any
    state shared across calls breaks the comparison's premise.  Returns
    a :class:`ReplayReport`; use :func:`assert_replay_identical` to turn
    divergence into an error.
    """
    if runs < 2:
        raise ValueError("need at least 2 runs to compare, got %d" % runs)
    digests: typing.List[str] = []
    counts: typing.List[int] = []
    for _ in range(runs):
        sim = Simulator()
        trace = EventTrace().attach(sim)
        scenario(sim)
        digests.append(trace.digest())
        counts.append(trace.events)
    return ReplayReport(digests=digests, event_counts=counts)


def assert_replay_identical(scenario: typing.Callable[[Simulator], object],
                            runs: int = 2) -> ReplayReport:
    """:func:`verify_replay`, raising :class:`ReplayDivergence` unless
    every run's digest matches."""
    report = verify_replay(scenario, runs=runs)
    if not report.identical:
        raise ReplayDivergence(
            "event timelines diverged across %d runs of the same "
            "scenario:\n%s" % (runs, report.render()))
    return report
