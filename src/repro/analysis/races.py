"""Whole-program lock-order and sim-race analysis (``repro races``).

The sharded XenStore daemon (PR 5) and the recovery layer (PR 6) rest on
a lock discipline that was, until this pass, enforced purely by
convention: *per-subtree shard locks are* ``Resource(capacity=1)``
*objects, and any op touching more than one shard takes them in
ascending index order*.  Conventions rot; the cluster-scale roadmap item
(parallel per-host engines) multiplies the cost of a rotten one.  This
module turns the convention into a machine-checked contract.

It is an interprocedural static pass over the simulation sources:

1. **Lock discovery** — every ``repro.sim.resources.Resource``
   construction site becomes a *lock declaration*.  A ``name=`` argument
   names the lock (format fields like ``%d`` normalise to ``*`` so
   ``"xenstore.shard[%d]" % i`` declares the *family*
   ``xenstore.shard[*]``); undeclared locks are labelled from their
   binding site (``Class.attr`` or ``module.func.var``).
2. **Per-function summaries** — each function body is flattened into a
   linear trace of abstract ops (acquire / release / call / yield /
   shared-state read / shared-state write) with a held-lock stack
   threaded through ``with lock.request()`` blocks, manual
   request/release pairs and loop acquires.
3. **A global lock-order graph** — an edge ``A -> B`` is recorded
   whenever ``B`` is acquired (directly or via any resolvable callee)
   while ``A`` is held.  Intra-family multi-acquires are *ascending*
   when the acquisition index order is provable: a loop over a
   ``sorted(...)``/``range(...)`` iterable (or a parameter every call
   site feeds from one — a small orderedness fixpoint over the call
   graph), or literal indices taken in increasing order.
4. **Findings** — reported through the lint machinery (same
   :class:`~repro.analysis.lint.Finding` type, same justified-``noqa``
   suppression policy):

   ==========  =========  ==================================================
   ID          severity   hazard
   ==========  =========  ==================================================
   ``RPR101``  error      potential deadlock: a cycle in the lock-order
                          graph, or an intra-family multi-acquire whose
                          order is not provably ascending
   ``RPR102``  error      a manual ``.request()`` held across a yield
                          with no ``with`` block or ``try/finally``
                          releasing it — an exception unwinding the
                          process leaks the slot forever
   ``RPR103``  error      a stale read-modify-write: ``self.*`` state
                          read before a yield and written after it with
                          no lock held across, in a function reachable
                          from a process body — another process can
                          interleave at the yield and the write clobbers
                          its update
   ==========  =========  ==================================================

Why RPR103 is the *DES-correct* race criterion: in this kernel,
processes interleave **only at yield points** — straight-line code
between yields is atomic, so an unlocked write is safe as long as the
value it writes was computed after the last yield (which is why the
daemon may mutate its tree after releasing the shard lock).  The hazard
that survives cooperative scheduling — and the one that breaks first
under the planned parallel cluster runner — is exactly the
read-*yield*-write shape.  It is scoped to ``self.*`` attribute state
because that is what outlives one process activation: host and daemon
objects are shared by every process holding a reference, while locals
die with the frame.

The committed lock-order baseline (``benchmarks/baseline_lockorder.json``)
pins the graph — above all the ascending ``xenstore.shard[*]`` family
self-edge that makes the PR 5 multi-worker dispatch deadlock-free — and
``repro races --baseline`` fails CI on drift.  The runtime half of the
contract lives in :mod:`repro.analysis.witness`.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import pathlib
import re
import typing

from .lint import Finding, ModuleContext, apply_suppressions

#: Rule ids this pass can emit.
RACE_RULES = {
    "RPR101": "lock-order cycle or unordered intra-family multi-acquire",
    "RPR102": "manual lock acquire leaked on exception paths",
    "RPR103": "stale read-modify-write across a yield without a lock",
}

#: Orderedness lattice for iterables feeding loop acquires.
_ASC = "ascending"
_UNKNOWN = "unknown"

#: ``name=`` format fields normalised to the family wildcard.
_FORMAT_FIELD = re.compile(r"%\(?\w*\)?[sdrif]|\{[^{}]*\}")


def normalize_lock_name(name: str) -> str:
    """Collapse format fields in a declared lock name to ``*``:
    ``"xenstore.shard[%d]"`` and ``"xenstore.shard[3]"`` both belong to
    the family ``xenstore.shard[*]``."""
    name = _FORMAT_FIELD.sub("*", name)
    return re.sub(r"\[\d+\]", "[*]", name)


@dataclasses.dataclass(frozen=True)
class LockDecl:
    """One ``Resource(...)`` construction site."""

    label: str
    family: bool
    path: str
    line: int


@dataclasses.dataclass
class OrderEdge:
    """``src`` was held while ``dst`` was acquired.

    ``ascending`` is meaningful on family self-edges (``src == dst``):
    True means every recorded multi-acquire of the family was in
    provably ascending index order — the sanctioned pattern.  Cross-lock
    edges carry ``ascending=False`` (the flag does not apply)."""

    src: str
    dst: str
    ascending: bool
    path: str
    line: int
    via: str
    count: int = 1

    def key(self) -> typing.Tuple[str, str]:
        return (self.src, self.dst)

    def render(self) -> str:
        arrow = "=asc=>" if self.src == self.dst and self.ascending \
            else "->"
        return "%s %s %s  (%s:%d%s)" % (
            self.src, arrow, self.dst, self.path, self.line,
            " via %s" % self.via if self.via else "")


class LockOrderGraph:
    """The global acquired-while-holding graph."""

    def __init__(self):
        self.nodes: typing.List[str] = []
        self.edges: typing.Dict[typing.Tuple[str, str], OrderEdge] = {}

    def add_node(self, label: str) -> None:
        if label not in self.nodes:
            self.nodes.append(label)

    def add_edge(self, edge: OrderEdge) -> None:
        self.add_node(edge.src)
        self.add_node(edge.dst)
        existing = self.edges.get(edge.key())
        if existing is None:
            self.edges[edge.key()] = edge
        else:
            existing.count += 1
            # One non-ascending recording poisons the whole self-edge:
            # the discipline must hold at every site, not just most.
            if not edge.ascending and existing.ascending:
                existing.path, existing.line = edge.path, edge.line
                existing.via = edge.via
                existing.ascending = False

    def cycles(self) -> typing.List[typing.List[OrderEdge]]:
        """Cycles among the order edges, as witness-edge lists.

        Ascending family self-edges are the *sanctioned* multi-acquire
        and are exempt; a non-ascending self-edge is its own cycle, and
        every multi-node strongly connected component contributes one.
        """
        found: typing.List[typing.List[OrderEdge]] = []
        adjacency: typing.Dict[str, typing.List[str]] = {}
        for key in sorted(self.edges):
            edge = self.edges[key]
            if edge.src == edge.dst:
                if not edge.ascending:
                    found.append([edge])
                continue
            adjacency.setdefault(edge.src, []).append(edge.dst)
        for component in _sccs(sorted(adjacency), adjacency):
            members = frozenset(component)
            cycle = []
            for index, label in enumerate(component):
                succ = component[(index + 1) % len(component)]
                edge = self.edges.get((label, succ))
                if edge is None:
                    # The SCC is denser than the sampled ring; pick any
                    # in-component successor so the witness is real.
                    for candidate in adjacency.get(label, ()):
                        if candidate in members:
                            edge = self.edges[(label, candidate)]
                            break
                if edge is not None:
                    cycle.append(edge)
            found.append(cycle)
        return found

    # -- baseline ------------------------------------------------------
    def to_baseline(self) -> dict:
        return {
            "version": 1,
            "nodes": sorted(self.nodes),
            "edges": [
                {"src": edge.src, "dst": edge.dst,
                 "ascending": edge.ascending}
                for _key, edge in sorted(self.edges.items())
            ],
        }

    def diff_baseline(self, baseline: dict) -> typing.List[str]:
        """Drift messages vs a committed baseline (empty == identical)."""
        drift: typing.List[str] = []
        current = {(e["src"], e["dst"]): e["ascending"]
                   for e in self.to_baseline()["edges"]}
        committed = {(e["src"], e["dst"]): e.get("ascending", False)
                     for e in baseline.get("edges", [])}
        for key in sorted(set(current) - set(committed)):
            drift.append("new lock-order edge %s -> %s (ascending=%s): "
                         "not in the committed baseline"
                         % (key[0], key[1], current[key]))
        for key in sorted(set(committed) - set(current)):
            drift.append("lock-order edge %s -> %s vanished from the "
                         "analysis" % key)
        for key in sorted(set(current) & set(committed)):
            if current[key] != committed[key]:
                drift.append(
                    "edge %s -> %s changed ascending %s -> %s"
                    % (key[0], key[1], committed[key], current[key]))
        baseline_nodes = baseline.get("nodes", [])
        for node in sorted(set(self.nodes) - set(baseline_nodes)):
            drift.append("new lock %r not in the committed baseline"
                         % node)
        for node in sorted(set(baseline_nodes) - set(self.nodes)):
            drift.append("lock %r vanished from the analysis" % node)
        return drift

    def render(self) -> str:
        lines = ["lock-order graph: %d lock(s), %d edge(s)"
                 % (len(self.nodes), len(self.edges))]
        for node in sorted(self.nodes):
            lines.append("  lock %s" % node)
        for key in sorted(self.edges):
            lines.append("  edge %s" % self.edges[key].render())
        return "\n".join(lines)


def _sccs(nodes: typing.Sequence[str],
          adjacency: typing.Dict[str, typing.List[str]]
          ) -> typing.List[typing.List[str]]:
    """Strongly connected components with more than one node (iterative
    Tarjan, deterministic order)."""
    index: typing.Dict[str, int] = {}
    lowlink: typing.Dict[str, int] = {}
    on_stack: typing.Dict[str, bool] = {}
    stack: typing.List[str] = []
    counter = [0]
    components: typing.List[typing.List[str]] = []

    for root in nodes:
        if root in index:
            continue
        work: typing.List[typing.Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            children = adjacency.get(node, [])
            advanced = False
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack.get(child):
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    component.reverse()
                    components.append(component)
    return components


# ----------------------------------------------------------------------
# Abstract function traces
# ----------------------------------------------------------------------

@dataclasses.dataclass
class _Acquire:
    token: int
    label: str
    family: bool
    line: int
    manual: bool
    protected: bool
    loop_ascending: typing.Optional[bool]  # None when not a loop acquire
    var: typing.Optional[str]
    const_index: typing.Optional[int] = None


@dataclasses.dataclass
class _Op:
    kind: str  # acquire | release | call | yield | read | write | leak
    index: int
    line: int
    data: typing.Any = None


@dataclasses.dataclass
class FunctionInfo:
    """Everything the global passes need to know about one function."""

    qualname: str
    name: str
    path: str
    line: int
    class_name: typing.Optional[str]
    module_key: str
    ops: typing.List[_Op] = dataclasses.field(default_factory=list)
    calls: typing.List[typing.Tuple[str, typing.Optional[str], int]] = \
        dataclasses.field(default_factory=list)
    spawn_targets: typing.List[str] = dataclasses.field(
        default_factory=list)
    return_exprs: typing.List[ast.AST] = dataclasses.field(
        default_factory=list)
    call_sites: typing.List[typing.Tuple[str, typing.List[ast.AST],
                                         typing.Dict[str, ast.AST]]] = \
        dataclasses.field(default_factory=list)
    param_names: typing.List[str] = dataclasses.field(default_factory=list)
    has_yield: bool = False
    # Filled by the orderedness fixpoint:
    return_orderedness: str = _UNKNOWN
    param_orderedness: typing.Dict[str, str] = dataclasses.field(
        default_factory=dict)
    local_orderedness: typing.Dict[str, str] = dataclasses.field(
        default_factory=dict)
    # Filled by the summary fixpoint:
    acquired_labels: typing.List[str] = dataclasses.field(
        default_factory=list)

    def reset_trace(self) -> None:
        self.ops = []
        self.calls = []
        self.spawn_targets = []
        self.return_exprs = []
        self.call_sites = []
        self.has_yield = False


def _attr_chain(node: ast.AST) -> typing.Optional[str]:
    """Textual chain for an attribute/subscript expression, subscripts
    normalised (constant keys kept, computed keys -> ``[*]``):
    ``self._node_counts[domid]`` -> ``self._node_counts[*]``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _attr_chain(node.value)
        return None if base is None else "%s.%s" % (base, node.attr)
    if isinstance(node, ast.Subscript):
        base = _attr_chain(node.value)
        if base is None:
            return None
        key = node.slice
        if isinstance(key, ast.Constant) and isinstance(
                key.value, (str, int)):
            return "%s[%r]" % (base, key.value)
        return "%s[*]" % base
    return None


def _literal_lock_name(node: ast.AST) -> typing.Optional[str]:
    """Extract a declared lock name from the ``name=`` argument."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return normalize_lock_name(node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        return _literal_lock_name(node.left)
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("*")
        return normalize_lock_name("".join(parts))
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "format":
        return _literal_lock_name(node.func.value)
    return None


def _is_resource_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None)
    return name == "Resource"


def _resource_name_kwarg(node: ast.Call) -> typing.Optional[str]:
    for keyword in node.keywords:
        if keyword.arg == "name":
            return _literal_lock_name(keyword.value)
    return None


# ----------------------------------------------------------------------
# Pass A: module indexing (functions + lock declarations)
# ----------------------------------------------------------------------

class _ModuleIndexer:
    def __init__(self, program: "Program", module: ModuleContext):
        self.program = program
        self.module = module
        self.module_key = pathlib.Path(module.path).stem

    def run(self) -> None:
        self._walk_body(self.module.tree.body, class_name=None, prefix="")

    def _walk_body(self, body, class_name, prefix) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                self._walk_body(node.body, class_name=node.name,
                                prefix="%s%s." % (prefix, node.name))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = "%s:%s%s" % (self.module_key, prefix, node.name)
                info = FunctionInfo(
                    qualname=qualname, name=node.name,
                    path=self.module.path, line=node.lineno,
                    class_name=class_name, module_key=self.module_key)
                info.param_names = [a.arg for a in node.args.args]
                self.program.add_function(info, node, class_name)
                self._index_func_lock_decls(node, class_name)
                self._walk_body(node.body, class_name=None,
                                prefix="%s%s." % (prefix, node.name))
            else:
                self._index_stmt_lock_decls(node, class_name=None,
                                            scope="<module>")

    def _index_func_lock_decls(self, func_node, class_name) -> None:
        for stmt in ast.walk(func_node):
            self._index_stmt_lock_decls(stmt, class_name, func_node.name)

    def _index_stmt_lock_decls(self, stmt, class_name, scope) -> None:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        value = getattr(stmt, "value", None)
        if value is None:
            return
        decl = self._decl_from_value(value)
        if decl is None:
            return
        declared_name, family = decl
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self" and class_name:
                label = declared_name or "%s.%s%s" % (
                    class_name, target.attr, "[*]" if family else "")
                self.program.attr_locks[(class_name, target.attr)] = \
                    LockDecl(label, family, self.module.path, stmt.lineno)
            elif isinstance(target, ast.Name):
                label = declared_name or "%s.%s.%s%s" % (
                    self.module_key, scope, target.id,
                    "[*]" if family else "")
                self.program.local_locks[
                    (self.module.path, scope, target.id)] = \
                    LockDecl(label, family, self.module.path, stmt.lineno)

    def _decl_from_value(self, value: ast.AST
                         ) -> typing.Optional[typing.Tuple[
                             typing.Optional[str], bool]]:
        """``(declared_name, is_family)`` when ``value`` builds locks."""
        if _is_resource_call(value):
            return (_resource_name_kwarg(value), False)
        if isinstance(value, ast.ListComp) and \
                _is_resource_call(value.elt):
            return (_resource_name_kwarg(value.elt), True)
        if isinstance(value, (ast.List, ast.Tuple)) and value.elts and \
                all(_is_resource_call(e) for e in value.elts):
            return (_resource_name_kwarg(value.elts[0]), True)
        return None


# ----------------------------------------------------------------------
# Pass B: one function body -> a linear abstract-op trace
# ----------------------------------------------------------------------

class _FunctionWalker:
    def __init__(self, program: "Program", module: ModuleContext,
                 info: FunctionInfo, node):
        self.program = program
        self.module = module
        self.info = info
        self.node = node
        self._next_token = 0
        self._held: typing.List[_Acquire] = []
        self._op_index = 0
        #: Loop context stack: (target names, iterable expression).
        self._loops: typing.List[typing.Tuple[typing.Set[str],
                                              ast.AST]] = []
        #: Depth of surrounding try blocks whose finally releases locks.
        self._finally_protected = 0

    # -- emit helpers --------------------------------------------------
    def _emit(self, kind, line, data=None) -> _Op:
        op = _Op(kind=kind, index=self._op_index, line=line, data=data)
        self._op_index += 1
        self.info.ops.append(op)
        return op

    def run(self) -> None:
        self._walk_stmts(self.node.body)
        # Manual acquires still held at the end, never released and not
        # escaping (returned / stashed on an object / appended to a
        # list): the slot leaks on every path, yield or not.
        escaping = self._escaping_names()
        for acquire in self._held:
            if acquire.manual and not acquire.protected and \
                    (acquire.var is None or acquire.var not in escaping):
                self._emit("leak", acquire.line, acquire)

    def _escaping_names(self) -> typing.Set[str]:
        names: typing.Set[str] = set()
        for stmt in ast.walk(self.node):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                for sub in ast.walk(stmt.value):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
            if isinstance(stmt, ast.Assign) and \
                    isinstance(stmt.value, ast.Name):
                for target in stmt.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        names.add(stmt.value.id)
            if isinstance(stmt, ast.Call):
                name = (stmt.func.attr
                        if isinstance(stmt.func, ast.Attribute) else None)
                if name == "append":
                    for arg in stmt.args:
                        if isinstance(arg, ast.Name):
                            names.add(arg.id)
        return names

    # -- statement dispatch --------------------------------------------
    def _walk_stmts(self, stmts) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs get their own FunctionInfo
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_with(stmt)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._walk_for(stmt)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test)
            self._walk_stmts(stmt.body)
            self._walk_stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test)
            self._walk_stmts(stmt.body)
            self._walk_stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._walk_try(stmt)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.info.return_exprs.append(stmt.value)
                self._scan_expr(stmt.value)
            return
        if isinstance(stmt, ast.Assign):
            self._walk_assign(stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value)
            chain = _attr_chain(stmt.target)
            if chain is not None and chain.startswith("self."):
                # Only the write is emitted: an augmented assignment is
                # atomic between yields, and its implicit read flows
                # into nothing but its own write — pairing it with a
                # later write in another branch would be a false
                # positive.  A *plain* read before a yield followed by
                # an augassign write after it (check-then-act) still
                # pairs, as it should.
                self._emit("write", stmt.lineno, chain)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            self._walk_expr_stmt(stmt)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child)

    def _walk_with(self, stmt) -> None:
        acquired: typing.List[_Acquire] = []
        for item in stmt.items:
            expr = item.context_expr
            receiver = self._request_receiver(expr)
            if receiver is not None:
                var = None
                if isinstance(item.optional_vars, ast.Name):
                    var = item.optional_vars.id
                acquired.append(self._acquire(receiver, expr.lineno,
                                              manual=False, var=var))
            else:
                self._scan_expr(expr)
        self._walk_stmts(stmt.body)
        for acquire in reversed(acquired):
            self._release_token(acquire)

    def _walk_for(self, stmt) -> None:
        self._scan_expr(stmt.iter)
        targets: typing.Set[str] = set()
        for sub in ast.walk(stmt.target):
            if isinstance(sub, ast.Name):
                targets.add(sub.id)
        self._loops.append((targets, stmt.iter))
        try:
            self._walk_stmts(stmt.body)
        finally:
            self._loops.pop()
        self._walk_stmts(stmt.orelse)
        # Locks acquired per-iteration and not released inside the loop
        # remain on the held stack (the daemon's _acquire_shards shape)
        # until their release op or the end of a protecting try.

    def _walk_try(self, stmt: ast.Try) -> None:
        protects = self._finally_releases(stmt.finalbody)
        if protects:
            self._finally_protected += 1
        depth_before = len(self._held)
        try:
            self._walk_stmts(stmt.body)
        finally:
            if protects:
                self._finally_protected -= 1
        for handler in stmt.handlers:
            self._walk_stmts(handler.body)
        self._walk_stmts(stmt.orelse)
        self._walk_stmts(stmt.finalbody)
        if protects:
            # The finally released whatever the try body acquired.
            while len(self._held) > depth_before:
                self._release_token(self._held[-1])

    def _finally_releases(self, finalbody) -> bool:
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "release":
                    return True
        return False

    def _walk_assign(self, stmt: ast.Assign) -> None:
        receiver = self._request_receiver(stmt.value)
        if receiver is not None and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            self._acquire(receiver, stmt.lineno, manual=True,
                          var=stmt.targets[0].id)
            return
        self._scan_expr(stmt.value)
        for target in stmt.targets:
            chain = _attr_chain(target)
            if chain is not None and chain.startswith("self."):
                self._emit("write", stmt.lineno, chain)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    chain = _attr_chain(element)
                    if chain is not None and chain.startswith("self."):
                        self._emit("write", stmt.lineno, chain)

    def _walk_expr_stmt(self, stmt: ast.Expr) -> None:
        value = stmt.value
        released = self._release_var(value)
        if released is not None:
            for acquire in reversed(self._held):
                if released == "*" or acquire.var == released:
                    self._release_token(acquire)
                    break
            return
        self._scan_expr(value)

    def _release_var(self, node: ast.AST) -> typing.Optional[str]:
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "release":
            if node.args and isinstance(node.args[0], ast.Name):
                return node.args[0].id
            return "*"
        return None

    # -- expression scanning (calls, yields, self.* reads) -------------
    def _scan_expr(self, expr: ast.AST) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
                self.info.has_yield = True
                self._emit("yield", getattr(node, "lineno", 1))
            elif isinstance(node, ast.Call):
                self._scan_call(node)
            elif isinstance(node, (ast.Attribute, ast.Subscript)) and \
                    isinstance(getattr(node, "ctx", None), ast.Load):
                chain = _attr_chain(node)
                if chain is not None and chain.startswith("self.") and \
                        not self._is_callee(node):
                    self._emit("read", getattr(node, "lineno", 1), chain)

    def _is_callee(self, node: ast.AST) -> bool:
        """Is this attribute the callee of a Call (``self.m(...)``)?
        The bound method object itself is not shared state."""
        parent = self.module.parents.get(node)
        return isinstance(parent, ast.Call) and parent.func is node

    def _scan_call(self, node: ast.Call) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name is None:
            return
        if name == "request" and isinstance(func, ast.Attribute):
            # A .request() in expression position (yield X.request() in
            # toy code): scoped to the statement, no held-stack change.
            return
        if name in ("process", "Process"):
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    target = arg.func
                    spawned = (target.id if isinstance(target, ast.Name)
                               else target.attr
                               if isinstance(target, ast.Attribute)
                               else None)
                    if spawned is not None:
                        self.info.spawn_targets.append(spawned)
        receiver = None
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            receiver = func.value.id
        self.info.calls.append((name, receiver,
                                getattr(node, "lineno", 1)))
        self.info.call_sites.append(
            (name, list(node.args),
             {kw.arg: kw.value for kw in node.keywords
              if kw.arg is not None}))
        self._emit("call", getattr(node, "lineno", 1),
                   (name, receiver, tuple(a.label for a in self._held)))

    # -- acquires ------------------------------------------------------
    def _request_receiver(self, expr: ast.AST
                          ) -> typing.Optional[ast.AST]:
        """The lock expression of an ``X.request()`` call, else None."""
        if isinstance(expr, ast.Call) and \
                isinstance(expr.func, ast.Attribute) and \
                expr.func.attr == "request" and not expr.args:
            return expr.func.value
        return None

    def _acquire(self, receiver: ast.AST, line: int, manual: bool,
                 var: typing.Optional[str]) -> _Acquire:
        decl = self._resolve_lock(receiver)
        loop_ascending: typing.Optional[bool] = None
        const_index: typing.Optional[int] = None
        if isinstance(receiver, ast.Subscript):
            key = receiver.slice
            if isinstance(key, ast.Constant) and \
                    isinstance(key.value, int):
                const_index = key.value
            index_names = {sub.id for sub in ast.walk(receiver.slice)
                           if isinstance(sub, ast.Name)}
            if self._loops and index_names:
                for loop_targets, iterable in reversed(self._loops):
                    if index_names & loop_targets:
                        orderedness = self.program.orderedness_of(
                            iterable, self.info)
                        loop_ascending = orderedness == _ASC
                        break
        token = self._next_token
        self._next_token += 1
        acquire = _Acquire(
            token=token, label=decl.label, family=decl.family,
            line=line, manual=manual,
            protected=self._finally_protected > 0,
            loop_ascending=loop_ascending, var=var,
            const_index=const_index)
        self._emit("acquire", line, acquire)
        self._held.append(acquire)
        return acquire

    def _release_token(self, acquire: _Acquire) -> None:
        if acquire in self._held:
            self._held.remove(acquire)
            self._emit("release", acquire.line, acquire)

    def _resolve_lock(self, receiver: ast.AST) -> LockDecl:
        base = receiver
        family = False
        if isinstance(receiver, ast.Subscript):
            base = receiver.value
            family = True
        if isinstance(base, ast.Attribute) and \
                isinstance(base.value, ast.Name) and \
                base.value.id == "self" and self.info.class_name:
            decl = self.program.attr_locks.get(
                (self.info.class_name, base.attr))
            if decl is not None:
                return decl
            label = "%s.%s%s" % (self.info.class_name, base.attr,
                                 "[*]" if family else "")
            return LockDecl(label, family, self.info.path, self.info.line)
        if isinstance(base, ast.Name):
            decl = self.program.local_locks.get(
                (self.info.path, self.info.name, base.id))
            if decl is None:
                decl = self.program.local_locks.get(
                    (self.info.path, "<module>", base.id))
            if decl is not None:
                if family and not decl.family:
                    return LockDecl(decl.label + "[*]", True,
                                    decl.path, decl.line)
                return decl
            label = "%s.%s%s" % (self.info.qualname, base.id,
                                 "[*]" if family else "")
            return LockDecl(label, family, self.info.path, self.info.line)
        chain = _attr_chain(base) or "<lock>"
        return LockDecl("%s%s" % (chain, "[*]" if family else ""),
                        family, self.info.path, self.info.line)


# ----------------------------------------------------------------------
# The program-level analysis
# ----------------------------------------------------------------------

class Program:
    """Whole-program state: indexes, summaries, the order graph."""

    def __init__(self, modules: typing.Sequence[ModuleContext]):
        self.modules = list(modules)
        self.functions: typing.List[FunctionInfo] = []
        self._nodes: typing.Dict[str, ast.AST] = {}
        self.by_name: typing.Dict[str, typing.List[FunctionInfo]] = {}
        self.by_class: typing.Dict[typing.Tuple[str, str],
                                   FunctionInfo] = {}
        self.attr_locks: typing.Dict[typing.Tuple[str, str],
                                     LockDecl] = {}
        self.local_locks: typing.Dict[typing.Tuple[str, str, str],
                                      LockDecl] = {}
        self.graph = LockOrderGraph()
        self._module_by_path = {m.path: m for m in self.modules}

    def add_function(self, info: FunctionInfo, node, class_name) -> None:
        self.functions.append(info)
        self._nodes[info.qualname] = node
        self.by_name.setdefault(info.name, []).append(info)
        if class_name:
            self.by_class[(class_name, info.name)] = info

    # -- call resolution -----------------------------------------------
    #: Names never resolved through the global index: lock verbs (they
    #: are modelled as ops, not calls) and container/string plumbing
    #: whose global namesakes would fabricate edges.
    _UNRESOLVED = frozenset({"request", "release", "succeed", "fail",
                             "append", "get", "pop", "items", "keys",
                             "values", "add", "discard", "remove",
                             "sort", "join", "split", "format",
                             "timeout", "event"})

    def resolve_call(self, caller: FunctionInfo, name: str,
                     receiver: typing.Optional[str]
                     ) -> typing.List[FunctionInfo]:
        if name in self._UNRESOLVED:
            return []
        if receiver == "self" and caller.class_name:
            hit = self.by_class.get((caller.class_name, name))
            if hit is not None:
                return [hit]
        candidates = self.by_name.get(name, [])
        same_module = [c for c in candidates
                       if c.module_key == caller.module_key]
        if same_module:
            return same_module
        return candidates

    # -- orderedness ---------------------------------------------------
    def orderedness_of(self, expr: ast.AST,
                       context: FunctionInfo) -> str:
        """Is ``expr`` provably an ascending iterable?"""
        if isinstance(expr, ast.Call):
            func = expr.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name in ("sorted", "range"):
                return _ASC
            if name in ("tuple", "list", "enumerate") and expr.args:
                return self.orderedness_of(expr.args[0], context)
            receiver = (func.value.id
                        if isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name) else None)
            if name is not None and name not in self._UNRESOLVED:
                for callee in self.resolve_call(context, name, receiver):
                    if callee.return_orderedness == _ASC:
                        return _ASC
            return _UNKNOWN
        if isinstance(expr, (ast.Tuple, ast.List)):
            if len(expr.elts) <= 1:
                return _ASC
            values = []
            for element in expr.elts:
                if not (isinstance(element, ast.Constant)
                        and isinstance(element.value, (int, float))):
                    return _UNKNOWN
                values.append(element.value)
            return _ASC if values == sorted(values) else _UNKNOWN
        if isinstance(expr, ast.Constant):
            return _ASC  # None / scalars: nothing to mis-order
        if isinstance(expr, ast.Name):
            local = context.local_orderedness.get(expr.id)
            if local is not None:
                return local
            return context.param_orderedness.get(expr.id, _UNKNOWN)
        return _UNKNOWN

    def _run_orderedness_fixpoint(self) -> None:
        """Propagate ASC through local assignments, returns and
        call-site arguments until stable.  The lattice has two points,
        so a handful of rounds always suffices."""
        for _iteration in range(6):
            changed = False
            # Local orderedness, recomputed fresh: a reassigned name is
            # the meet over all its assignments (flow-insensitive).
            for info in self.functions:
                table: typing.Dict[str, str] = {}
                node = self._nodes[info.qualname]
                for stmt in ast.walk(node):
                    if isinstance(stmt, ast.Assign) and \
                            len(stmt.targets) == 1 and \
                            isinstance(stmt.targets[0], ast.Name):
                        target = stmt.targets[0].id
                        self._meet(table, target,
                                   self.orderedness_of(stmt.value, info))
                if table != info.local_orderedness:
                    info.local_orderedness = table
                    changed = True
            # Return orderedness.
            for info in self.functions:
                if not info.return_exprs:
                    continue
                orderedness = _ASC
                for expr in info.return_exprs:
                    if self.orderedness_of(expr, info) != _ASC:
                        orderedness = _UNKNOWN
                        break
                if orderedness != info.return_orderedness:
                    info.return_orderedness = orderedness
                    changed = True
            # Parameter orderedness from every resolvable call site.
            incoming: typing.Dict[typing.Tuple[str, str], str] = {}
            for caller in self.functions:
                for name, args, kwargs in caller.call_sites:
                    for callee in self.resolve_call(caller, name, None):
                        params = callee.param_names
                        offset = 1 if params[:1] == ["self"] else 0
                        for position, arg in enumerate(args):
                            index = position + offset
                            if index >= len(params):
                                break
                            self._meet(incoming,
                                       (callee.qualname, params[index]),
                                       self.orderedness_of(arg, caller))
                        for keyword in sorted(kwargs):
                            if keyword in params:
                                self._meet(
                                    incoming,
                                    (callee.qualname, keyword),
                                    self.orderedness_of(
                                        kwargs[keyword], caller))
            for info in self.functions:
                for param in info.param_names:
                    value = incoming.get((info.qualname, param))
                    if value is None:
                        continue
                    if info.param_orderedness.get(param) != value:
                        info.param_orderedness[param] = value
                        changed = True
            if not changed:
                break

    @staticmethod
    def _meet(table, key, value) -> None:
        current = table.get(key)
        if current is None:
            table[key] = value
        elif current == _ASC and value != _ASC:
            table[key] = _UNKNOWN

    # -- summaries and edges -------------------------------------------
    def _run_acquire_fixpoint(self) -> None:
        """Transitive acquired-lock sets per function."""
        for info in self.functions:
            labels = []
            for op in info.ops:
                if op.kind == "acquire" and op.data.label not in labels:
                    labels.append(op.data.label)
            info.acquired_labels = labels
        for _iteration in range(12):
            changed = False
            for info in self.functions:
                for name, receiver, _line in info.calls:
                    for callee in self.resolve_call(info, name, receiver):
                        for label in callee.acquired_labels:
                            if label not in info.acquired_labels:
                                info.acquired_labels.append(label)
                                changed = True
            if not changed:
                break

    def build_graph(self) -> None:
        for info in self.functions:
            held: typing.List[_Acquire] = []
            for op in info.ops:
                if op.kind == "acquire":
                    acquire = op.data
                    self.graph.add_node(acquire.label)
                    for holder in held:
                        if holder.label == acquire.label:
                            ascending = self._pair_ascending(holder,
                                                             acquire)
                        else:
                            ascending = False
                        self.graph.add_edge(OrderEdge(
                            src=holder.label, dst=acquire.label,
                            ascending=ascending,
                            path=info.path, line=op.line,
                            via=info.qualname))
                    if acquire.loop_ascending is not None and \
                            acquire.family:
                        # Per-iteration re-acquire of the same family.
                        self.graph.add_edge(OrderEdge(
                            src=acquire.label, dst=acquire.label,
                            ascending=bool(acquire.loop_ascending),
                            path=info.path, line=op.line,
                            via=info.qualname))
                    held.append(acquire)
                elif op.kind == "release":
                    if op.data in held:
                        held.remove(op.data)
                elif op.kind == "call":
                    name, receiver, held_labels = op.data
                    if not held_labels:
                        continue
                    for callee in self.resolve_call(info, name, receiver):
                        for label in callee.acquired_labels:
                            for holder_label in held_labels:
                                self.graph.add_edge(OrderEdge(
                                    src=holder_label, dst=label,
                                    ascending=False,
                                    path=info.path, line=op.line,
                                    via="%s -> %s" % (info.qualname,
                                                      callee.qualname)))

    @staticmethod
    def _pair_ascending(holder: _Acquire, acquire: _Acquire) -> bool:
        """Is a direct same-family nested acquire provably in ascending
        index order?"""
        if acquire.loop_ascending:
            return True
        if holder.const_index is not None and \
                acquire.const_index is not None:
            return holder.const_index < acquire.const_index
        return False

    # -- spawn reachability --------------------------------------------
    def spawn_reachable(self) -> typing.Dict[str, typing.List[str]]:
        """Map qualname -> witnessing call chain from a process spawn
        site (root first)."""
        roots: typing.List[FunctionInfo] = []
        for info in self.functions:
            for target in info.spawn_targets:
                for callee in self.resolve_call(info, target, None):
                    if callee not in roots:
                        roots.append(callee)
        chains: typing.Dict[str, typing.List[str]] = {}
        frontier: typing.List[FunctionInfo] = []
        for root in roots:
            chains[root.qualname] = [root.qualname]
            frontier.append(root)
        cursor = 0
        while cursor < len(frontier):
            current = frontier[cursor]
            cursor += 1
            for name, receiver, _line in current.calls:
                for callee in self.resolve_call(current, name, receiver):
                    if callee.qualname in chains:
                        continue
                    chains[callee.qualname] = \
                        chains[current.qualname] + [callee.qualname]
                    frontier.append(callee)
        return chains

    # -- findings ------------------------------------------------------
    def findings(self) -> typing.List[Finding]:
        found: typing.List[Finding] = []
        found.extend(self._deadlock_findings())
        found.extend(self._leak_findings())
        found.extend(self._stale_rmw_findings())
        return found

    def _deadlock_findings(self) -> typing.List[Finding]:
        found = []
        for cycle in self.graph.cycles():
            if not cycle:
                continue
            first = cycle[0]
            if len(cycle) == 1 and first.src == first.dst:
                message = ("unordered multi-acquire within lock family "
                           "%s: the acquisition order is not provably "
                           "ascending, so two processes can deadlock "
                           "taking members in opposite orders (in %s)"
                           % (first.src, first.via))
            else:
                chain = " -> ".join([edge.src for edge in cycle]
                                    + [cycle[0].src])
                witnesses = "; ".join(
                    "%s->%s at %s:%d (%s)" % (e.src, e.dst, e.path,
                                              e.line, e.via)
                    for e in cycle)
                message = ("potential deadlock: lock-order cycle %s "
                           "[%s]" % (chain, witnesses))
            found.append(Finding(
                rule_id="RPR101", severity="error", path=first.path,
                line=first.line, col=0, message=message))
        return found

    def _leak_findings(self) -> typing.List[Finding]:
        found = []
        for info in self.functions:
            held: typing.List[_Acquire] = []
            reported: typing.Set[int] = set()
            for op in info.ops:
                if op.kind == "acquire":
                    held.append(op.data)
                elif op.kind == "release":
                    if op.data in held:
                        held.remove(op.data)
                elif op.kind == "yield":
                    for acquire in held:
                        if acquire.manual and not acquire.protected and \
                                acquire.token not in reported:
                            reported.add(acquire.token)
                            found.append(Finding(
                                rule_id="RPR102", severity="error",
                                path=info.path, line=acquire.line, col=0,
                                message=(
                                    "lock %s acquired manually and held "
                                    "across a yield with no with-block "
                                    "or try/finally release: an "
                                    "exception at the yield leaks the "
                                    "slot forever (in %s)"
                                    % (acquire.label, info.qualname))))
                elif op.kind == "leak":
                    acquire = op.data
                    if acquire.token not in reported:
                        reported.add(acquire.token)
                        found.append(Finding(
                            rule_id="RPR102", severity="error",
                            path=info.path, line=acquire.line, col=0,
                            message=(
                                "lock %s acquired manually but never "
                                "released in %s (and the request does "
                                "not escape): the slot leaks on every "
                                "path" % (acquire.label, info.qualname))))
        return found

    def _stale_rmw_findings(self) -> typing.List[Finding]:
        chains = self.spawn_reachable()
        found = []
        for info in self.functions:
            if not info.has_yield or info.qualname not in chains:
                continue
            # Lock coverage intervals over op indices.
            intervals: typing.List[typing.List[int]] = []
            open_by_token: typing.Dict[int, typing.List[int]] = {}
            for op in info.ops:
                if op.kind == "acquire":
                    span = [op.index, len(info.ops)]
                    open_by_token[op.data.token] = span
                    intervals.append(span)
                elif op.kind == "release":
                    span = open_by_token.get(op.data.token)
                    if span is not None:
                        span[1] = op.index
            reads: typing.Dict[str, typing.List[int]] = {}
            yields: typing.List[int] = []
            reported: typing.Set[typing.Tuple[str, int]] = set()
            for op in info.ops:
                if op.kind == "read":
                    reads.setdefault(op.data, []).append(op.index)
                elif op.kind == "yield":
                    yields.append(op.index)
                elif op.kind == "write":
                    location = op.data
                    write_index = op.index
                    hazard = False
                    for read_index in reads.get(location, ()):
                        if read_index >= write_index:
                            break
                        if not any(read_index < y < write_index
                                   for y in yields):
                            continue
                        covered = any(start <= read_index
                                      and end >= write_index
                                      for start, end in intervals)
                        if not covered:
                            hazard = True
                            break
                    if not hazard:
                        continue
                    key = (location, op.line)
                    if key in reported:
                        continue
                    reported.add(key)
                    chain = " -> ".join(chains[info.qualname])
                    found.append(Finding(
                        rule_id="RPR103", severity="error",
                        path=info.path, line=op.line, col=0,
                        message=(
                            "stale read-modify-write on shared state "
                            "%s: read before a yield, written after it "
                            "with no lock held across — a concurrent "
                            "process interleaving at the yield is "
                            "clobbered (process chain: %s)"
                            % (location, chain))))
        return found

    # -- driver --------------------------------------------------------
    def analyze(self) -> None:
        for module in self.modules:
            _ModuleIndexer(self, module).run()
        # The first walk collects call sites; the orderedness fixpoint
        # needs them; loop-acquire ascending flags need the fixpoint —
        # so: walk, solve, re-walk with orderedness known.
        for info in self.functions:
            module = self._module_by_path[info.path]
            _FunctionWalker(self, module, info,
                            self._nodes[info.qualname]).run()
        self._run_orderedness_fixpoint()
        for info in self.functions:
            info.reset_trace()
            module = self._module_by_path[info.path]
            _FunctionWalker(self, module, info,
                            self._nodes[info.qualname]).run()
        self._run_acquire_fixpoint()
        self.build_graph()


# ----------------------------------------------------------------------
# Report and drivers
# ----------------------------------------------------------------------

@dataclasses.dataclass
class RaceReport:
    """Everything ``repro races`` prints/serialises."""

    findings: typing.List[Finding]
    graph: LockOrderGraph
    modules: int
    functions: int

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(self.graph.render())
        if self.findings:
            by_rule: typing.Dict[str, int] = {}
            for finding in self.findings:
                by_rule[finding.rule_id] = \
                    by_rule.get(finding.rule_id, 0) + 1
            summary = ", ".join("%s x%d" % (rule_id, count)
                                for rule_id, count
                                in sorted(by_rule.items()))
            lines.append("%d finding(s): %s" % (len(self.findings),
                                                summary))
        else:
            lines.append("0 findings across %d module(s), "
                         "%d function(s)" % (self.modules,
                                             self.functions))
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "findings": [dataclasses.asdict(f) for f in self.findings],
            "graph": self.graph.to_baseline(),
            "modules": self.modules,
            "functions": self.functions,
        }


def analyze_paths(paths: typing.Iterable[typing.Union[str, pathlib.Path]]
                  ) -> RaceReport:
    """Run the whole-program analysis over files and directories."""
    files: typing.List[pathlib.Path] = []
    for path in paths:
        path = pathlib.Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    modules: typing.List[ModuleContext] = []
    findings: typing.List[Finding] = []
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        try:
            modules.append(ModuleContext(str(file_path), source))
        except SyntaxError as exc:
            findings.append(Finding(
                rule_id="RPR999", severity="error", path=str(file_path),
                line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message="syntax error: %s" % exc.msg))
    program = Program(modules)
    program.analyze()
    raw = program.findings()
    by_module = {module.path: module for module in modules}
    grouped: typing.Dict[str, typing.List[Finding]] = {}
    for finding in raw:
        grouped.setdefault(finding.path, []).append(finding)
    for path in sorted(grouped):
        module = by_module.get(path)
        if module is None:
            findings.extend(grouped[path])
        else:
            findings.extend(apply_suppressions(module, grouped[path]))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return RaceReport(findings=findings, graph=program.graph,
                      modules=len(modules),
                      functions=len(program.functions))


def analyze_source(source: str, path: str = "<string>") -> RaceReport:
    """Single-module convenience wrapper (tests, fixtures)."""
    try:
        module = ModuleContext(path, source)
    except SyntaxError as exc:
        finding = Finding(
            rule_id="RPR999", severity="error", path=path,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message="syntax error: %s" % exc.msg)
        return RaceReport(findings=[finding], graph=LockOrderGraph(),
                          modules=1, functions=0)
    program = Program([module])
    program.analyze()
    findings = apply_suppressions(module, program.findings())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return RaceReport(findings=findings, graph=program.graph,
                      modules=1, functions=len(program.functions))


def load_baseline(path: typing.Union[str, pathlib.Path]) -> dict:
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def save_baseline(report: RaceReport,
                  path: typing.Union[str, pathlib.Path]) -> None:
    pathlib.Path(path).write_text(
        json.dumps(report.graph.to_baseline(), indent=2, sort_keys=True)
        + "\n", encoding="utf-8")
