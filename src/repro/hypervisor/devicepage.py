"""noxs device memory pages.

The core noxs mechanism (§5.1): the hypervisor keeps, for each VM, one
special 4 KiB memory page recording the VM's devices — backend domain,
event channel, grant reference — so the guest can bootstrap its front-end
drivers *without* talking to the XenStore.  The page is shared read-only
with the guest; only Dom0 may request modifications (via hypercall).

We implement the page as a real packed binary structure so that the
reproduction exercises the same serialize/deserialize path a C guest would:

* header: ``magic u32 | version u16 | count u16`` + 8 bytes reserved;
* entries: 32-byte records,
  ``type u8 | state u8 | backend_domid u16 | evtchn_port u32 |
  grant_ref u32 | mac 6s`` + 14 bytes reserved.
"""

from __future__ import annotations

import struct
import typing

PAGE_SIZE = 4096
MAGIC = 0x4E4F5853  # "NOXS"
VERSION = 1

_HEADER_FMT = "<IHH8x"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_ENTRY_FMT = "<BBHII6s14x"
_ENTRY_SIZE = struct.calcsize(_ENTRY_FMT)
MAX_ENTRIES = (PAGE_SIZE - _HEADER_SIZE) // _ENTRY_SIZE

#: Device type codes stored in the page.
DEV_NONE = 0
DEV_VIF = 1
DEV_VBD = 2
DEV_SYSCTL = 3
DEV_CONSOLE = 4

#: Device states (mirrors XenbusState, collapsed).
STATE_INITIALISING = 1
STATE_CONNECTED = 4
STATE_CLOSED = 6


class DevicePageError(RuntimeError):
    """Malformed page access (bad index, full page, bad magic...)."""


class DeviceEntry(typing.NamedTuple):
    """One decoded device record."""

    dev_type: int
    state: int
    backend_domid: int
    evtchn_port: int
    grant_ref: int
    mac: bytes  # 6 bytes; zeros for non-network devices

    def pack(self) -> bytes:
        """Encode to the 32-byte on-page format."""
        if len(self.mac) != 6:
            raise DevicePageError("mac must be exactly 6 bytes")
        return struct.pack(_ENTRY_FMT, self.dev_type, self.state,
                           self.backend_domid, self.evtchn_port,
                           self.grant_ref, self.mac)

    @classmethod
    def unpack(cls, raw: bytes) -> "DeviceEntry":
        """Decode from the 32-byte on-page format."""
        return cls(*struct.unpack(_ENTRY_FMT, raw))


class DevicePage:
    """A 4 KiB packed device page owned by the hypervisor."""

    def __init__(self):
        self._buf = bytearray(PAGE_SIZE)
        struct.pack_into(_HEADER_FMT, self._buf, 0, MAGIC, VERSION, 0)
        #: Hypervisor-side write counter (hypercalls issued against page).
        self.writes = 0

    # ------------------------------------------------------------------
    # Header
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live entries."""
        _magic, _version, count = struct.unpack_from(_HEADER_FMT, self._buf, 0)
        return count

    def _set_count(self, count: int) -> None:
        struct.pack_into(_HEADER_FMT, self._buf, 0, MAGIC, VERSION, count)

    # ------------------------------------------------------------------
    # Entry access
    # ------------------------------------------------------------------
    def _offset(self, index: int) -> int:
        if not 0 <= index < MAX_ENTRIES:
            raise DevicePageError("entry index %d out of range" % index)
        return _HEADER_SIZE + index * _ENTRY_SIZE

    def add(self, entry: DeviceEntry) -> int:
        """Append a device entry; returns its index."""
        for index in range(MAX_ENTRIES):
            offset = self._offset(index)
            if self._buf[offset] == DEV_NONE:
                self._buf[offset:offset + _ENTRY_SIZE] = entry.pack()
                self._set_count(self.count + 1)
                self.writes += 1
                return index
        raise DevicePageError("device page full (%d entries)" % MAX_ENTRIES)

    def read(self, index: int) -> DeviceEntry:
        """Decode the entry at ``index``."""
        offset = self._offset(index)
        entry = DeviceEntry.unpack(bytes(self._buf[offset:offset +
                                                   _ENTRY_SIZE]))
        if entry.dev_type == DEV_NONE:
            raise DevicePageError("entry %d is empty" % index)
        return entry

    def update_state(self, index: int, state: int) -> None:
        """Rewrite just the state byte of an entry."""
        self.read(index)  # validates occupancy
        self._buf[self._offset(index) + 1] = state
        self.writes += 1

    def remove(self, index: int) -> None:
        """Clear an entry (device destruction)."""
        self.read(index)  # validates occupancy
        offset = self._offset(index)
        self._buf[offset:offset + _ENTRY_SIZE] = bytes(_ENTRY_SIZE)
        self._set_count(self.count - 1)
        self.writes += 1

    def entries(self) -> typing.List[typing.Tuple[int, DeviceEntry]]:
        """All live entries as ``(index, entry)`` pairs."""
        found = []
        for index in range(MAX_ENTRIES):
            offset = self._offset(index)
            if self._buf[offset] != DEV_NONE:
                found.append((index, DeviceEntry.unpack(
                    bytes(self._buf[offset:offset + _ENTRY_SIZE]))))
        return found

    def readonly_view(self) -> bytes:
        """The guest-visible mapping: an immutable snapshot of the page."""
        return bytes(self._buf)

    @staticmethod
    def parse(view: bytes) -> typing.List[DeviceEntry]:
        """Guest-side parser: decode all live entries from a mapped page."""
        if len(view) != PAGE_SIZE:
            raise DevicePageError("device page must be %d bytes" % PAGE_SIZE)
        magic, version, count = struct.unpack_from(_HEADER_FMT, view, 0)
        if magic != MAGIC:
            raise DevicePageError("bad magic %#x" % magic)
        if version != VERSION:
            raise DevicePageError("unsupported version %d" % version)
        entries = []
        for index in range(MAX_ENTRIES):
            offset = _HEADER_SIZE + index * _ENTRY_SIZE
            if view[offset] != DEV_NONE:
                entries.append(DeviceEntry.unpack(
                    view[offset:offset + _ENTRY_SIZE]))
        if len(entries) != count:
            raise DevicePageError(
                "header count %d does not match %d live entries"
                % (count, len(entries)))
        return entries
