"""Xen-like hypervisor substrate: domains, memory, event channels, grants,
noxs device pages and vCPU scheduling."""

from .devicepage import (DEV_CONSOLE, DEV_SYSCTL, DEV_VBD, DEV_VIF,
                         MAX_ENTRIES, PAGE_SIZE, STATE_CLOSED,
                         STATE_CONNECTED, STATE_INITIALISING, DeviceEntry,
                         DevicePage, DevicePageError)
from .domain import Domain, DomainState, DomainStateError, ShutdownReason
from .events import Channel, EventChannelError, EventChannelTable
from .grants import GrantError, GrantTable
from .hypervisor import DOM0_ID, Hypervisor, HypervisorError
from .memory import Extent, MemoryAllocator, OutOfMemoryError
from .pagesharing import SharedImagePool, SharingPolicy
from .rings import RingFullError, RingPair, SharedRing
from .scheduler import HostScheduler

__all__ = [
    "Channel",
    "DEV_CONSOLE",
    "DEV_SYSCTL",
    "DEV_VBD",
    "DEV_VIF",
    "DOM0_ID",
    "DeviceEntry",
    "DevicePage",
    "DevicePageError",
    "Domain",
    "DomainState",
    "DomainStateError",
    "EventChannelError",
    "EventChannelTable",
    "Extent",
    "GrantError",
    "GrantTable",
    "HostScheduler",
    "Hypervisor",
    "HypervisorError",
    "MAX_ENTRIES",
    "MemoryAllocator",
    "OutOfMemoryError",
    "PAGE_SIZE",
    "STATE_CLOSED",
    "STATE_CONNECTED",
    "STATE_INITIALISING",
    "RingFullError",
    "RingPair",
    "SharedRing",
    "SharedImagePool",
    "SharingPolicy",
    "ShutdownReason",
]
