"""vCPU placement and CPU accounting.

The paper's experiments pin Dom0 to dedicated cores and assign guest vCPUs
to the remaining cores round-robin (§6.1: "one core assigned to Dom0 and
the remaining three cores assigned to the VMs in a round-robin fashion").
:class:`HostScheduler` reproduces that split and owns the mapping from
domains to :class:`~repro.sim.cpu.PSCore` instances.
"""

from __future__ import annotations

import typing

from ..sim.cpu import PSCore
from .domain import Domain

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


class HostScheduler:
    """Splits physical cores between Dom0 and guests; places vCPUs."""

    def __init__(self, sim: "Simulator", total_cores: int, dom0_cores: int,
                 rate: float = 1.0):
        if total_cores < 2:
            raise ValueError("need at least 2 cores (Dom0 + guests)")
        if not 1 <= dom0_cores < total_cores:
            raise ValueError("dom0_cores must leave at least one guest core")
        self.sim = sim
        self.dom0_cores = [PSCore(sim, rate=rate, name="dom0-cpu%d" % i)
                           for i in range(dom0_cores)]
        self.guest_cores = [PSCore(sim, rate=rate, name="guest-cpu%d" % i)
                            for i in range(total_cores - dom0_cores)]
        self._next_guest_core = 0
        self._next_dom0_core = 0
        self._residents: typing.Dict[PSCore, int] = {}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, domain: Domain) -> None:
        """Assign the domain's vCPUs to guest cores round-robin."""
        domain.vcpu_cores = []
        for _ in range(domain.vcpus):
            core = self.guest_cores[self._next_guest_core
                                    % len(self.guest_cores)]
            self._next_guest_core += 1
            domain.vcpu_cores.append(core)

    def unplace(self, domain: Domain) -> None:
        """Release the domain's vCPU placements (on destroy)."""
        self.mark_stopped(domain)
        domain.vcpu_cores = []

    def mark_running(self, domain: Domain) -> None:
        """Count the domain's vCPUs as schedulable on their cores.

        Only *running* domains contend for timeslices; paused domains and
        pooled shells do not.
        """
        if domain.sched_counted:
            return
        domain.sched_counted = True
        for core in domain.vcpu_cores:
            self._residents[core] = self._residents.get(core, 0) + 1

    def mark_stopped(self, domain: Domain) -> None:
        """Remove the domain's vCPUs from the runnable population."""
        if not domain.sched_counted:
            return
        domain.sched_counted = False
        for core in domain.vcpu_cores:
            count = self._residents.get(core, 0)
            if count:
                self._residents[core] = count - 1

    def residents_on(self, core: PSCore) -> int:
        """Number of running domains with a vCPU on ``core``."""
        return self._residents.get(core, 0)

    def dom0_core(self) -> PSCore:
        """Pick a Dom0 core round-robin (for toolstack work)."""
        core = self.dom0_cores[self._next_dom0_core % len(self.dom0_cores)]
        self._next_dom0_core += 1
        return core

    # ------------------------------------------------------------------
    # Guest CPU demand
    # ------------------------------------------------------------------
    def run_on_domain(self, domain: Domain, work_ms: float):
        """Execute ``work_ms`` of guest CPU work on the domain's first vCPU.

        Returns the completion event.  Used for guest boot work, compute
        jobs, and similar in-guest activity.
        """
        if not domain.vcpu_cores:
            raise RuntimeError("domain %d has no placed vCPUs" % domain.domid)
        return domain.vcpu_cores[0].execute(work_ms)

    def set_idle_load(self, domain: Domain, weight: float) -> None:
        """Set the fluid background CPU weight this domain exerts.

        Idle Debian guests run services; idle Tinyx guests run occasional
        background tasks; unikernels and paused domains exert none.  The
        weight is spread over the domain's vCPU cores.
        """
        if not domain.vcpu_cores:
            raise RuntimeError("domain %d has no placed vCPUs" % domain.domid)
        per_core_old = domain.background_weight / len(domain.vcpu_cores)
        per_core_new = weight / len(domain.vcpu_cores)
        for core in domain.vcpu_cores:
            if per_core_old:
                core.remove_background(per_core_old)
            if per_core_new:
                core.add_background(per_core_new)
        domain.background_weight = weight

    def clear_idle_load(self, domain: Domain) -> None:
        """Remove any background weight (on pause/suspend/destroy)."""
        if domain.background_weight and domain.vcpu_cores:
            per_core = domain.background_weight / len(domain.vcpu_cores)
            for core in domain.vcpu_cores:
                core.remove_background(per_core)
        domain.background_weight = 0.0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Mean instantaneous utilization over *all* cores, in [0, 1]."""
        cores = self.dom0_cores + self.guest_cores
        return sum(core.utilization() for core in cores) / len(cores)

    def guest_utilization(self) -> float:
        """Mean instantaneous utilization of the guest cores."""
        return (sum(core.utilization() for core in self.guest_cores)
                / len(self.guest_cores))

    def busy_time(self) -> float:
        """Total busy ms across all cores."""
        return sum(core.busy_time()
                   for core in self.dom0_cores + self.guest_cores)
