"""Page sharing / memory deduplication — the §9 extension.

"LightVM does not use page sharing between VMs, assuming the worst-case
scenario where all pages are different.  One avenue of optimization is to
use memory de-duplication (as proposed by SnowFlock) to reduce the
overall memory footprint."

This module implements that avenue: guests booted from the same image
share the image's read-only portion (kernel text, read-only data, the
initramfs content before copy-on-write divergence).  The first instance
of an image pays for the shared master copy; every further instance
reserves only its private writable set plus a configurable
copy-on-write divergence fraction.

The model plugs *around* the plain :class:`MemoryAllocator`: the physical
reservation for instance k of an image shrinks, and the ledger exposes
how much memory deduplication saved — which is what the ablation
benchmark reports against Fig 14.
"""

from __future__ import annotations

import dataclasses
import typing

from .memory import MemoryAllocator


@dataclasses.dataclass
class SharingPolicy:
    """How much of a guest's memory is shareable."""

    #: Fraction of the image-derived memory that is read-only and
    #: dedup-able across instances of the same image (kernel text +
    #: page-cache of the initramfs).
    shareable_fraction: float = 0.55
    #: Fraction of the shareable set that diverges anyway over time
    #: (copy-on-write breaks, per instance).
    cow_divergence: float = 0.08

    def __post_init__(self):
        if not 0.0 <= self.shareable_fraction <= 1.0:
            raise ValueError("shareable_fraction must be in [0, 1]")
        if not 0.0 <= self.cow_divergence <= 1.0:
            raise ValueError("cow_divergence must be in [0, 1]")


class SharedImagePool:
    """Deduplicated reservations keyed by image name."""

    def __init__(self, memory: MemoryAllocator,
                 policy: typing.Optional[SharingPolicy] = None):
        self.memory = memory
        self.policy = policy or SharingPolicy()
        #: image name -> (master owner token, instance count, master kb).
        self._masters: typing.Dict[str, typing.Tuple[str, int, int]] = {}
        self.dedup_saved_kb = 0

    def _master_token(self, image_name: str) -> str:
        return "shared-image:%s" % image_name

    def instance_cost_kb(self, image_name: str, memory_kb: int) -> int:
        """What a new instance will actually reserve."""
        shareable = int(memory_kb * self.policy.shareable_fraction)
        private = memory_kb - shareable
        if image_name in self._masters:
            cow = int(shareable * self.policy.cow_divergence)
            return private + cow
        return memory_kb  # first instance carries the master copy

    def allocate_instance(self, image_name: str, owner: object,
                          memory_kb: int) -> int:
        """Reserve memory for one instance.

        Returns the physical KiB this instance added to the host (the
        first instance also carries the shared master copy).
        """
        shareable = int(memory_kb * self.policy.shareable_fraction)
        private = memory_kb - shareable
        cow = int(shareable * self.policy.cow_divergence)
        if image_name not in self._masters:
            token = self._master_token(image_name)
            self.memory.allocate(token, max(1, shareable))
            self.memory.allocate(owner, max(1, private))
            self._masters[image_name] = (token, 1, shareable)
            return shareable + private
        token, count, master_kb = self._masters[image_name]
        self.memory.allocate(owner, max(1, private + cow))
        self.dedup_saved_kb += shareable - cow
        self._masters[image_name] = (token, count + 1, master_kb)
        return private + cow

    def free_instance(self, image_name: str, owner: object) -> None:
        """Release one instance; the master goes with the last one."""
        self.memory.free(owner)
        if image_name not in self._masters:
            return
        token, count, master_kb = self._masters[image_name]
        count -= 1
        if count <= 0:
            self.memory.free(token)
            del self._masters[image_name]
        else:
            self._masters[image_name] = (token, count, master_kb)

    def instances_of(self, image_name: str) -> int:
        """Live instance count for an image."""
        if image_name not in self._masters:
            return 0
        return self._masters[image_name][1]
