"""Shared I/O rings — the split-driver data path (Xen's ``ring.h``).

Front- and back-end exchange requests and responses through a
single-producer/single-consumer ring in a granted page, with event-channel
notifications only when the peer might be asleep.  The classic protocol:

* the producer bumps ``req_prod`` (or ``rsp_prod``) after filling slots;
* the consumer advances its private ``cons`` index;
* notifications are suppressed while the peer is known to be awake, via
  the ``event`` indices (``RING_FINAL_CHECK_FOR_*`` semantics) — this is
  what keeps per-packet costs low on busy rings.

The implementation is a faithful little state machine, property-tested
for losslessness and FIFO order; the noxs device control page's
``ring_ref`` points at one of these.
"""

from __future__ import annotations

import typing


class RingFullError(RuntimeError):
    """Producer tried to push into a full ring."""


class SharedRing:
    """One direction of a Xen-style shared ring."""

    def __init__(self, order: int = 5):
        """``order``: ring holds ``2**order`` entries (32 for a standard
        4 KiB ring of 128-byte requests)."""
        if order < 0 or order > 12:
            raise ValueError("unreasonable ring order %r" % order)
        self.size = 1 << order
        self._slots: typing.List[object] = [None] * self.size
        #: Producer's published index (shared).
        self.prod = 0
        #: Consumer's private index (published for space accounting).
        self.cons = 0
        #: Producer event index: consumer requests a notification when
        #: prod reaches this value.
        self.prod_event = 1
        #: Statistics.
        self.notifications_sent = 0
        self.notifications_suppressed = 0

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    @property
    def unconsumed(self) -> int:
        """Entries produced but not yet consumed."""
        return self.prod - self.cons

    @property
    def free(self) -> int:
        return self.size - self.unconsumed

    @property
    def is_full(self) -> bool:
        return self.free == 0

    @property
    def is_empty(self) -> bool:
        return self.unconsumed == 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def push(self, item: object) -> bool:
        """Publish one entry; returns True if the peer needs a kick.

        RING_PUSH_REQUESTS_AND_CHECK_NOTIFY: notify only if the consumer
        armed its event index at or before the new prod.
        """
        if self.is_full:
            raise RingFullError("ring full (%d entries)" % self.size)
        self._slots[self.prod % self.size] = item
        old_prod = self.prod
        self.prod += 1
        # The canonical check: notify iff this push crossed the event
        # index the consumer armed before sleeping.
        need_notify = old_prod < self.prod_event <= self.prod
        if need_notify:
            self.notifications_sent += 1
        else:
            self.notifications_suppressed += 1
        return need_notify

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def pop(self) -> object:
        """Consume one entry (caller checked :attr:`is_empty`)."""
        if self.is_empty:
            raise IndexError("ring empty")
        item = self._slots[self.cons % self.size]
        self._slots[self.cons % self.size] = None
        self.cons += 1
        return item

    def final_check(self) -> bool:
        """RING_FINAL_CHECK_FOR_REQUESTS: arm the event index one past
        everything consumed, then report whether more work raced in.

        Returns True when the consumer must loop again instead of
        sleeping.
        """
        self.prod_event = self.cons + 1
        return not self.is_empty

    def drain(self) -> typing.List[object]:
        """Consume everything currently published."""
        items = []
        while not self.is_empty:
            items.append(self.pop())
        return items


class RingPair:
    """Request + response rings, as a connected device uses them."""

    def __init__(self, order: int = 5):
        self.requests = SharedRing(order)
        self.responses = SharedRing(order)

    def round_trip_ready(self) -> bool:
        """True when a response can be produced for a pending request."""
        return not self.requests.is_empty and not self.responses.is_full
