"""The hypervisor: domain table, hypercall surface, resource ownership.

This is the Xen analogue: it owns basic resources (CPUs, memory), the
domain table, event channels, grant tables and — for noxs — the per-domain
device pages.  All operations here are *state transitions*; their simulated
time costs are charged by the calling toolstack from the cost model
(:mod:`repro.core.costs`), because the paper measures toolstack-side
latency, not hypervisor-internal time.  Every hypercall is counted in
:attr:`Hypervisor.hypercall_counts` so benchmarks can report interaction
volume (the noxs claim is precisely that these interactions drop to a
handful).
"""

from __future__ import annotations

import collections
import typing

from ..faults.plan import NULL_INJECTOR, TransientHypercallError
from .devicepage import DevicePage, DeviceEntry, DevicePageError
from ..trace.tracer import tracer_of
from .domain import Domain, DomainState, DomainStateError, ShutdownReason
from .events import EventChannelTable
from .grants import GrantTable
from .memory import MemoryAllocator, OutOfMemoryError
from .scheduler import HostScheduler

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator

DOM0_ID = 0


class HypervisorError(RuntimeError):
    """Invalid hypercall (unknown domain, permission denied...)."""


class Hypervisor:
    """A type-1 hypervisor model in the style of Xen 4.8."""

    def __init__(self, sim: "Simulator", memory_kb: int, total_cores: int,
                 dom0_cores: int = 1, dom0_memory_kb: int = 1024 * 1024,
                 faults=None):
        self.sim = sim
        #: Injector for the ``hypervisor.*`` fault points.
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.memory = MemoryAllocator(memory_kb)
        self.scheduler = HostScheduler(sim, total_cores, dom0_cores)
        self.event_channels = EventChannelTable()
        self.grants = GrantTable(faults=self.faults, sim=sim)
        self.domains: typing.Dict[int, Domain] = {}
        self.hypercall_counts: typing.Counter = collections.Counter()
        self._next_domid = 1

        # Xen creates Dom0 automatically when it finishes booting.
        dom0 = Domain(DOM0_ID, name="Domain-0", memory_kb=dom0_memory_kb,
                      vcpus=dom0_cores)
        dom0.extents = self.memory.allocate(DOM0_ID, dom0_memory_kb)
        dom0.vcpu_cores = list(self.scheduler.dom0_cores)
        dom0.state = DomainState.RUNNING
        self.domains[DOM0_ID] = dom0

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def domain(self, domid: int) -> Domain:
        """Look up a domain by id; raises for unknown ids."""
        try:
            return self.domains[domid]
        except KeyError:
            raise HypervisorError("no domain %d" % domid) from None

    def domain_count(self, include_dom0: bool = False) -> int:
        """Number of existing guest domains."""
        count = len(self.domains)
        return count if include_dom0 else count - 1

    def _count(self, op: str) -> None:
        self.hypercall_counts[op] += 1
        tracer_of(self.sim).instant("hypercall." + op)

    # ------------------------------------------------------------------
    # Domain lifecycle hypercalls
    # ------------------------------------------------------------------
    def domctl_create(self, name: str = "", memory_kb: int = 4096,
                      vcpus: int = 1, shell: bool = False) -> Domain:
        """DOMCTL_createdomain: reserve id, memory and vCPUs.

        ``shell=True`` creates a LightVM pre-created shell (no image, no
        name) for the split toolstack's pool.

        Raises :class:`TransientHypercallError` — before any state is
        reserved — when the ``hypervisor.hypercall`` fault point fires;
        the toolstack retries with backoff.
        """
        self._count("domctl_create")
        if self.faults.fires("hypervisor.hypercall") is not None:
            raise TransientHypercallError(
                "DOMCTL_createdomain failed transiently")
        domid = self._next_domid
        self._next_domid += 1
        domain = Domain(domid, name=name, memory_kb=memory_kb, vcpus=vcpus)
        try:
            domain.extents = self.memory.allocate(domid, memory_kb)
        except OutOfMemoryError:
            raise
        self.scheduler.place(domain)
        if shell:
            domain.state = DomainState.SHELL
        self.domains[domid] = domain
        return domain

    def domctl_resize_shell(self, domain: Domain, memory_kb: int) -> None:
        """Adjust a shell's memory reservation to the requested config."""
        self._count("domctl_resize_shell")
        domain.require_state(DomainState.SHELL)
        if memory_kb == domain.memory_kb:
            return
        self.memory.free(domain.domid)
        try:
            domain.extents = self.memory.allocate(domain.domid, memory_kb)
        except OutOfMemoryError:
            # Roll back to the original reservation so the shell stays
            # consistent (its old size must fit: we just released it).
            domain.extents = self.memory.allocate(domain.domid,
                                                  domain.memory_kb)
            raise
        domain.memory_kb = memory_kb

    def domctl_claim_shell(self, domain: Domain, name: str = "") -> None:
        """Promote a pooled shell into a concrete (not yet booted) domain."""
        self._count("domctl_claim_shell")
        domain.require_state(DomainState.SHELL)
        domain.name = name
        domain.state = DomainState.CREATED

    def domctl_unpause(self, domain: Domain) -> None:
        """DOMCTL_unpausedomain: start executing the guest."""
        self._count("domctl_unpause")
        domain.require_state(DomainState.CREATED, DomainState.PAUSED,
                             DomainState.SUSPENDED)
        domain.state = DomainState.RUNNING
        self.scheduler.mark_running(domain)

    def domctl_pause(self, domain: Domain) -> None:
        """DOMCTL_pausedomain: stop scheduling the guest."""
        self._count("domctl_pause")
        domain.require_state(DomainState.RUNNING)
        self.scheduler.clear_idle_load(domain)
        self.scheduler.mark_stopped(domain)
        domain.state = DomainState.PAUSED

    def domctl_shutdown(self, domain: Domain,
                        reason: ShutdownReason) -> None:
        """Record a guest-initiated shutdown."""
        self._count("domctl_shutdown")
        domain.require_state(DomainState.RUNNING, DomainState.PAUSED)
        self.scheduler.clear_idle_load(domain)
        self.scheduler.mark_stopped(domain)
        domain.shutdown_reason = reason
        domain.state = (DomainState.SUSPENDED
                        if reason is ShutdownReason.SUSPEND
                        else DomainState.SHUTDOWN)

    def domctl_destroy(self, domain: Domain) -> None:
        """DOMCTL_destroydomain: release every resource the domain holds."""
        self._count("domctl_destroy")
        if domain.domid == DOM0_ID:
            raise HypervisorError("cannot destroy Dom0")
        if domain.domid not in self.domains:
            raise HypervisorError("domain %d already gone" % domain.domid)
        self.scheduler.clear_idle_load(domain)
        netback_weight = domain.notes.pop("netback_weight", 0.0)
        if netback_weight:
            self.scheduler.dom0_cores[0].remove_background(netback_weight)
        self.scheduler.unplace(domain)
        self.memory.free(domain.domid)
        self.event_channels.close_all_for(domain.domid)
        self.grants.revoke_all_for(domain.domid, force=True)
        domain.device_page = None
        domain.state = DomainState.DEAD
        del self.domains[domain.domid]

    # ------------------------------------------------------------------
    # noxs device-page hypercalls (the paper's §5.1 additions)
    # ------------------------------------------------------------------
    def devpage_create(self, domain: Domain) -> DevicePage:
        """Allocate the special device memory page for a new VM."""
        self._count("devpage_create")
        if domain.device_page is not None:
            raise HypervisorError("domain %d already has a device page"
                                  % domain.domid)
        domain.device_page = DevicePage()
        return domain.device_page

    def devpage_write(self, caller_domid: int, domain: Domain,
                      entry: DeviceEntry) -> int:
        """Add a device entry.  Only Dom0 may write (security: the page is
        shared read-only with the guest)."""
        self._count("devpage_write")
        if caller_domid != DOM0_ID:
            raise HypervisorError(
                "domain %d may not write device pages" % caller_domid)
        if domain.device_page is None:
            raise HypervisorError("domain %d has no device page"
                                  % domain.domid)
        return domain.device_page.add(entry)

    def devpage_remove(self, caller_domid: int, domain: Domain,
                       index: int) -> None:
        """Remove a device entry (device destruction)."""
        self._count("devpage_remove")
        if caller_domid != DOM0_ID:
            raise HypervisorError(
                "domain %d may not write device pages" % caller_domid)
        if domain.device_page is None:
            raise HypervisorError("domain %d has no device page"
                                  % domain.domid)
        domain.device_page.remove(index)

    def devpage_map(self, caller_domid: int) -> bytes:
        """Guest hypercall: map one's own device page (read-only view)."""
        self._count("devpage_map")
        domain = self.domain(caller_domid)
        if domain.device_page is None:
            raise HypervisorError("domain %d has no device page"
                                  % caller_domid)
        return domain.device_page.readonly_view()


__all__ = [
    "DOM0_ID",
    "DeviceEntry",
    "DevicePage",
    "DevicePageError",
    "Domain",
    "DomainState",
    "DomainStateError",
    "EventChannelTable",
    "GrantTable",
    "HostScheduler",
    "Hypervisor",
    "HypervisorError",
    "MemoryAllocator",
    "OutOfMemoryError",
    "ShutdownReason",
]
