"""Domain (virtual machine) control structures.

A :class:`Domain` mirrors Xen's ``struct domain``: the hypervisor-side
record of a guest.  It deliberately holds only what the hypervisor knows —
id, memory reservation, vCPU placement, device page — not guest-internal
state (that lives in :mod:`repro.guests`).  The paper's noxs design exploits
exactly this split: "most of the necessary information about a VM is
already kept by the hypervisor".
"""

from __future__ import annotations

import enum
import typing


class DomainState(enum.Enum):
    """Lifecycle states of a domain, a superset of Xen's.

    ``SHELL`` is LightVM-specific: a pre-created domain produced by the
    split toolstack's prepare phase, waiting in the chaos daemon's pool for
    an image and devices.
    """

    SHELL = "shell"
    CREATED = "created"      # resources reserved, image not yet loaded
    PAUSED = "paused"
    RUNNING = "running"
    SUSPENDED = "suspended"
    SHUTDOWN = "shutdown"
    DEAD = "dead"


class ShutdownReason(enum.Enum):
    """Why a guest shut down (mirrors Xen's SHUTDOWN_* codes)."""

    POWEROFF = "poweroff"
    REBOOT = "reboot"
    SUSPEND = "suspend"
    CRASH = "crash"


class Domain:
    """Hypervisor-side record for one guest."""

    def __init__(self, domid: int, name: str = "", memory_kb: int = 0,
                 vcpus: int = 1):
        self.domid = domid
        #: Human name.  Note: Xen keeps the name in the XenStore, not here;
        #: noxs-based stacks leave it empty (it is not needed to boot).
        self.name = name
        self.memory_kb = memory_kb
        self.vcpus = vcpus
        self.state = DomainState.CREATED
        self.shutdown_reason: typing.Optional[ShutdownReason] = None
        #: Physical-memory extents allocated to this domain
        #: (set by the hypervisor's memory allocator).
        self.extents: list = []
        #: Core (PSCore) each vCPU is pinned to; set at placement time.
        self.vcpu_cores: list = []
        #: The noxs device memory page (None unless noxs is enabled).
        self.device_page = None
        #: Kernel image loaded into the domain's memory (guests module).
        self.image = None
        #: Fluid background CPU weight this domain currently exerts
        #: (idle daemons etc.); used to tear it down on destroy.
        self.background_weight = 0.0
        #: Whether the scheduler currently counts this domain as runnable.
        self.sched_counted = False
        #: Arbitrary per-domain annotations used by toolstacks.
        self.notes: dict = {}

    @property
    def is_alive(self) -> bool:
        """True for any state in which the domain holds resources."""
        return self.state not in (DomainState.SHUTDOWN, DomainState.DEAD)

    def require_state(self, *allowed: DomainState) -> None:
        """Raise if the domain is not in one of ``allowed`` states."""
        if self.state not in allowed:
            raise DomainStateError(
                "domain %d is %s; operation requires %s"
                % (self.domid, self.state.value,
                   "/".join(s.value for s in allowed)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Domain %d %r %s %dKB>" % (
            self.domid, self.name, self.state.value, self.memory_kb)


class DomainStateError(RuntimeError):
    """An operation was attempted in an incompatible domain state."""
