"""Physical-memory allocator.

An extent-based first-fit allocator over the host's machine memory.  It
gives the evaluation two things the paper depends on:

* a hard memory ceiling — Fig 10's Docker run dies at ~3000 containers when
  "the next large memory allocation consumes all available memory", and
  Fig 14's density numbers are direct reads of this accounting;
* per-domain reservations that must be returned exactly on destroy
  (property-tested: alloc/free round-trips conserve free memory).

Extents are ``(start_kb, size_kb)`` ranges.  An allocation may span several
extents (Xen guests do not need machine-contiguous memory), but the
allocator prefers a single extent and splits only under fragmentation.
"""

from __future__ import annotations

import typing


class OutOfMemoryError(MemoryError):
    """The host cannot satisfy a reservation."""


class Extent(typing.NamedTuple):
    """A contiguous physical range, in KiB."""

    start_kb: int
    size_kb: int

    @property
    def end_kb(self) -> int:
        return self.start_kb + self.size_kb


class MemoryAllocator:
    """First-fit extent allocator with per-owner accounting."""

    def __init__(self, total_kb: int):
        if total_kb <= 0:
            raise ValueError("total memory must be positive")
        self.total_kb = total_kb
        self._free: typing.List[Extent] = [Extent(0, total_kb)]
        self._owned: typing.Dict[object, typing.List[Extent]] = {}

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def free_kb(self) -> int:
        """KiB currently unallocated."""
        return sum(e.size_kb for e in self._free)

    @property
    def used_kb(self) -> int:
        """KiB currently allocated."""
        return self.total_kb - self.free_kb

    def owned_kb(self, owner: object) -> int:
        """KiB held by ``owner`` (0 if unknown)."""
        return sum(e.size_kb for e in self._owned.get(owner, ()))

    def fragments(self) -> int:
        """Number of free extents (1 = fully defragmented)."""
        return len(self._free)

    def owners(self) -> typing.List[object]:
        """All owners currently holding memory."""
        return list(self._owned)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, owner: object, size_kb: int) -> typing.List[Extent]:
        """Reserve ``size_kb`` for ``owner``; raises OutOfMemoryError."""
        if size_kb <= 0:
            raise ValueError("allocation size must be positive")
        if size_kb > self.free_kb:
            raise OutOfMemoryError(
                "need %d KiB but only %d KiB free" % (size_kb, self.free_kb))

        taken: typing.List[Extent] = []
        remaining = size_kb
        # Pass 1: a single extent large enough (first fit).
        for index, extent in enumerate(self._free):
            if extent.size_kb >= remaining:
                taken.append(Extent(extent.start_kb, remaining))
                leftover = extent.size_kb - remaining
                if leftover:
                    self._free[index] = Extent(
                        extent.start_kb + remaining, leftover)
                else:
                    del self._free[index]
                remaining = 0
                break
        # Pass 2: gather smaller extents until satisfied.
        while remaining > 0:
            if not self._free:
                # The free list ran dry mid-gather (possible only if the
                # free accounting and the list disagree — but an
                # allocator must fail atomically either way): put the
                # partial grab back and raise the typed error instead of
                # an IndexError that leaks ``taken`` outside ``_owned``.
                for grabbed in taken:
                    self._insert_free(grabbed)
                raise OutOfMemoryError(
                    "free list exhausted with %d KiB of %d KiB still "
                    "unsatisfied" % (remaining, size_kb))
            extent = self._free[0]
            take = min(extent.size_kb, remaining)
            taken.append(Extent(extent.start_kb, take))
            if take == extent.size_kb:
                del self._free[0]
            else:
                self._free[0] = Extent(extent.start_kb + take,
                                       extent.size_kb - take)
            remaining -= take

        self._owned.setdefault(owner, []).extend(taken)
        return taken

    def free(self, owner: object) -> int:
        """Return everything ``owner`` holds; returns the KiB released."""
        extents = self._owned.pop(owner, [])
        released = 0
        for extent in extents:
            self._insert_free(extent)
            released += extent.size_kb
        return released

    def _insert_free(self, extent: Extent) -> None:
        """Insert an extent into the sorted free list, coalescing."""
        self._free.append(extent)
        self._free.sort(key=lambda e: e.start_kb)
        merged: typing.List[Extent] = []
        for ext in self._free:
            if merged and merged[-1].end_kb == ext.start_kb:
                prev = merged.pop()
                merged.append(Extent(prev.start_kb,
                                     prev.size_kb + ext.size_kb))
            elif merged and merged[-1].end_kb > ext.start_kb:
                raise AssertionError(
                    "overlapping free extents: %r, %r" % (merged[-1], ext))
            else:
                merged.append(ext)
        self._free = merged
