"""Event channels — Xen's software interrupts.

Event channels are the notification primitive of the split-driver model:
netback/netfront (and noxs's sysctl back/front) signal each other through
them.  The XenStore protocol's cost is dominated by these notifications —
"a single read or write thus triggers at least two, and most often four,
software interrupts" (§4.2) — so the table counts every notification for
the benchmark breakdowns.
"""

from __future__ import annotations

import typing


class EventChannelError(RuntimeError):
    """Invalid event-channel operation (bad port, wrong state...)."""


class Channel:
    """One end-to-end event channel."""

    __slots__ = ("port", "owner_domid", "remote_domid", "remote_port",
                 "state", "handlers", "notifications")

    def __init__(self, port: int, owner_domid: int):
        self.port = port
        self.owner_domid = owner_domid
        self.remote_domid: typing.Optional[int] = None
        self.remote_port: typing.Optional[int] = None
        self.state = "unbound"  # unbound | interdomain | closed
        #: Callbacks invoked (synchronously) on notification delivery.
        self.handlers: typing.List[typing.Callable] = []
        self.notifications = 0


class EventChannelTable:
    """Hypervisor-wide event channel state, keyed by (domid, port)."""

    def __init__(self):
        self._channels: typing.Dict[typing.Tuple[int, int], Channel] = {}
        self._next_port: typing.Dict[int, int] = {}
        #: Total notifications sent, for the software-interrupt accounting.
        self.total_notifications = 0

    def _alloc_port(self, domid: int) -> int:
        port = self._next_port.get(domid, 1)
        self._next_port[domid] = port + 1
        return port

    def channel(self, domid: int, port: int) -> Channel:
        """Look up a channel; raises if it does not exist."""
        try:
            return self._channels[(domid, port)]
        except KeyError:
            raise EventChannelError(
                "no channel (domid=%d, port=%d)" % (domid, port)) from None

    def alloc_unbound(self, owner_domid: int,
                      remote_domid: int) -> int:
        """EVTCHNOP_alloc_unbound: create a port awaiting a peer bind."""
        port = self._alloc_port(owner_domid)
        channel = Channel(port, owner_domid)
        channel.remote_domid = remote_domid
        self._channels[(owner_domid, port)] = channel
        return port

    def bind_interdomain(self, domid: int, remote_domid: int,
                         remote_port: int) -> int:
        """EVTCHNOP_bind_interdomain: connect to a peer's unbound port."""
        remote = self.channel(remote_domid, remote_port)
        if remote.state != "unbound":
            raise EventChannelError("remote port %d not unbound"
                                    % remote_port)
        if remote.remote_domid != domid:
            raise EventChannelError(
                "port %d reserved for domain %s, not %d"
                % (remote_port, remote.remote_domid, domid))
        port = self._alloc_port(domid)
        local = Channel(port, domid)
        local.state = remote.state = "interdomain"
        local.remote_domid, local.remote_port = remote_domid, remote_port
        remote.remote_domid, remote.remote_port = domid, port
        self._channels[(domid, port)] = local
        return port

    def notify(self, domid: int, port: int) -> None:
        """EVTCHNOP_send: deliver a software interrupt to the peer."""
        channel = self.channel(domid, port)
        if channel.state != "interdomain":
            raise EventChannelError("port %d not connected" % port)
        peer = self.channel(channel.remote_domid, channel.remote_port)
        peer.notifications += 1
        self.total_notifications += 1
        for handler in list(peer.handlers):
            handler()

    def on_notify(self, domid: int, port: int,
                  handler: typing.Callable) -> None:
        """Register a delivery handler on the local end of a channel."""
        self.channel(domid, port).handlers.append(handler)

    def close(self, domid: int, port: int) -> None:
        """EVTCHNOP_close: tear down both ends."""
        channel = self.channel(domid, port)
        if channel.state == "interdomain":
            peer_key = (channel.remote_domid, channel.remote_port)
            peer = self._channels.get(peer_key)
            if peer is not None:
                peer.state = "closed"
        channel.state = "closed"
        del self._channels[(domid, port)]

    def close_all_for(self, domid: int) -> int:
        """Close every channel owned by ``domid``; returns the count."""
        ports = [port for (owner, port) in self._channels
                 if owner == domid]
        for port in ports:
            self.close(domid, port)
        return len(ports)

    def count_for(self, domid: int) -> int:
        """Number of open channels owned by ``domid``."""
        return sum(1 for (owner, _p) in self._channels if owner == domid)
