"""Grant tables — Xen's page-sharing mechanism.

A domain grants a peer access to one of its frames by filling a grant-table
entry; the peer maps the frame by grant reference.  The split-driver model
moves all device data through granted pages, and noxs's device control
pages are communicated as grant references, so this table is exercised on
every device setup in both toolstacks.
"""

from __future__ import annotations

import typing

from ..faults.plan import NULL_INJECTOR, GrantMapFailure
from ..trace.tracer import tracer_of


class GrantError(RuntimeError):
    """Invalid grant operation (bad ref, busy entry, wrong peer...)."""


class GrantEntry:
    """One grant-table slot."""

    __slots__ = ("ref", "granter_domid", "grantee_domid", "frame",
                 "readonly", "mapped_by")

    def __init__(self, ref: int, granter_domid: int, grantee_domid: int,
                 frame: int, readonly: bool):
        self.ref = ref
        self.granter_domid = granter_domid
        self.grantee_domid = grantee_domid
        self.frame = frame
        self.readonly = readonly
        self.mapped_by: typing.Optional[int] = None


class GrantTable:
    """All grant entries on the host, keyed by (granter domid, ref)."""

    def __init__(self, faults=None, sim=None):
        self._entries: typing.Dict[typing.Tuple[int, int], GrantEntry] = {}
        self._next_ref: typing.Dict[int, int] = {}
        #: Injector for the ``hypervisor.grant_map`` fault point.
        self.faults = faults if faults is not None else NULL_INJECTOR
        #: Simulator handle for span instants (optional; the table is
        #: time-free otherwise).
        self.sim = sim

    def entry(self, granter_domid: int, ref: int) -> GrantEntry:
        """Look up an entry; raises on a dangling reference."""
        try:
            return self._entries[(granter_domid, ref)]
        except KeyError:
            raise GrantError("no grant (domid=%d, ref=%d)"
                             % (granter_domid, ref)) from None

    def grant_access(self, granter_domid: int, grantee_domid: int,
                     frame: int, readonly: bool = False) -> int:
        """Create a grant; returns the grant reference.

        Raises :class:`GrantMapFailure` (before touching the table) when
        the ``hypervisor.grant_map`` fault point fires: filling the entry
        failed transiently and the granting side should retry.
        """
        if self.faults.fires("hypervisor.grant_map") is not None:
            raise GrantMapFailure(
                "transient failure filling grant entry for dom%d"
                % granter_domid)
        ref = self._next_ref.get(granter_domid, 1)
        self._next_ref[granter_domid] = ref + 1
        self._entries[(granter_domid, ref)] = GrantEntry(
            ref, granter_domid, grantee_domid, frame, readonly)
        tracer_of(self.sim).instant("grant.access", granter=granter_domid,
                                    grantee=grantee_domid)
        return ref

    def map_ref(self, mapper_domid: int, granter_domid: int,
                ref: int) -> int:
        """Map a granted frame into ``mapper_domid``; returns the frame."""
        entry = self.entry(granter_domid, ref)
        if entry.grantee_domid != mapper_domid:
            raise GrantError(
                "grant %d is for domain %d, not %d"
                % (ref, entry.grantee_domid, mapper_domid))
        if entry.mapped_by is not None:
            raise GrantError("grant %d already mapped" % ref)
        entry.mapped_by = mapper_domid
        tracer_of(self.sim).instant("grant.map", granter=granter_domid,
                                    mapper=mapper_domid)
        return entry.frame

    def unmap_ref(self, mapper_domid: int, granter_domid: int,
                  ref: int) -> None:
        """Release a mapping created by :meth:`map_ref`."""
        entry = self.entry(granter_domid, ref)
        if entry.mapped_by != mapper_domid:
            raise GrantError("grant %d not mapped by domain %d"
                             % (ref, mapper_domid))
        entry.mapped_by = None

    def end_access(self, granter_domid: int, ref: int) -> None:
        """Revoke a grant.  Fails while the peer still has it mapped."""
        entry = self.entry(granter_domid, ref)
        if entry.mapped_by is not None:
            raise GrantError("grant %d still mapped by domain %d"
                             % (ref, entry.mapped_by))
        del self._entries[(granter_domid, ref)]

    def revoke_all_for(self, domid: int, force: bool = False) -> int:
        """Drop every grant issued by ``domid`` (domain teardown).

        With ``force`` the entries are removed even if mapped, mirroring
        how Xen handles a dying domain.  Returns the number revoked.
        """
        refs = [(granter, ref) for (granter, ref), entry
                in self._entries.items() if granter == domid]
        for granter, ref in refs:
            entry = self._entries[(granter, ref)]
            if entry.mapped_by is not None and not force:
                raise GrantError("grant %d still mapped" % ref)
            del self._entries[(granter, ref)]
        return len(refs)

    def count_for(self, domid: int) -> int:
        """Number of active grants issued by ``domid``."""
        return sum(1 for (granter, _r) in self._entries if granter == domid)
