"""The process-pool execution backend: one OS process per worker.

This is the **only** module in the repository allowed to import
``multiprocessing`` (lint rule RPR010; ``RPR010_ALLOWED_PATHS`` names
exactly this file).  The boundary is sharp by design: workers host plain
:class:`~repro.cluster.node.HostNode` instances and speak a tiny pickled
protocol over pipes — no scenario logic, no scheduling decisions, no
shared state.  Real concurrency exists only *between* barriers, where
hosts exchange nothing; at every barrier the coordinator re-imposes the
canonical (epoch, src, seq) order, so worker scheduling, pipe drain
order, and host-to-worker partitioning are all unobservable in the
merged timeline.

Protocol (coordinator -> worker / worker -> coordinator):

* ``("epoch", k, window_end, {host: [messages]})`` ->
  ``("ok", outbox_messages, reports)``
* ``("finish",)`` -> ``("done", [host summaries])`` then worker exit
* any worker exception -> ``("error", traceback_text)``

Workers are built fresh in the child (never pickled across), so the
``fork`` and ``spawn`` start methods behave identically; ``fork`` is
preferred for its startup cost.
"""

from __future__ import annotations

import multiprocessing
import traceback
import typing

from .config import ClusterConfig
from .messages import ClusterMessage, from_wire
from .node import HostNode


def _worker_main(conn, config: ClusterConfig,
                 host_indices: typing.List[int]) -> None:
    """Child process entry: drive ``host_indices``'s nodes to barriers."""
    try:
        nodes = [HostNode(config, host) for host in host_indices]
        while True:
            command = conn.recv()
            op = command[0]
            if op == "epoch":
                _op, epoch, window_end, batches = command
                outs: typing.List[tuple] = []
                reports = []
                for node in nodes:
                    batch = batches.get(node.host_index)
                    if batch:
                        node.deliver([from_wire(w) for w in batch])
                    reports.append(node.run_epoch(epoch, window_end))
                    outs.extend(msg.to_wire()
                                for msg in node.drain_outbox())
                conn.send(("ok", outs, reports))
            elif op == "finish":
                conn.send(("done", [node.summary() for node in nodes]))
                return
            else:
                raise ValueError("unknown worker op %r" % (op,))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # coordinator already gone
            pass
    finally:
        conn.close()


class ProcsBackend:
    """Hosts partitioned round-robin over persistent worker processes."""

    name = "procs"

    def __init__(self, config: ClusterConfig, workers: int):
        from .cluster import ClusterError
        self._error = ClusterError
        self.workers = max(1, min(int(workers), config.hosts))
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self._conns = []
        self._procs = []
        #: Worker w owns hosts {h : h % workers == w}; the partition is a
        #: pure function of (hosts, workers) and — by the canonical-order
        #: contract — unobservable in the merged timeline.
        self._partition = [
            [host for host in range(config.hosts)
             if host % self.workers == worker]
            for worker in range(self.workers)]
        for worker in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, config,
                                     self._partition[worker]),
                               daemon=True)
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _recv(self, conn):
        try:
            reply = conn.recv()
        except EOFError:
            raise self._error(
                "cluster worker died without a reply (see stderr for the "
                "child traceback)")
        if reply[0] == "error":
            raise self._error("cluster worker failed:\n%s" % reply[1])
        return reply

    def run_epoch(self, epoch: int, window_end: float,
                  batches: typing.Dict[int, list]
                  ) -> typing.Tuple[list, list]:
        for worker, conn in enumerate(self._conns):
            local = {}
            for host in self._partition[worker]:
                batch = batches.get(host)
                if batch:
                    # Wire-encode on the way out: tuples pickle several
                    # times faster than dataclass instances, and this
                    # serialization is the coordinator's serial fraction.
                    local[host] = [msg.to_wire() for msg in batch]
            conn.send(("epoch", epoch, window_end, local))
        outs: typing.List[ClusterMessage] = []
        reports = []
        # Drain replies in worker order.  The concatenation order does
        # not matter: the coordinator canonically re-sorts every message
        # and keys reports by host index.
        for conn in self._conns:
            reply = self._recv(conn)
            outs.extend(from_wire(wire) for wire in reply[1])
            reports.extend(reply[2])
        return outs, reports

    def finish(self) -> typing.List[dict]:
        for conn in self._conns:
            conn.send(("finish",))
        summaries: typing.List[dict] = []
        for conn in self._conns:
            summaries.extend(self._recv(conn)[1])
        return summaries

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)
        self._conns = []
        self._procs = []
