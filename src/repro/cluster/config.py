"""Cluster scenario configuration.

A :class:`ClusterConfig` is a flat record of JSON-serializable scalars —
the *entire* input to a cluster run.  Determinism contract: the merged
cluster timeline (and therefore the cluster digest) is a pure function of
this config; the backend and worker count must not matter.  Keeping the
config JSON-clean is what lets the ``repro cluster`` CLI embed it in a
chaos-style reproducer file and replay it bit-for-bit later.
"""

from __future__ import annotations

import dataclasses
import typing

from ..core.hostspec import AMD_OPTERON_64, XEON_E5_1630, HostSpec
from ..guests.catalog import lookup
from ..guests.images import GuestImage

#: Host specs addressable from a JSON config.
SPECS: typing.Dict[str, HostSpec] = {
    "amd-opteron-64": AMD_OPTERON_64,
    "xeon-e5-1630": XEON_E5_1630,
}


class ClusterConfigError(ValueError):
    """A cluster config that cannot produce a well-defined run."""


@dataclasses.dataclass
class ClusterConfig:
    """Everything a cluster run depends on, as JSON scalars."""

    #: Number of simulated hosts.
    hosts: int = 8
    #: Master seed; every per-host seed, fault plan, and traffic stream
    #: is derived from it (see :func:`host_seed`).
    seed: int = 0
    #: Scenario name (``boot-storm`` or ``migration-churn``); informative
    #: in the config itself — the scenario builders below set the knobs.
    scenario: str = "boot-storm"
    #: Toolstack variant on every host (see :data:`repro.core.host.VARIANTS`).
    variant: str = "lightvm"
    #: Guest image name from the catalogue.
    image: str = "noop"
    #: Host spec name from :data:`SPECS`.
    spec: str = "amd-opteron-64"

    #: Epoch window length in simulated ms.  The lookahead rule requires
    #: ``epoch_ms <= net_latency_ms`` — see :meth:`validate`.
    epoch_ms: float = 5.0
    #: Minimum cross-host message latency (the cluster's lookahead), ms.
    net_latency_ms: float = 5.0
    #: Cross-host link bandwidth (migration streams), Mbit/s.
    net_bandwidth_mbps: float = 10000.0

    #: Total guests created cluster-wide.
    guests: int = 32
    #: Gap between consecutive create commands, ms (the boot-storm ramp).
    create_spacing_ms: float = 3.0
    #: When the first create command arrives; ``None`` derives a value
    #: that leaves the chaos shell pools time to pre-fill.
    create_start_ms: typing.Optional[float] = None
    #: Per-host shell-pool headroom beyond the worst-case guest count.
    pool_slack: int = 8

    #: Placement policy: ``least-loaded`` (spread) or ``first-fit`` (pack).
    placement: str = "least-loaded"

    #: Total cross-host live migrations to drive (the churn phase).
    migrations: int = 0

    #: Total open-loop requests cluster-wide (split across hosts).
    requests: int = 0
    #: Mean inter-arrival gap of one host's request stream, ms.
    request_gap_ms: float = 1.0
    #: Modeled service time per request on the guest's host, ms.
    service_ms: float = 0.5
    #: When request streams open; ``None`` derives mid-storm so traffic
    #: overlaps boots and migrations.
    traffic_start_ms: typing.Optional[float] = None

    #: Per-host fault injection probability (0.0 = fault-free hosts).
    fault_rate: float = 0.0
    #: Fault points pattern handed to :meth:`FaultPlan.uniform`.
    fault_points: str = "*"
    #: Attach the PR-6 recovery layer (watchdog, orphan reaper, journal)
    #: to every host.  Worth enabling with aggressive fault rates, where
    #: a dead background daemon can otherwise starve a create forever —
    #: which the livelock guard reports as a ClusterError.
    recovery: bool = False

    #: Livelock guard: a run that has not quiesced after this many epochs
    #: raises instead of spinning forever.
    max_epochs: int = 200000

    # ------------------------------------------------------------------
    # Derived values (pure functions of the scalars above)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.hosts < 1:
            raise ClusterConfigError("hosts must be >= 1, got %r"
                                     % self.hosts)
        if self.epoch_ms <= 0:
            raise ClusterConfigError("epoch_ms must be > 0, got %r"
                                     % self.epoch_ms)
        if self.net_latency_ms < self.epoch_ms:
            # The conservative-PDES lookahead rule: a message sent inside
            # epoch k must not arrive before epoch k+1 begins, or hosts
            # would need mid-window exchange and the barrier schedule
            # would stop being deterministic.
            raise ClusterConfigError(
                "net_latency_ms (%r) must be >= epoch_ms (%r): the epoch "
                "length is the cluster's lookahead"
                % (self.net_latency_ms, self.epoch_ms))
        if self.create_spacing_ms <= 0:
            raise ClusterConfigError("create_spacing_ms must be > 0")
        if self.request_gap_ms <= 0:
            raise ClusterConfigError("request_gap_ms must be > 0")
        if self.spec not in SPECS:
            raise ClusterConfigError(
                "unknown spec %r; expected one of %s"
                % (self.spec, ", ".join(sorted(SPECS))))
        lookup(self.image)  # raises on an unknown image name

    def host_spec(self) -> HostSpec:
        return SPECS[self.spec]

    def guest_image(self) -> GuestImage:
        return lookup(self.image)

    def pool_target(self) -> int:
        """Shell-pool size per host: worst-case local guests plus slack.

        ``first-fit`` can pack every guest onto host 0, so the worst case
        is the full cluster guest count; ``least-loaded`` spreads evenly.
        """
        if self.placement == "first-fit":
            worst = self.guests
        else:
            worst = -(-self.guests // self.hosts)  # ceil division
        return worst + self.pool_slack

    def create_start(self) -> float:
        """First create-command arrival; default leaves pool-fill time."""
        if self.create_start_ms is not None:
            return self.create_start_ms
        # A chaos shell pre-creates in ~12 ms of simulated time; give the
        # pool one full fill plus margin, rounded up to an epoch boundary
        # consumers don't rely on (the controller stamps exact times).
        return 12.0 * self.pool_target() + 50.0

    def traffic_start(self) -> float:
        """Request streams open mid-storm by default."""
        if self.traffic_start_ms is not None:
            return self.traffic_start_ms
        return self.create_start() + \
            (self.guests * self.create_spacing_ms) / 2.0

    def requests_for(self, host_index: int) -> int:
        """Host ``host_index``'s share of the request budget."""
        base, extra = divmod(self.requests, self.hosts)
        return base + (1 if host_index < extra else 0)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterConfig":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - fields)
        if unknown:
            raise ClusterConfigError("unknown config keys: %s"
                                     % ", ".join(unknown))
        return cls(**payload)


def host_seed(seed: int, host_index: int) -> int:
    """Derive host ``host_index``'s seed from the cluster seed.

    Pure arithmetic (no process-dependent state): the same (seed, index)
    pair yields the same per-host seed in every backend and worker.  The
    multiplier keeps nearby cluster seeds from colliding with nearby host
    indices.
    """
    return seed * 1000003 + host_index


# ----------------------------------------------------------------------
# Scenario presets
# ----------------------------------------------------------------------

def _from_preset(name: str, seed: int, overrides: dict, *,
                 hosts: int, guests: int, requests: int,
                 migrations: int = 0) -> ClusterConfig:
    """Lower a stdlib preset to a ClusterConfig, then apply raw
    ClusterConfig field overrides (the pre-stdlib builder surface)."""
    from ..stdlib.presets import preset
    config = preset(name, hosts=hosts, guests=guests, requests=requests,
                    migrations=migrations).to_cluster_config(seed)
    return dataclasses.replace(config, **overrides) if overrides \
        else config


def boot_storm(hosts: int = 8, seed: int = 0, guests: int = 32,
               requests: int = 0, **overrides) -> ClusterConfig:
    """The generalized Fig 10 shape: a create ramp across N hosts.

    A shim over :data:`repro.stdlib.presets.BOOT_STORM` — the spec path
    (``repro run``) and this builder produce identical configs.
    """
    return _from_preset("boot-storm", seed, overrides, hosts=hosts,
                        guests=guests, requests=requests)


def migration_churn(hosts: int = 4, seed: int = 0, guests: int = 16,
                    migrations: int = 8, requests: int = 0,
                    **overrides) -> ClusterConfig:
    """Boot a fleet, then churn guests between hosts (the Fig 13 path
    generalized to cluster placement).

    A shim over :data:`repro.stdlib.presets.MIGRATION_CHURN`.
    """
    return _from_preset("migration-churn", seed, overrides, hosts=hosts,
                        guests=guests, requests=requests,
                        migrations=migrations)


#: CLI-addressable scenario builders.
SCENARIOS: typing.Dict[str, typing.Callable[..., ClusterConfig]] = {
    "boot-storm": boot_storm,
    "migration-churn": migration_churn,
    "churn": migration_churn,
}
