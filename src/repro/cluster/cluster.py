"""The cluster orchestrator: epoch barriers over N host engines.

:class:`Cluster` advances every host window by window.  One iteration —
one epoch — is:

1. **deliver**: messages whose arrival instant falls inside the window,
   sorted by the canonical (epoch, src, seq) key, are injected into
   their destination hosts at their exact arrival times;
2. **advance**: every host runs ``sim.run(until=window_end,
   inclusive=False)`` — strictly disjoint windows, so no event leaks
   across a barrier;
3. **exchange**: host outboxes are drained; controller-addressed reports
   are consumed at the barrier and new commands issued; everything else
   goes back into the pending pool for a later window.

The run terminates when the controller has nothing left to issue, no
message is pending, and every host reports zero outstanding work; the
livelock guard (``config.max_epochs``) bounds broken scenarios.

Backends implement ``run_epoch(epoch, window_end, batches)``,
``finish()`` and ``close()``: :class:`InlineBackend` here (single
process, the semantic reference) and ``ProcsBackend`` in
:mod:`repro.cluster.procs` (one OS process per worker).  The merged
timeline is a pure function of the config; the backend and worker count
must not change a single digest byte — ``tests/test_cluster_digest.py``
holds both to that.
"""

from __future__ import annotations

import dataclasses
import typing

from ..analysis.sanitize import combine_digests
from .config import SCENARIOS, ClusterConfig, ClusterConfigError
from .controller import Controller
from .messages import CONTROLLER, ClusterMessage, sort_canonical
from .node import HostNode

#: Reproducer-file schema version (mirrors the chaos runner's contract).
REPRODUCER_VERSION = 1

BACKENDS = ("inline", "procs")


class ClusterError(RuntimeError):
    """A cluster run that cannot proceed (livelock, dead worker, ...)."""


class InlineBackend:
    """All hosts in this process — the semantic reference backend."""

    name = "inline"
    workers = 1

    def __init__(self, config: ClusterConfig):
        self.nodes = [HostNode(config, host)
                      for host in range(config.hosts)]

    def run_epoch(self, epoch: int, window_end: float,
                  batches: typing.Dict[int, list]
                  ) -> typing.Tuple[list, list]:
        outs: typing.List[ClusterMessage] = []
        reports = []
        for node in self.nodes:
            batch = batches.get(node.host_index)
            if batch:
                node.deliver(batch)
            reports.append(node.run_epoch(epoch, window_end))
            outs.extend(node.drain_outbox())
        return outs, reports

    def finish(self) -> typing.List[dict]:
        return [node.summary() for node in self.nodes]

    def close(self) -> None:
        pass


@dataclasses.dataclass
class ClusterResult:
    """Outcome of one cluster run; everything JSON-serializable."""

    config: ClusterConfig
    backend: str
    workers: int
    epochs: int
    sim_ms: float
    events: int
    digest: str
    host_digests: typing.List[str]
    stats: typing.Dict[str, float]

    def to_dict(self) -> dict:
        return {"version": REPRODUCER_VERSION,
                "tool": "repro cluster",
                "scenario": self.config.scenario,
                "config": self.config.to_dict(),
                "backend": self.backend,
                "workers": self.workers,
                "epochs": self.epochs,
                "sim_ms": self.sim_ms,
                "events": self.events,
                "digest": self.digest,
                "host_digests": list(self.host_digests),
                "stats": dict(self.stats)}


class Cluster:
    """N simulated hosts behind one deterministic epoch-barrier loop."""

    def __init__(self, config: ClusterConfig, backend: str = "inline",
                 workers: typing.Optional[int] = None):
        config.validate()
        if backend not in BACKENDS:
            raise ClusterConfigError(
                "unknown backend %r; expected one of %s"
                % (backend, ", ".join(BACKENDS)))
        self.config = config
        self.backend_name = backend
        if workers is None:
            workers = config.hosts
        self.workers = max(1, min(int(workers), config.hosts))

    def _make_backend(self):
        if self.backend_name == "inline":
            return InlineBackend(self.config)
        from .procs import ProcsBackend
        return ProcsBackend(self.config, self.workers)

    def run(self) -> ClusterResult:
        config = self.config
        controller = Controller(config)
        backend = self._make_backend()
        epoch_ms = config.epoch_ms
        try:
            pending = list(controller.barrier(-1, 0.0, []))
            epoch = 0
            while True:
                if epoch >= config.max_epochs:
                    raise ClusterError(
                        "no quiescence after %d epochs (sim time %.1f ms):"
                        " livelocked scenario or lost completion report"
                        % (epoch, epoch * epoch_ms))
                window_end = (epoch + 1) * epoch_ms
                due = [m for m in pending if m.arrive_ms < window_end]
                if due:
                    pending = [m for m in pending
                               if m.arrive_ms >= window_end]
                    due = sort_canonical(due)
                batches: typing.Dict[int, list] = {}
                for msg in due:
                    batches.setdefault(msg.dst, []).append(msg)
                outs, reports = backend.run_epoch(epoch, window_end,
                                                  batches)
                to_controller = sort_canonical(
                    [m for m in outs if m.dst == CONTROLLER])
                pending.extend(m for m in outs if m.dst != CONTROLLER)
                pending.extend(controller.barrier(epoch, window_end,
                                                  to_controller))
                outstanding = 0
                for report in reports:
                    outstanding += report["outstanding"]
                epoch += 1
                if controller.done and not pending and outstanding == 0:
                    break
            summaries = backend.finish()
        finally:
            backend.close()
        summaries.sort(key=lambda summary: summary["host"])
        host_digests = [summary["digest"] for summary in summaries]
        events = 0
        sim_ms = 0.0
        stats: typing.Dict[str, float] = dict(controller.stats)
        stats["guests_running"] = 0
        for summary in summaries:
            events += summary["events"]
            sim_ms = max(sim_ms, summary["sim_ms"])
            stats["guests_running"] += summary["guests"]
            for key in sorted(summary["counters"]):
                value = summary["counters"][key]
                if key in ("latency_ms_max",):
                    stats[key] = max(stats.get(key, 0.0), value)
                else:
                    stats[key] = stats.get(key, 0) + value
        return ClusterResult(config=config, backend=self.backend_name,
                             workers=(backend.workers
                                      if self.backend_name == "procs"
                                      else 1),
                             epochs=epoch, sim_ms=sim_ms, events=events,
                             digest=combine_digests(host_digests),
                             host_digests=host_digests, stats=stats)


# ----------------------------------------------------------------------
# Convenience entry points (CLI, benches, tests)
# ----------------------------------------------------------------------

def run_cluster(scenario: str = "boot-storm", backend: str = "inline",
                workers: typing.Optional[int] = None,
                **scenario_kwargs) -> ClusterResult:
    """Build a scenario config and run it on the chosen backend."""
    try:
        build = SCENARIOS[scenario]
    except KeyError:
        raise ClusterConfigError(
            "unknown scenario %r; expected one of %s"
            % (scenario, ", ".join(sorted(SCENARIOS))))
    config = build(**scenario_kwargs)
    return Cluster(config, backend=backend, workers=workers).run()


def replay_reproducer(payload: dict) -> typing.Tuple[bool, ClusterResult]:
    """Re-run a ``repro cluster --json`` reproducer on the reference
    backend and check the cluster digest bit-for-bit."""
    if payload.get("version") != REPRODUCER_VERSION:
        raise ClusterConfigError("unsupported reproducer version %r"
                                 % (payload.get("version"),))
    config = ClusterConfig.from_dict(payload["config"])
    result = Cluster(config, backend="inline").run()
    return result.digest == payload.get("digest"), result
