"""One cluster host: a full single-host stack plus an epoch-driven shell.

A :class:`HostNode` wraps a :class:`repro.core.host.Host` (its own
:class:`Simulator`, toolstack, XenStore plane, checkpointer, fault
injector) and adds the three things the epoch-barrier scheduler needs:

* **delivery** — cross-host messages are injected at their exact agreed
  arrival instant via :meth:`Simulator.schedule_at`, carrying the message
  token as the event payload so the replay digest pins *what* arrived,
  not just that something did;
* **bounded advance** — :meth:`run_epoch` drives the engine through one
  strict window ``[k·L, (k+1)·L)`` with ``run(until=end,
  inclusive=False)``;
* **outbox batching** — sends buffer during the window and are flushed
  into the epoch's outbox by a kernel drain hook when the bounded run
  completes, closing the batch exactly at the barrier.

Everything in this module runs *inside* the DES timeline; it is ordinary
sim code under the determinism linter (RPR010 included — only the procs
runner may touch real concurrency).
"""

from __future__ import annotations

import typing

from ..analysis.sanitize import EventTrace
from ..core.host import Host
from ..faults import (FaultPlan, InjectedFault, MigrationAborted,
                      Overloaded, RetryExhausted)
from ..net.links import Link
from ..sim.engine import Simulator
from ..toolstack.config import VMConfig
from ..toolstack.migration import SavedImage
from .config import ClusterConfig, host_seed
from .messages import CONTROLLER, ClusterMessage

#: Fault outcomes a node absorbs into counters instead of crashing the
#: epoch loop (same set the chaos campaign runner absorbs).
ABSORBED = (InjectedFault, Overloaded, MigrationAborted, RetryExhausted)


class HostNode:
    """Host ``host_index`` of the cluster, advanced window by window."""

    def __init__(self, config: ClusterConfig, host_index: int):
        self.config = config
        self.host_index = host_index
        self.sim = Simulator()
        self.trace = EventTrace().attach(self.sim)
        image = config.guest_image()
        self._image = image
        plan = None
        if config.fault_rate > 0.0:
            # Per-host fault plan derived from the cluster seed: host i
            # draws from its own stream, so adding a host never perturbs
            # another host's fault schedule.
            plan = FaultPlan.uniform(probability=config.fault_rate,
                                     points=config.fault_points,
                                     seed=host_seed(config.seed,
                                                    host_index))
        self.host = Host(spec=config.host_spec(), variant=config.variant,
                         seed=host_seed(config.seed, host_index),
                         sim=self.sim, host_id=host_index,
                         pool_target=config.pool_target(),
                         shell_memory_kb=image.memory_kb,
                         fault_plan=plan, recovery=config.recovery)
        self._link = Link(self.sim, latency_ms=config.net_latency_ms,
                          bandwidth_mbps=config.net_bandwidth_mbps)
        #: gid -> owner host, from controller ``up`` broadcasts.  May lag
        #: migrations by the control latency; a stale route is a counted
        #: miss, identically on every backend.
        self.directory: typing.Dict[int, int] = {}
        self._gids: typing.List[int] = []
        self._local: typing.Dict[int, object] = {}
        self._epoch = -1
        self._seq = 0
        self._sends: typing.List[ClusterMessage] = []
        self._outbox: typing.List[ClusterMessage] = []
        self._inflight = 0
        self._traffic_remaining = config.requests_for(host_index)
        self.counters: typing.Dict[str, float] = {
            "booted": 0, "create_failed": 0,
            "migrated_in": 0, "migrated_out": 0, "migrate_failed": 0,
            "requests_sent": 0, "served": 0, "missed": 0, "unrouted": 0,
            "responses": 0, "absorbed_faults": 0, "boot_ms_sum": 0.0,
            "latency_ms_sum": 0.0, "latency_ms_max": 0.0,
        }
        self._handlers = {
            "create": self._h_create,
            "migrate_out": self._h_migrate_out,
            "mig_in": self._h_mig_in,
            "up": self._h_up,
            "req": self._h_req,
            "rsp": self._h_rsp,
        }
        # Outbox batches close at the window boundary, via the kernel's
        # drain hook, not at send time: a send is only *in* epoch k once
        # the bounded run for k has completed.
        self.sim.drain_hooks.append(self._on_drain)
        self.sim.process(self._traffic())

    # ------------------------------------------------------------------
    # Epoch-barrier surface (called by the backends)
    # ------------------------------------------------------------------
    def deliver(self, messages: typing.Iterable[ClusterMessage]) -> None:
        """Inject a window's inbound messages at their arrival instants.

        ``messages`` arrive canonically sorted by (epoch, src, seq); two
        messages with the same arrival instant therefore enqueue in
        canonical order, which both backends reproduce exactly.
        """
        sim = self.sim
        dispatch = self._dispatch
        for msg in messages:
            sim.schedule_at(msg.arrive_ms, dispatch, msg, value=msg.token())

    def run_epoch(self, epoch: int, window_end: float) -> dict:
        """Advance through ``[now, window_end)`` and report liveness."""
        self._epoch = epoch
        while True:
            try:
                self.sim.run(until=window_end, inclusive=False)
                break
            except ABSORBED:
                # A fault escaped a background daemon (e.g. the shell
                # pool's replenisher died to an injected hypercall
                # error).  That daemon is gone — a deterministic model
                # degradation — but the host itself keeps serving; the
                # engine keeps the unprocessed tail queued, so resuming
                # the bounded run is well-defined.
                self.counters["absorbed_faults"] += 1
        return {"host": self.host_index,
                "outstanding": self._traffic_remaining + self._inflight,
                "events": self.sim.processed_events}

    def drain_outbox(self) -> typing.List[ClusterMessage]:
        out = self._outbox
        self._outbox = []
        return out

    def summary(self) -> dict:
        """Final per-host record (picklable) for the cluster result."""
        return {"host": self.host_index,
                "digest": self.trace.digest(),
                "events": self.sim.processed_events,
                "sim_ms": self.sim.now,
                "guests": len(self._local),
                "counters": dict(self.counters)}

    def _on_drain(self, _sim: Simulator) -> None:
        if self._sends:
            self._outbox.extend(self._sends)
            self._sends = []

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _send(self, dst: int, kind: str, payload: tuple,
              latency_ms: typing.Optional[float] = None) -> None:
        now = self.sim.now
        if latency_ms is None:
            latency_ms = self.config.net_latency_ms
        self._sends.append(ClusterMessage(
            kind=kind, src=self.host_index, dst=dst, epoch=self._epoch,
            seq=self._seq, send_ms=now, arrive_ms=now + latency_ms,
            payload=payload))
        self._seq += 1

    def _dispatch(self, msg: ClusterMessage) -> None:
        self._handlers[msg.kind](msg)

    # ------------------------------------------------------------------
    # Placement commands
    # ------------------------------------------------------------------
    def _h_create(self, msg: ClusterMessage) -> None:
        (gid,) = msg.payload
        self.sim.process(self._create(gid))

    def _create(self, gid: int):
        vm_config = VMConfig.for_image(self._image, "g%d" % gid)
        try:
            record = yield from self.host.toolstack.create_vm(vm_config,
                                                              boot=True)
        except ABSORBED:
            self.counters["create_failed"] += 1
            self._send(CONTROLLER, "create_failed", (gid,))
            return
        self._local[gid] = record.domain
        self.counters["booted"] += 1
        self.counters["boot_ms_sum"] += record.create_ms + record.boot_ms
        self._send(CONTROLLER, "created", (gid,))

    # ------------------------------------------------------------------
    # Cross-host migration (the Fig 13 path, generalized)
    # ------------------------------------------------------------------
    def _h_migrate_out(self, msg: ClusterMessage) -> None:
        gid, dst = msg.payload
        self.sim.process(self._migrate_out(gid, dst))

    def _migrate_out(self, gid: int, dst: int):
        domain = self._local.pop(gid, None)
        if domain is None:
            self.counters["migrate_failed"] += 1
            self._send(CONTROLLER, "migrate_failed", (gid,))
            return
        vm_config = VMConfig.for_image(self._image, "g%d" % gid)
        try:
            saved = yield from self.host.checkpointer.save(domain,
                                                           vm_config)
        except ABSORBED:
            self.counters["migrate_failed"] += 1
            self._send(CONTROLLER, "migrate_failed", (gid,))
            return
        self.counters["migrated_out"] += 1
        # Stream the checkpoint to the destination: propagation plus
        # serialization on the cluster link.  transfer_ms >= the link
        # latency >= the epoch length, so the lookahead rule holds.
        self._send(dst, "mig_in", (gid, saved.memory_kb),
                   latency_ms=self._link.transfer_ms(saved.memory_kb))

    def _h_mig_in(self, msg: ClusterMessage) -> None:
        gid, memory_kb = msg.payload
        self.sim.process(self._restore(gid, memory_kb))

    def _restore(self, gid: int, memory_kb: int):
        vm_config = VMConfig.for_image(self._image, "g%d" % gid)
        saved = SavedImage(config=vm_config, memory_kb=memory_kb)
        try:
            domain = yield from self.host.checkpointer.restore(saved)
        except ABSORBED:
            self.counters["migrate_failed"] += 1
            self._send(CONTROLLER, "migrate_failed", (gid,))
            return
        self._local[gid] = domain
        self.counters["migrated_in"] += 1
        self._send(CONTROLLER, "migrated", (gid,))

    # ------------------------------------------------------------------
    # Directory updates
    # ------------------------------------------------------------------
    def _h_up(self, msg: ClusterMessage) -> None:
        gid, owner = msg.payload
        if gid not in self.directory:
            self._gids.append(gid)
        self.directory[gid] = owner

    # ------------------------------------------------------------------
    # Open-loop request traffic
    # ------------------------------------------------------------------
    def _traffic(self):
        if self._traffic_remaining <= 0:
            return
        rng = self.host.rng.stream("cluster/traffic")
        start = self.config.traffic_start()
        if start > 0:
            yield self.sim.timeout(start)
        rate = 1.0 / self.config.request_gap_ms
        while self._traffic_remaining > 0:
            yield self.sim.timeout(rng.expovariate(rate))
            self._traffic_remaining -= 1  # noqa: RPR103 -- single-writer counter: exactly one _traffic process exists per node (spawned once in __init__) and nothing else writes it, so no interleaving can clobber the read
            self._fire_request(rng)

    def _fire_request(self, rng) -> None:
        self.counters["requests_sent"] += 1
        gids = self._gids
        if not gids:
            # No guest is up (or known yet): counted, not retried — the
            # open-loop model never blocks on the control plane.
            self.counters["unrouted"] += 1
            return
        gid = gids[rng.randrange(len(gids))]
        owner = self.directory[gid]
        self._inflight += 1
        if owner == self.host_index:
            served = 1 if gid in self._local else 0
            delay = self.config.service_ms if served else 0.0
            self.sim.call_later(delay, self._request_done, self.sim.now,
                                served)
        else:
            self._send(owner, "req", (gid, self.sim.now))

    def _request_done(self, sent_ms: float, served: int) -> None:
        self._inflight -= 1
        self.counters["responses"] += 1
        self.counters["served" if served else "missed"] += 1
        latency = self.sim.now - sent_ms
        self.counters["latency_ms_sum"] += latency
        if latency > self.counters["latency_ms_max"]:
            self.counters["latency_ms_max"] = latency

    def _h_req(self, msg: ClusterMessage) -> None:
        gid, sent_ms = msg.payload
        served = 1 if gid in self._local else 0
        delay = self.config.service_ms if served else 0.0
        self.sim.call_later(delay, self._reply, msg.src, sent_ms, served)

    def _reply(self, src: int, sent_ms: float, served: int) -> None:
        self._send(src, "rsp", (sent_ms, served))

    def _h_rsp(self, msg: ClusterMessage) -> None:
        sent_ms, served = msg.payload
        self._request_done(sent_ms, served)
