"""Deterministic guest placement over controller-side host models.

The controller never inspects host internals — it plans against its own
load model (intended placements in, completion/failure reports out).
Both policies break ties by the lowest host index, so a placement
decision is a pure function of the decision history, never of dict or
set iteration order.
"""

from __future__ import annotations

import typing

#: The supported policies.
POLICIES = ("least-loaded", "first-fit")


class PlacementError(ValueError):
    """An unknown policy or an inconsistent release."""


class Placement:
    """Track intended per-host load and pick targets deterministically."""

    def __init__(self, hosts: int, capacity: int,
                 policy: str = "least-loaded"):
        if policy not in POLICIES:
            raise PlacementError("unknown policy %r; expected one of %s"
                                 % (policy, ", ".join(POLICIES)))
        if hosts < 1:
            raise PlacementError("hosts must be >= 1, got %r" % hosts)
        if capacity < 1:
            raise PlacementError("capacity must be >= 1, got %r" % capacity)
        self.policy = policy
        self.capacity = capacity
        self.load: typing.List[int] = [0] * hosts

    def place(self) -> typing.Optional[int]:
        """Pick a host for one new guest, or ``None`` if all are full.

        ``first-fit`` packs: the lowest-index host with headroom.
        ``least-loaded`` spreads: the minimum load, lowest index on ties.
        """
        load = self.load
        if self.policy == "first-fit":
            for host in range(len(load)):
                if load[host] < self.capacity:
                    load[host] += 1
                    return host
            return None
        best = None
        for host in range(len(load)):
            if load[host] < self.capacity and (
                    best is None or load[host] < load[best]):
                best = host
        if best is not None:
            load[best] += 1
        return best

    def release(self, host: int) -> None:
        """Give a slot back (failed create, lost guest)."""
        if self.load[host] <= 0:
            raise PlacementError("release on host %d with zero load" % host)
        self.load[host] -= 1

    def move(self, src: int, dst: int) -> None:
        """Account a migration from ``src`` to ``dst``."""
        self.release(src)
        self.load[dst] += 1
