"""Cross-host messages and the canonical epoch-barrier ordering.

A :class:`ClusterMessage` is the only thing that crosses a host boundary.
Each one is a flat record of scalars — picklable for the process backend,
hashable into replay digests via :func:`repro.analysis.canonical` — and
carries the coordinates of the determinism contract:

* ``epoch`` — the epoch window in which the sender emitted it;
* ``src`` — the sending host index (:data:`CONTROLLER` for the
  coordinator-side placement controller);
* ``seq`` — the sender's own monotonic counter.

``(epoch, src, seq)`` is a total order over every message in the system,
and it is a pure function of the per-host timelines (which are
deterministic) plus the controller's decisions (which are deterministic).
Delivering each window's messages sorted by that key — no matter which
OS process produced them, or in what order worker pipes were drained —
is what makes the merged cluster timeline independent of the worker
count.  DESIGN.md ("Epoch-barrier determinism contract") spells out the
full argument.
"""

from __future__ import annotations

import dataclasses
import typing

#: Pseudo host index of the coordinator-side controller.  Sorts before
#: every real host in the canonical order, so controller commands for a
#: window are injected ahead of host-to-host traffic arriving in the
#: same window — identically on every backend.
CONTROLLER = -1


@dataclasses.dataclass
class ClusterMessage:
    """One cross-host message (command, migration stream, request, ...).

    ``payload`` is a tuple of scalars (or nested tuples of scalars) so
    the message pickles cheaply and digests canonically.
    """

    kind: str
    src: int
    dst: int
    epoch: int
    seq: int
    send_ms: float
    arrive_ms: float
    payload: tuple = ()

    def key(self) -> typing.Tuple[int, int, int]:
        """The canonical (epoch, src, seq) sort key."""
        return (self.epoch, self.src, self.seq)

    def token(self) -> tuple:
        """The scalar tuple hashed into the receiver's replay digest."""
        return (self.kind, self.epoch, self.src, self.seq, self.payload)

    def to_wire(self) -> tuple:
        """Flatten to a plain tuple for the pipe protocol.

        Pickling bare tuples is several times cheaper than pickling
        dataclass instances, and the coordinator (de)serializes every
        cross-host message once per barrier — this is the procs
        backend's scaling hot path.
        """
        return (self.kind, self.src, self.dst, self.epoch, self.seq,
                self.send_ms, self.arrive_ms, self.payload)


def from_wire(wire: tuple) -> ClusterMessage:
    """Rebuild a :class:`ClusterMessage` from :meth:`to_wire` output."""
    return ClusterMessage(*wire)


def sort_canonical(
        messages: typing.Iterable[ClusterMessage]
) -> typing.List[ClusterMessage]:
    """Order ``messages`` by the canonical (epoch, src, seq) key.

    The key is unique per message (each sender numbers its own ``seq``),
    so the result is a total order with no tie-break left to list order —
    concatenation order across worker pipes cannot leak in.
    """
    return sorted(messages, key=ClusterMessage.key)
