"""repro.cluster — parallel multi-host simulation with epoch barriers.

The cluster layer scales the single-host reproduction out to N simulated
hosts whose DES engines advance independently between deterministic
epoch barriers (conservative parallel DES: the epoch length is the
lookahead, bounded by the minimum cross-host message latency).  Two
execution backends sit behind one API — ``backend="inline"`` (single
process, the semantic reference) and ``backend="procs"`` (one OS process
per worker) — and are required to produce byte-identical cluster
digests; DESIGN.md's "Epoch-barrier determinism contract" section holds
the full argument.

Quickstart::

    from repro.cluster import run_cluster

    result = run_cluster("boot-storm", hosts=8, guests=64,
                         requests=2000, seed=1, backend="procs",
                         workers=4)
    print(result.digest, result.stats["booted"])
"""

from .cluster import (BACKENDS, Cluster, ClusterError, ClusterResult,
                      InlineBackend, REPRODUCER_VERSION,
                      replay_reproducer, run_cluster)
from .config import (ClusterConfig, ClusterConfigError, SCENARIOS,
                     boot_storm, host_seed, migration_churn)
from .controller import Controller
from .messages import CONTROLLER, ClusterMessage, sort_canonical
from .node import HostNode
from .placement import Placement, PlacementError

__all__ = [
    "BACKENDS",
    "CONTROLLER",
    "Cluster",
    "ClusterConfig",
    "ClusterConfigError",
    "ClusterError",
    "ClusterMessage",
    "ClusterResult",
    "Controller",
    "HostNode",
    "InlineBackend",
    "Placement",
    "PlacementError",
    "REPRODUCER_VERSION",
    "SCENARIOS",
    "boot_storm",
    "host_seed",
    "migration_churn",
    "replay_reproducer",
    "run_cluster",
    "sort_canonical",
]
