"""The coordinator-side cluster controller.

The controller is the cluster's control plane: it decides placement,
drives the create ramp, schedules cross-host migrations, and broadcasts
the gid -> host directory.  It runs *at the barriers*, never inside a
host's window: its inputs are the canonical-order report stream
(messages addressed to :data:`CONTROLLER`) and its outputs are commands
stamped with its own (epoch, src=-1, seq) coordinates — so every
decision is a pure function of the barrier history, and both backends
replay it identically.

Command timing honours the lookahead rule by construction: a command
issued at barrier ``B`` arrives no earlier than ``B`` (creates arrive at
their exact scheduled ramp instant inside the next window; migrations
and broadcasts arrive one control latency after the barrier).
"""

from __future__ import annotations

import typing

from .config import ClusterConfig
from .messages import CONTROLLER, ClusterMessage
from .placement import Placement


class Controller:
    """Barrier-driven placement / migration / directory authority."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        spec = config.host_spec()
        image = config.guest_image()
        # Memory-derived capacity: what the host can hold beyond dom0 and
        # the pre-provisioned shell pool.
        free_kb = (spec.memory_kb - spec.dom0_memory_kb
                   - config.pool_target() * image.memory_kb)
        capacity = max(1, free_kb // image.memory_kb)
        self.placement = Placement(config.hosts, capacity,
                                   policy=config.placement)
        self._create_start = config.create_start()
        self._next_gid = 0
        self._seq = 0
        self._outstanding_creates = 0
        #: gid -> intended host, recorded at issue time.
        self.placed: typing.Dict[int, int] = {}
        #: gid -> owner host, updated on completion reports only.
        self.directory: typing.Dict[int, int] = {}
        #: Booted gids per host, in completion-report order.
        self._by_host: typing.List[typing.List[int]] = [
            [] for _ in range(config.hosts)]
        self._migrations_left = config.migrations
        self._migrating: typing.Optional[tuple] = None
        #: Controller-exclusive tallies; per-host boot/request counters
        #: live on the nodes and are merged by :class:`Cluster` (the key
        #: sets are disjoint so the merge never double-counts).
        self.stats: typing.Dict[str, int] = {
            "unplaced": 0, "migrations_done": 0, "migrations_failed": 0,
        }

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """No commands left to issue and none awaiting completion."""
        return (self._next_gid >= self.config.guests
                and self._outstanding_creates == 0
                and self._migrating is None
                and self._migrations_left == 0)

    def _t(self, gid: int) -> float:
        """The ramp: guest ``gid``'s exact create-arrival instant."""
        return self._create_start + gid * self.config.create_spacing_ms

    def _emit(self, epoch: int, barrier_ms: float, dst: int, kind: str,
              payload: tuple, arrive_ms: float) -> ClusterMessage:
        msg = ClusterMessage(kind=kind, src=CONTROLLER, dst=dst,
                             epoch=epoch, seq=self._seq,
                             send_ms=barrier_ms, arrive_ms=arrive_ms,
                             payload=payload)
        self._seq += 1
        return msg

    # ------------------------------------------------------------------
    def barrier(self, epoch: int, barrier_ms: float,
                inbox: typing.List[ClusterMessage]
                ) -> typing.List[ClusterMessage]:
        """Process one barrier: consume reports, issue commands.

        ``inbox`` holds this epoch's controller-addressed messages in
        canonical order.  The first call uses ``epoch=-1`` /
        ``barrier_ms=0.0`` with an empty inbox to seed the ramp.
        """
        out: typing.List[ClusterMessage] = []
        for msg in inbox:
            self._consume(msg, epoch, barrier_ms, out)
        self._issue_creates(epoch, barrier_ms, out)
        self._issue_migration(epoch, barrier_ms, out)
        return out

    # ------------------------------------------------------------------
    def _consume(self, msg: ClusterMessage, epoch: int, barrier_ms: float,
                 out: typing.List[ClusterMessage]) -> None:
        kind = msg.kind
        if kind == "created":
            (gid,) = msg.payload
            self._outstanding_creates -= 1
            self.directory[gid] = msg.src
            self._by_host[msg.src].append(gid)
            self._broadcast_up(gid, msg.src, epoch, barrier_ms, out)
        elif kind == "create_failed":
            (gid,) = msg.payload
            self._outstanding_creates -= 1
            self.placement.release(self.placed[gid])
        elif kind == "migrated":
            (gid,) = msg.payload
            _mgid, src, dst = self._migrating
            self._by_host[src].remove(gid)
            self._by_host[dst].append(gid)
            self.directory[gid] = dst
            self._migrating = None
            self.stats["migrations_done"] += 1
            self._broadcast_up(gid, dst, epoch, barrier_ms, out)
        elif kind == "migrate_failed":
            (gid,) = msg.payload
            _mgid, src, dst = self._migrating
            # The guest is gone (it was torn down for the stream that
            # never completed): drop it from every model.
            self._by_host[src].remove(gid)
            del self.directory[gid]
            self.placement.move(dst, src)  # undo the intended move...
            self.placement.release(src)    # ...then drop the lost guest.
            self._migrating = None
            self.stats["migrations_failed"] += 1
        else:
            raise ValueError("controller cannot consume %r" % (kind,))

    def _broadcast_up(self, gid: int, owner: int, epoch: int,
                      barrier_ms: float,
                      out: typing.List[ClusterMessage]) -> None:
        arrive = barrier_ms + self.config.net_latency_ms
        for host in range(self.config.hosts):
            out.append(self._emit(epoch, barrier_ms, host, "up",
                                  (gid, owner), arrive))

    # ------------------------------------------------------------------
    def _issue_creates(self, epoch: int, barrier_ms: float,
                       out: typing.List[ClusterMessage]) -> None:
        cutoff = barrier_ms + self.config.epoch_ms
        while self._next_gid < self.config.guests and \
                self._t(self._next_gid) < cutoff:
            gid = self._next_gid
            self._next_gid += 1
            host = self.placement.place()
            if host is None:
                self.stats["unplaced"] += 1
                continue
            self.placed[gid] = host
            self._outstanding_creates += 1
            out.append(self._emit(epoch, barrier_ms, host, "create",
                                  (gid,), self._t(gid)))

    def _issue_migration(self, epoch: int, barrier_ms: float,
                         out: typing.List[ClusterMessage]) -> None:
        if (self._migrations_left <= 0 or self._migrating is not None
                or self._next_gid < self.config.guests
                or self._outstanding_creates > 0):
            return
        src = self._most_loaded()
        if src is None:  # nothing booted anywhere: churn is impossible
            self._migrations_left = 0
            return
        dst = self._least_loaded_except(src)
        if dst is None:
            self._migrations_left = 0
            return
        gid = min(self._by_host[src])
        self._migrations_left -= 1
        self._migrating = (gid, src, dst)
        self.placement.move(src, dst)
        out.append(self._emit(
            epoch, barrier_ms, src, "migrate_out", (gid, dst),
            barrier_ms + self.config.net_latency_ms))

    def _most_loaded(self) -> typing.Optional[int]:
        best = None
        for host in range(self.config.hosts):
            count = len(self._by_host[host])
            if count > 0 and (best is None
                              or count > len(self._by_host[best])):
                best = host
        return best

    def _least_loaded_except(self, exclude: int) -> typing.Optional[int]:
        best = None
        for host in range(self.config.hosts):
            if host == exclude:
                continue
            if best is None or \
                    len(self._by_host[host]) < len(self._by_host[best]):
                best = host
        return best
