"""Deterministic, named random streams.

Every stochastic component (XenStore transaction jitter, Docker start-time
noise, client arrival processes, ...) draws from its own named stream so
that adding randomness to one subsystem never perturbs another and every
experiment is bit-reproducible from a single seed.
"""

from __future__ import annotations

import hashlib
import random  # noqa: RPR001 -- the one sanctioned randomness source
import typing


class RngStream(random.Random):
    """A ``random.Random`` seeded from ``(seed, name)`` via SHA-256."""

    #: Process-wide construction observers (``stream_created(seed, name)``)
    #: used by :class:`repro.analysis.sanitize.Sanitizer` to detect two
    #: components deriving *correlated* streams from the same pair.
    observers: typing.List = []

    def __init__(self, seed: int, name: str):
        digest = hashlib.sha256(
            ("%d/%s" % (seed, name)).encode("utf-8")).digest()
        super().__init__(int.from_bytes(digest[:8], "big"))
        self.name = name
        self.base_seed = seed
        for observer in list(self.observers):
            observer.stream_created(seed, name)


class RngRegistry:
    """Factory handing out one :class:`RngStream` per component name."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict = {}

    def stream(self, name: str) -> RngStream:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = RngStream(self.seed, name)
        return self._streams[name]
