"""Generator-based simulation processes.

A process is a Python generator that yields *wait targets*:

* an :class:`~repro.sim.events.Event` — the process resumes when the event
  triggers, receiving its value (or having its exception thrown in);
* another :class:`Process` — the process joins it;
* a number — shorthand for ``sim.timeout(number)``.

A process is itself an event: it triggers when the generator returns (the
return value becomes the event value) or raises.
"""

from __future__ import annotations

import typing

from .events import Event, Interrupt, PENDING

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulator


class Process(Event):
    """Drives a generator through the simulation, acting as its own event."""

    __slots__ = ("_generator", "name", "_waiting_on", "daemon")

    def __init__(self, sim: "Simulator", generator: typing.Generator,
                 name: typing.Optional[str] = None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator, got %r"
                            % (generator,))
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: typing.Optional[Event] = None
        #: Perpetual background services (pool replenishers, pollers) set
        #: this so the end-of-run deadlock sanitizer does not flag them.
        self.daemon = False
        if sim.sanitizer is not None:
            sim.sanitizer.track_process(self)
        if sim.witness is not None:
            sim.witness.on_spawn(self)
        # Kick off on the next queue step so creation order is respected.
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        sim._push(bootstrap)
        bootstrap.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        # Detach from whatever the process was waiting on; the stale event's
        # callback becomes a no-op via the generation check below.
        kick = Event(self.sim)
        kick._ok = False
        kick._value = Interrupt(cause)
        kick.defused = True
        self._waiting_on = kick
        self.sim._push(kick)
        kick.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            return  # stale wakeup from an event we stopped waiting on
        self._waiting_on = None
        # Expose this process as the running one while its generator
        # executes (restored on exit so nested resumptions — a process
        # succeeding and synchronously waking its joiner — stay correct).
        # The span tracer keys parent/child nesting on it.
        prev = self.sim.active_process
        self.sim.active_process = self
        witness = self.sim.witness
        if witness is not None:
            witness.on_wake(self, event)
        try:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event.defused = True
                    target = self._generator.throw(
                        typing.cast(BaseException, event._value))
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return
        finally:
            self.sim.active_process = prev
        self._wait_for(target)

    def _wait_for(self, target: object) -> None:
        if isinstance(target, (int, float)):
            try:
                target = self.sim.timeout(target)
            except ValueError as exc:
                # A negative delay is the *process's* bug: fail it rather
                # than crashing the whole simulation run loop.
                self._generator.close()
                self.fail(exc)
                return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(TypeError(
                "process %r yielded %r; expected an Event, Process or a "
                "numeric delay" % (self.name, target)))
            return
        if target.sim is not self.sim:
            self.fail(ValueError("yielded event belongs to another "
                                 "simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)
