"""Generator-based simulation processes.

A process is a Python generator that yields *wait targets*:

* an :class:`~repro.sim.events.Event` — the process resumes when the event
  triggers, receiving its value (or having its exception thrown in);
* another :class:`Process` — the process joins it;
* a number — shorthand for ``sim.timeout(number)``.

A process is itself an event: it triggers when the generator returns (the
return value becomes the event value) or raises.

Resume model (see DESIGN.md, "The continuation-table resume model"): a
blocked process parks itself in the waited event's ``_cont`` continuation
slot whenever it would have been the event's first subscriber; the run
loop's trampoline resumes it inline.  Bootstrap and interrupt kicks are
pooled :class:`~repro.sim.events._Cell` events rather than fresh ``Event``
allocations.  Both are pure host-cost changes — the event timeline (and so
the replay digest) is identical to the seed kernel's.
"""

from __future__ import annotations

import typing

from heapq import heappush

from .events import Event, Interrupt, PendingInterrupt, PENDING, _Cell

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulator


class Process(Event):
    """Drives a generator through the simulation, acting as its own event."""

    __slots__ = ("_generator", "name", "_waiting_on", "daemon")

    def __init__(self, sim: "Simulator", generator: typing.Generator,
                 name: typing.Optional[str] = None):
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator, got %r"
                            % (generator,))
        # Flattened Event.__init__ (spawn is hot in fan-out workloads).
        self.sim = sim
        self.callbacks: typing.Optional[list] = []
        self._value: object = PENDING
        self._ok: typing.Optional[bool] = None
        self.defused = False
        self._cont = None
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: Perpetual background services (pool replenishers, pollers) set
        #: this so the end-of-run deadlock sanitizer does not flag them.
        self.daemon = False
        if sim.sanitizer is not None:
            sim.sanitizer.track_process(self)
        if sim.witness is not None:
            sim.witness.on_spawn(self)
        # Kick off on the next queue step so creation order is respected.
        # The bootstrap is a pooled cell carried in our own continuation
        # slot; ``_waiting_on`` points at it so that an interrupt arriving
        # before the first resume can detach it like any abandoned wait.
        pool = sim._cell_pool
        if pool:
            cell = pool.pop()
            cell.callbacks = ()
            cell._value = None
            cell._ok = True
            cell.defused = False
        else:
            cell = _Cell(sim)
        cell._cont = self
        self._waiting_on: typing.Optional[Event] = cell
        # Inlined ``sim._push(cell)``: spawn cost shows directly in
        # fan-out throughput, and the bootstrap always lands at ``now``.
        now = sim._now
        buckets = sim._buckets
        bucket = buckets.get(now)
        if bucket is None:
            buckets[now] = [cell]
            heappush(sim._times, now)
        else:
            bucket.append(cell)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Raises :class:`~repro.sim.events.PendingInterrupt` if a previous
        interrupt has not been delivered yet: the first interrupt wins,
        and silently replacing its cause (what the seed kernel did) would
        drop it on the floor.
        """
        if self._value is not PENDING:
            raise RuntimeError("cannot interrupt a finished process")
        waiting = self._waiting_on
        if waiting is not None:
            if waiting.__class__ is _Cell and waiting._ok is False:
                raise PendingInterrupt(
                    "process %r already has an undelivered interrupt; the "
                    "first interrupt's cause wins" % self.name)
            # Detach from the abandoned wait so a long-lived shared event
            # does not accumulate dead resume hooks (and the stale event,
            # if it ever fires, finds nothing to wake).
            if waiting._cont is self:
                waiting._cont = None
            else:
                cbs = waiting.callbacks
                if cbs.__class__ is list:
                    try:
                        cbs.remove(self._resume)
                    except ValueError:
                        pass
        pool = self.sim._cell_pool
        if pool:
            kick = pool.pop()
            kick.callbacks = ()
        else:
            kick = _Cell(self.sim)
        kick._ok = False
        kick._value = Interrupt(cause)
        kick.defused = True
        kick._cont = self
        self._waiting_on = kick
        self.sim._push(kick)

    def _resume(self, event: Event) -> None:
        # The run loop's trampoline inlines the hot path of this method
        # (continuation dispatch with no witness attached); this full
        # version remains the single place that defines the semantics —
        # staleness, witness hooks, nested-resume bookkeeping — and is
        # used for callback-list wakeups and every non-fast case.
        if not self.is_alive:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            return  # stale wakeup from an event we stopped waiting on
        self._waiting_on = None
        # Expose this process as the running one while its generator
        # executes (restored on exit so nested resumptions — a process
        # succeeding and synchronously waking its joiner — stay correct).
        # The span tracer keys parent/child nesting on it.
        prev = self.sim.active_process
        self.sim.active_process = self
        witness = self.sim.witness
        if witness is not None:
            witness.on_wake(self, event)
        try:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event.defused = True
                    target = self._generator.throw(
                        typing.cast(BaseException, event._value))
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return
        finally:
            self.sim.active_process = prev
        self._wait_for(target)

    def _wait_for(self, target: object) -> None:
        if isinstance(target, Event):
            if target.sim is not self.sim:
                # Close the generator first so ``finally`` blocks in the
                # guest body run, exactly like the sibling error paths.
                self._generator.close()
                self.fail(ValueError("yielded event belongs to another "
                                     "simulator"))
                return
            self._waiting_on = target
            cbs = target.callbacks
            if target._cont is None and cbs.__class__ is list and not cbs:
                # First subscriber: park in the continuation slot instead
                # of allocating a bound method onto the callback list.
                target._cont = self
            else:
                target.add_callback(self._resume)
            return
        if isinstance(target, (int, float)):
            try:
                target = self.sim.timeout(target)
            except ValueError as exc:
                # A negative delay is the *process's* bug: fail it rather
                # than crashing the whole simulation run loop.
                self._generator.close()
                self.fail(exc)
                return
            # A fresh timeout has no subscribers yet; intern directly.
            self._waiting_on = target
            target._cont = self
            return
        self._generator.close()
        self.fail(TypeError(
            "process %r yielded %r; expected an Event, Process or a "
            "numeric delay" % (self.name, target)))
