"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence with an optional value.  Other
entities (processes, resources) register callbacks on an event; when the
event is *triggered* (via :meth:`Event.succeed` or :meth:`Event.fail`) it is
placed on the simulator queue and its callbacks run when the simulator
reaches it.  The design intentionally mirrors the well-known SimPy kernel so
that toolstack code reads like straight-line prose with ``yield`` points.

Fast-path notes (the invariants are spelled out in DESIGN.md under
"Modeled cost vs host cost"):

* Every kernel event type uses ``__slots__``.  ``Event`` keeps a
  ``__weakref__`` slot because the runtime sanitizer tracks processes
  (and anything else built on ``Event``) through ``WeakSet``\\ s.
* ``Event.callbacks`` entries are either a plain callable invoked as
  ``callback(event)`` or a ``(callback, args)`` pair invoked as
  ``callback(*args)`` — the closure-free form used by
  :meth:`repro.sim.engine.Simulator.schedule`, which avoids allocating a
  lambda per scheduled call.  ``callbacks`` may also *be* a single bare
  ``(callback, args)`` pair (no list at all) on fire-and-forget
  ``call_later`` events.  The dispatch lives in the simulator loop;
  :meth:`Event.add_callback` promotes a bare pair to a list if a
  subscriber ever shows up.
* ``Timeout`` carries a ``recycle`` flag so the simulator can pool
  fire-and-forget timeouts created by ``call_later`` (never ones handed
  to user code).
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulator

#: Sentinel for "this event has not been triggered yet".
PENDING = object()


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*; calling :meth:`succeed` or :meth:`fail` triggers
    them, after which ``value`` holds the result (or the exception).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused",
                 "__weakref__")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: typing.Optional[list] = []
        self._value: object = PENDING
        self._ok: typing.Optional[bool] = None
        #: Set to True by a handler to mark a failure as dealt with, which
        #: stops the simulator from escalating it to the caller of ``run``.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise SimulationError("event is not yet triggered")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.event_double_trigger(self)
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        witness = self.sim.witness
        if witness is not None:
            witness.on_trigger(self)
        self.sim._push(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.event_double_trigger(self)
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        witness = self.sim.witness
        if witness is not None:
            witness.on_trigger(self)
        self.sim._push(self)
        return self

    def add_callback(self, callback) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs immediately;
        this keeps late subscribers (e.g. joining a finished process) safe.
        """
        cbs = self.callbacks
        if cbs is None:
            callback(self)
        elif cbs.__class__ is tuple:
            # A bare (callback, args) pair from the fire-and-forget fast
            # path; promote it to a regular list to take the subscriber.
            self.callbacks = [cbs, callback]
        else:
            cbs.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if self._value is PENDING else (
            "ok" if self._ok else "failed")
        return "<{} {} at {:#x}>".format(type(self).__name__, state, id(self))


class Timeout(Event):
    """An event that succeeds automatically after a fixed delay."""

    __slots__ = ("delay", "recycle")

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        if delay < 0:
            raise ValueError("timeout delay must be >= 0, got %r" % delay)
        super().__init__(sim)
        self.delay = delay
        #: Pool eligibility: only ``Simulator.call_later`` timeouts — which
        #: are never visible to user code — are recycled by the run loop.
        self.recycle = False
        self._ok = True
        self._value = value
        sim._push(self, delay=delay)


class Condition(Event):
    """Base for composite events over a list of child events."""

    __slots__ = ("events", "_remaining", "_values")

    #: Subclasses that can build their result dict one child at a time
    #: (see AllOf) set this; the dict is then prefilled in child order so
    #: its insertion order — which the replay digest canonicalizes —
    #: matches what a full `_collect()` walk would produce.
    _incremental = False

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._values: typing.Optional[dict] = None
        if not self.events:
            self.succeed({})
            return
        if self._incremental:
            self._values = dict.fromkeys(self.events, PENDING)
        self._remaining = len(self.events)
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self) -> dict:
        """Map each finished child event to its value."""
        return {
            event: event._value
            for event in self.events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Succeeds when every child event has succeeded.

    Collection is *incremental*: each ``_check`` drops the child's value
    into the prefilled dict in O(1), so an ``AllOf`` over N children costs
    O(N) total instead of the O(N) re-walk per trigger (O(N^2) total) the
    naive ``_collect`` path pays.  By the time ``_remaining`` hits zero
    every child has been processed successfully, so the prefilled dict is
    exactly ``_collect()``'s output — same keys, same insertion order.
    """

    __slots__ = ()

    _incremental = True

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event.defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self._values[event] = event._value
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._values)


class AnyOf(Condition):
    """Succeeds as soon as one child event succeeds.

    Unlike :class:`AllOf` this keeps the collect-at-trigger walk: when
    several children are already processed at construction time (or fire
    at the same instant), the result must include *all* of them, not just
    the one whose ``_check`` ran first — incremental collection would
    change the payload, and with it the replay digest.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event.defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self.succeed(self._collect())
