"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence with an optional value.  Other
entities (processes, resources) register callbacks on an event; when the
event is *triggered* (via :meth:`Event.succeed` or :meth:`Event.fail`) it is
placed on the simulator queue and its callbacks run when the simulator
reaches it.  The design intentionally mirrors the well-known SimPy kernel so
that toolstack code reads like straight-line prose with ``yield`` points.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulator

#: Sentinel for "this event has not been triggered yet".
PENDING = object()


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*; calling :meth:`succeed` or :meth:`fail` triggers
    them, after which ``value`` holds the result (or the exception).
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: typing.Optional[list] = []
        self._value: object = PENDING
        self._ok: typing.Optional[bool] = None
        #: Set to True by a handler to mark a failure as dealt with, which
        #: stops the simulator from escalating it to the caller of ``run``.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise SimulationError("event is not yet triggered")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.event_double_trigger(self)
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._push(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.event_double_trigger(self)
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._push(self)
        return self

    def add_callback(self, callback) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs immediately;
        this keeps late subscribers (e.g. joining a finished process) safe.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if self._value is PENDING else (
            "ok" if self._ok else "failed")
        return "<{} {} at {:#x}>".format(type(self).__name__, state, id(self))


class Timeout(Event):
    """An event that succeeds automatically after a fixed delay."""

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        if delay < 0:
            raise ValueError("timeout delay must be >= 0, got %r" % delay)
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._push(self, delay=delay)


class Condition(Event):
    """Base for composite events over a list of child events."""

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed(self._collect())
            return
        self._remaining = len(self.events)
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self) -> dict:
        """Map each finished child event to its value."""
        return {
            event: event._value
            for event in self.events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Succeeds when every child event has succeeded."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Succeeds as soon as one child event succeeds."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self.succeed(self._collect())
