"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence with an optional value.  Other
entities (processes, resources) register callbacks on an event; when the
event is *triggered* (via :meth:`Event.succeed` or :meth:`Event.fail`) it is
placed on the simulator queue and its callbacks run when the simulator
reaches it.  The design intentionally mirrors the well-known SimPy kernel so
that toolstack code reads like straight-line prose with ``yield`` points.

Fast-path notes (the invariants are spelled out in DESIGN.md under
"Modeled cost vs host cost" and "The continuation-table resume model"):

* Every kernel event type uses ``__slots__``.  ``Event`` keeps a
  ``__weakref__`` slot because the runtime sanitizer tracks processes
  (and anything else built on ``Event``) through ``WeakSet``\\ s.
* ``Event.callbacks`` entries are either a plain callable invoked as
  ``callback(event)`` or a ``(callback, args)`` pair invoked as
  ``callback(*args)`` — the closure-free form used by
  :meth:`repro.sim.engine.Simulator.schedule`, which avoids allocating a
  lambda per scheduled call.  ``callbacks`` may also *be* a single bare
  ``(callback, args)`` pair (no list at all) on fire-and-forget
  ``call_later`` events.  The dispatch lives in the simulator loop;
  :meth:`Event.add_callback` promotes a bare pair to a list if a
  subscriber ever shows up.
* ``Event._cont`` is the **continuation slot**: when exactly one
  :class:`~repro.sim.process.Process` waits on the event and no other
  subscriber got there first, the process is parked in the slot instead
  of appending a bound ``_resume`` method to ``callbacks``.  The run
  loop resumes the slot *before* any listed callbacks, which is exactly
  the subscription order the callback list would have preserved, so the
  timeline is unchanged — a blocked process just costs one pointer
  store instead of a bound-method allocation plus a list append.
  ``interrupt()`` detaches by clearing the slot, so an abandoned wait
  leaves nothing behind (no dead-callback accumulation).
* ``Timeout`` carries a ``recycle`` flag so the simulator can pool
  fire-and-forget timeouts created by ``call_later`` (never ones handed
  to user code).  :class:`_Cell` is the same idea for the kernel's own
  bootstrap/kick events: a pooled, never-user-visible event whose class
  ``__name__`` deliberately reads "Event" so replay digests hash the
  same type name the seed kernel's plain bootstrap ``Event`` produced.
"""

from __future__ import annotations

import typing
from heapq import heappush

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulator

#: Sentinel for "this event has not been triggered yet".
PENDING = object()


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class PendingInterrupt(SimulationError):
    """A second ``interrupt()`` raced an undelivered first one.

    An interrupt is delivered as a kick event on the simulator queue; until
    that kick is processed the target has not yet observed the first
    :class:`Interrupt`.  The seed kernel silently *replaced* the pending
    kick in this window, dropping the first interrupt's cause on the floor.
    The defined semantics are now: the first interrupt wins, and a second
    call before delivery raises this error so the caller knows its cause
    was not (and will never be) delivered.
    """


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*; calling :meth:`succeed` or :meth:`fail` triggers
    them, after which ``value`` holds the result (or the exception).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused", "_cont",
                 "__weakref__")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: typing.Optional[list] = []
        self._value: object = PENDING
        self._ok: typing.Optional[bool] = None
        #: Set to True by a handler to mark a failure as dealt with, which
        #: stops the simulator from escalating it to the caller of ``run``.
        self.defused = False
        #: Continuation slot: the single Process parked on this event, or
        #: None.  Filled only when the process would have been the first
        #: (and so far only) subscriber; the run loop resumes it before the
        #: ``callbacks`` list, preserving subscription order exactly.
        self._cont = None

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise SimulationError("event is not yet triggered")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.event_double_trigger(self)
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        witness = self.sim.witness
        if witness is not None:
            witness.on_trigger(self)
        self.sim._push(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.event_double_trigger(self)
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        witness = self.sim.witness
        if witness is not None:
            witness.on_trigger(self)
        self.sim._push(self)
        return self

    def add_callback(self, callback) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs immediately;
        this keeps late subscribers (e.g. joining a finished process) safe.
        """
        cbs = self.callbacks
        if cbs is None:
            callback(self)
        elif cbs.__class__ is tuple:
            # A bare (callback, args) pair from the fire-and-forget fast
            # path; promote it to a regular list to take the subscriber.
            # (An empty tuple — a fresh pooled _Cell — holds no pair.)
            self.callbacks = [cbs, callback] if cbs else [callback]
        else:
            cbs.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if self._value is PENDING else (
            "ok" if self._ok else "failed")
        return "<{} {} at {:#x}>".format(type(self).__name__, state, id(self))


class Timeout(Event):
    """An event that succeeds automatically after a fixed delay."""

    __slots__ = ("delay", "recycle")

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        # Flattened constructor (no super() chain): a timeout per blocked
        # process is the single hottest allocation in process-shaped
        # workloads, and the one-dict-lookup super() dispatch plus the
        # second function frame are measurable there.
        if delay < 0:
            raise ValueError("timeout delay must be >= 0, got %r" % delay)
        self.sim = sim
        self.callbacks = []
        self.defused = False
        self._cont = None
        self.delay = delay
        #: Pool eligibility: only ``Simulator.call_later`` timeouts — which
        #: are never visible to user code — are recycled by the run loop.
        self.recycle = False
        self._ok = True
        self._value = value
        # Inlined ``sim._push(self, delay=delay)``: one dict probe plus a
        # list append, without the extra method frame (see the engine
        # module docstring, "Queue representation").
        when = sim._now + delay
        buckets = sim._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [self]
            heappush(sim._times, when)
        else:
            bucket.append(self)


class _Cell(Event):
    """A pooled kernel-internal event: process bootstrap and interrupt kicks.

    The seed kernel allocated a fresh pre-triggered ``Event`` for every
    process start ("bootstrap") and every ``interrupt()`` ("kick").  Cells
    replace both: they live on ``Simulator._cell_pool``, are recognized by
    the run loop (``event.__class__ is _Cell``) and recycled after
    dispatch, and are *never* visible to user code — a process's
    ``_waiting_on`` points at one only until the first resume delivers it.

    Cells never go through ``succeed``/``fail``; their ``_ok``/``_value``
    fields are assigned directly, exactly as the seed kernel assigned its
    bootstrap events, so neither the sanitizer's double-trigger check nor
    the RaceWitness ``on_trigger`` hook ever observes one.

    The class ``__name__`` is reassigned to ``"Event"`` below so that
    replay digests — which hash ``type(event).__name__`` per processed
    event — stay byte-identical to the frozen reference kernel's plain
    bootstrap/kick ``Event`` records.  The reference kernel uses the same
    documented shadowing trick for its own subclasses.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # Empty tuple, not a list: cells normally take no subscribers, and
        # the immutable singleton lets pool reuse skip reallocating it.
        # add_callback() promotes to a list if user code ever joins one
        # mid-flight (it cannot today; belt and braces).
        self.callbacks = ()
        self._value = None
        self._ok = True
        self.defused = False
        self._cont = None


_Cell.__name__ = "Event"
_Cell.__qualname__ = "Event"


class Condition(Event):
    """Base for composite events over a list of child events."""

    __slots__ = ("events", "_remaining", "_values")

    #: Subclasses that can build their result dict one child at a time
    #: (see AllOf) set this; the dict is then prefilled in child order so
    #: its insertion order — which the replay digest canonicalizes —
    #: matches what a full `_collect()` walk would produce.
    _incremental = False

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._values: typing.Optional[dict] = None
        if not self.events:
            self.succeed({})
            return
        if self._incremental:
            self._values = dict.fromkeys(self.events, PENDING)
        self._remaining = len(self.events)
        # Inlined add_callback with the bound method hoisted: subscribing
        # to N children otherwise allocates N bound ``_check`` methods and
        # pays N method-call frames.  Semantics are identical — already
        # processed children run immediately, bare pairs are promoted.
        check = self._check
        for event in self.events:
            cbs = event.callbacks
            if cbs is None:
                check(event)
            elif cbs.__class__ is list:
                cbs.append(check)
            else:
                event.callbacks = [cbs, check] if cbs else [check]

    def _collect(self) -> dict:
        """Map each finished child event to its value."""
        return {
            event: event._value
            for event in self.events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Succeeds when every child event has succeeded.

    Collection is *incremental*: each ``_check`` drops the child's value
    into the prefilled dict in O(1), so an ``AllOf`` over N children costs
    O(N) total instead of the O(N) re-walk per trigger (O(N^2) total) the
    naive ``_collect`` path pays.  By the time ``_remaining`` hits zero
    every child has been processed successfully, so the prefilled dict is
    exactly ``_collect()``'s output — same keys, same insertion order.
    """

    __slots__ = ()

    _incremental = True

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event.defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self._values[event] = event._value
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._values)


class AnyOf(Condition):
    """Succeeds as soon as one child event succeeds.

    Unlike :class:`AllOf` this keeps the collect-at-trigger walk: when
    several children are already processed at construction time (or fire
    at the same instant), the result must include *all* of them, not just
    the one whose ``_check`` ran first — incremental collection would
    change the payload, and with it the replay digest.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event.defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self.succeed(self._collect())
