"""The discrete-event simulation core.

:class:`Simulator` owns the event queue and the simulated clock.  All times
in the library are **milliseconds of simulated time** expressed as floats;
this matches the units the LightVM paper reports (boot times of 2.3 ms,
migration times of 60 ms, and so on).

The kernel is a compact SimPy-style design: events are pushed onto a heap
keyed by (time, insertion order); :meth:`Simulator.run` pops them in order
and invokes their callbacks.  Processes (see :mod:`repro.sim.process`) are
generators that yield events and are resumed by callbacks.

**Determinism contract.**  The heap key is ``(time, insertion order)``
and nothing else: events scheduled for the same simulated instant are
processed in exactly the order they were pushed, every run.  Nothing in
the kernel may break ties by hash order, object identity (``id()``), or
any other per-process value — that contract is what makes a ``(seed,
config)`` pair replay bit-identically, and it is machine-checked by
:mod:`repro.analysis` (the ``repro lint`` rules and the dual-run digest
checker).  Two opt-in hooks support that checking: ``sanitizer``
(runtime hazard detection) and ``trace`` (streaming timeline digest);
both default to ``None`` and cost one identity check per event when
unused.

**Fast-path invariants.**  The run loop is tuned (hot attributes bound to
locals, same-instant events drained in a batch, ``call_later`` timeouts
pooled) under invariants that ``tests/test_reference_kernel.py`` proves
against the naive seed kernel via byte-identical replay digests:

* delays are never negative, so a callback can only push events at the
  current instant or later — draining everything at the head timestamp
  before re-checking ``until`` cannot skip a stop point, and same-instant
  pushes join the batch in insertion order exactly as the one-at-a-time
  loop would process them;
* the ``trace``/``sanitizer``/``tracer`` hooks are attached before
  ``run()`` is entered, never swapped mid-run (they are rebound once per
  timestamp batch, not per event);
* pooled timeouts are only ever created by :meth:`call_later`, which
  returns ``None`` — user code cannot hold a reference to a recycled
  event, so reuse is unobservable.
"""

from __future__ import annotations

import heapq
import itertools
import typing

from .events import AllOf, AnyOf, Event, SimulationError, Timeout
from .process import Process

#: Upper bound on pooled ``call_later`` timeouts kept for reuse; beyond
#: this the extras are dropped to the garbage collector.
_TIMEOUT_POOL_CAP = 256


class _StopFlag:
    """Callback object marking the ``until`` event as processed.

    A tiny class instead of a closure: the run loop registers exactly one
    per ``run(until=event)`` call, and the kernel keeps itself free of
    per-event closure allocation (lint rule RPR008).
    """

    __slots__ = ("hit",)

    def __init__(self):
        self.hit = False

    def __call__(self, _event) -> None:
        self.hit = True


class Simulator:
    """A discrete-event simulator with a millisecond float clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: list = []
        self._order = itertools.count()
        self._timeout_pool: list = []
        #: Number of events processed so far (for diagnostics/tests).
        self.processed_events = 0
        #: Optional :class:`repro.analysis.sanitize.Sanitizer` hook.
        self.sanitizer = None
        #: Optional :class:`repro.analysis.sanitize.EventTrace` hook.
        self.trace = None
        #: Optional :class:`repro.trace.Tracer` hook (span recording).
        #: Like the two above it is timeline-read-only: attaching one
        #: must never change the event schedule.
        self.tracer = None
        #: Optional :class:`repro.analysis.witness.RaceWitness` hook
        #: (vector-clock happens-before tracking).  Timeline-read-only
        #: like the three above.
        self.witness = None
        #: The :class:`Process` whose generator is currently executing
        #: (``None`` between resumptions).  Maintained by the process
        #: machinery; the tracer keys its open-span stacks on it.
        self.active_process = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event that succeeds when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event that succeeds when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def schedule(self, delay: float, callback, *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` ms; returns the event.

        Closure-free: the ``(callback, args)`` pair is stored directly on
        the event's callback list and dispatched by the run loop, instead
        of allocating a wrapper lambda per call.
        """
        event = Timeout(self, delay)
        event.callbacks.append((callback, args))
        return event

    def call_later(self, delay: float, callback, *args) -> None:
        """Fire-and-forget :meth:`schedule`: no event handle is returned.

        Because the caller cannot observe the event, the run loop recycles
        the :class:`Timeout` object through a small pool — per-tick timer
        traffic (e.g. the CPU scheduler's quantum timers) then allocates
        nothing in steady state.  Use :meth:`schedule` whenever the event
        handle is needed.
        """
        if delay < 0:
            raise ValueError("timeout delay must be >= 0, got %r" % delay)
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
            # A recycled timeout's state is known-clean: tuple-form
            # callbacks never expose the event object, so nothing could
            # have touched _ok (True), _value (None) or defused (False)
            # since the run loop dispatched it.  Only the callback pair,
            # the recycle flag and the queue entry need refreshing.
            event.delay = delay
            event.callbacks = (callback, args)
            event.recycle = True
            heapq.heappush(self._queue, (self._now + delay,
                                         next(self._order), event))
        else:
            event = Timeout(self, delay)
            event.recycle = True
            event.callbacks = (callback, args)

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        # (time, insertion order) is the *entire* ordering contract; see
        # the module docstring.  The counter both breaks ties FIFO and
        # keeps Event objects out of heap comparisons entirely.
        heapq.heappush(self._queue, (self._now + delay, next(self._order),
                                     event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Kept for manual stepping (tests, debuggers); :meth:`run` drains
        the queue with an inlined copy of this dispatch.  ``step`` does
        not recycle pooled timeouts — only the run loop does.
        """
        if not self._queue:
            raise SimulationError("no more events to process")
        when, _order, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError(
                "clock would run backwards (%r -> %r): the heap ordering "
                "contract was violated" % (self._now, when))
        self._now = when
        self.processed_events += 1
        if self.trace is not None:
            self.trace.record(when, event)
        callbacks, event.callbacks = event.callbacks, None
        if callbacks.__class__ is tuple:
            callbacks[0](*callbacks[1])
        else:
            for callback in callbacks:
                if callback.__class__ is tuple:
                    callback[0](*callback[1])
                else:
                    callback(event)
        if not event._ok and not event.defused:
            # A failure nobody handled: escalate to the run() caller so
            # broken models do not fail silently.
            raise typing.cast(BaseException, event._value)

    def run(self, until: typing.Union[float, Event, None] = None) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until it triggers, returning its value
          (re-raising its exception if it failed).
        """
        stop_event: typing.Optional[Event] = None
        stop_flag: typing.Optional[_StopFlag] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            stop_event.defused = True
            stop_flag = _StopFlag()
            stop_event.add_callback(stop_flag)
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("until=%r is in the past (now=%r)"
                                 % (until, self._now))

        queue = self._queue
        pool = self._timeout_pool
        heappop = heapq.heappop
        processed = 0
        try:
            while queue:
                if stop_flag is not None and stop_flag.hit:
                    break
                head = queue[0][0]
                if head > stop_time:
                    self._now = stop_time
                    return None
                if head < self._now:
                    raise SimulationError(
                        "clock would run backwards (%r -> %r): the heap "
                        "ordering contract was violated" % (self._now, head))
                trace = self.trace
                self._now = head
                # Drain every event scheduled at this instant.  Delays
                # are never negative, so callbacks can only append to
                # this batch (same time, later insertion order) or push
                # later — the stop-time check above stays valid for the
                # whole batch.
                while True:
                    event = heappop(queue)[2]
                    processed += 1
                    if trace is not None:
                        trace.record(head, event)
                    callbacks, event.callbacks = event.callbacks, None
                    if callbacks.__class__ is tuple:
                        callbacks[0](*callbacks[1])
                    else:
                        for callback in callbacks:
                            if callback.__class__ is tuple:
                                callback[0](*callback[1])
                            else:
                                callback(event)
                    if not event._ok and not event.defused:
                        # A failure nobody handled: escalate to the
                        # run() caller so broken models do not fail
                        # silently.
                        raise typing.cast(BaseException, event._value)
                    if event.__class__ is Timeout and event.recycle:
                        event.recycle = False
                        if len(pool) < _TIMEOUT_POOL_CAP:
                            pool.append(event)
                    if stop_flag is not None and stop_flag.hit:
                        break
                    if not queue or queue[0][0] != head:
                        break
        finally:
            # Flushed once per run, not per event; exact again by the
            # time run() returns or an escalated failure escapes.
            self.processed_events += processed

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before the awaited event "
                    "triggered")
            if not stop_event.ok:
                raise typing.cast(BaseException, stop_event.value)
            return stop_event.value
        if stop_time != float("inf"):
            self._now = stop_time
        return None
