"""The discrete-event simulation core.

:class:`Simulator` owns the event queue and the simulated clock.  All times
in the library are **milliseconds of simulated time** expressed as floats;
this matches the units the LightVM paper reports (boot times of 2.3 ms,
migration times of 60 ms, and so on).

The kernel is a compact SimPy-style design: events are processed in
(time, insertion order); :meth:`Simulator.run` pops them in order and
invokes their callbacks.  Processes (see :mod:`repro.sim.process`) are
generators that yield events and are resumed by the run loop's trampoline.

**Determinism contract.**  Events are ordered by ``(time, insertion
order)`` and nothing else: events scheduled for the same simulated
instant are processed in exactly the order they were pushed, every run.
Nothing in the kernel may break ties by hash order, object identity
(``id()``), or any other per-process value — that contract is what makes
a ``(seed, config)`` pair replay bit-identically, and it is
machine-checked by :mod:`repro.analysis` (the ``repro lint`` rules and
the dual-run digest checker).  Two opt-in hooks support that checking:
``sanitizer`` (runtime hazard detection) and ``trace`` (streaming
timeline digest); both default to ``None`` and cost one identity check
per event when unused.

**Queue representation.**  The queue is *time-bucketed*: ``_buckets``
maps each pending simulated time to the FIFO list of events scheduled at
that instant, and ``_times`` is a heap of the distinct pending times.
Appending to a bucket preserves insertion order within an instant and the
times heap orders instants, so the representation realizes exactly the
``(time, insertion order)`` contract the seed kernel's per-event
``(time, counter, event)`` heap tuples did — while a push costs one dict
probe plus a list append instead of an O(log n) sift with tuple
allocation, and popping a same-instant batch costs list indexing instead
of n heap pops.  A bucket stays registered while it drains so callbacks
pushing at the current instant append to it in order; the heap may
transiently hold a time whose bucket is already gone, and every consumer
skips such stale entries.

**Fast-path invariants.**  The run loop is tuned (hot attributes bound to
locals, same-instant events drained in a batch, ``call_later`` timeouts
and process bootstrap/kick cells pooled, continuation-slot process
resumes trampolined inline) under invariants that
``tests/test_reference_kernel.py`` proves against the naive seed kernel
via byte-identical replay digests:

* delays are never negative, so a callback can only push events at the
  current instant or later — draining everything at the head timestamp
  before re-checking ``until`` cannot skip a stop point, and same-instant
  pushes join the live bucket in insertion order exactly as the
  one-at-a-time loop would process them;
* the ``trace``/``sanitizer``/``tracer``/``witness`` hooks are attached
  before ``run()`` is entered, never swapped mid-run (they are rebound
  once per timestamp batch, not per event);
* pooled timeouts are only ever created by :meth:`call_later`, which
  returns ``None``, and pooled cells only by the process machinery,
  which never exposes them — user code cannot hold a reference to a
  recycled event, so reuse is unobservable;
* the inline trampoline resume is a transcription of
  :meth:`repro.sim.process.Process._resume`'s hot path, taken only when
  its staleness/liveness checks pass and no witness is attached; every
  other wakeup routes through ``_resume`` itself, which remains the
  definition of the semantics.
"""

from __future__ import annotations

import heapq
import itertools
import typing

from .events import (AllOf, AnyOf, Event, PENDING, SimulationError, Timeout,
                     _Cell)
from .process import Process

#: Upper bound on pooled ``call_later`` timeouts kept for reuse; beyond
#: this the extras are dropped to the garbage collector.
_TIMEOUT_POOL_CAP = 256

#: Upper bound on pooled bootstrap/kick cells (see ``events._Cell``).
#: Fan-out workloads spawn thousands of processes at one instant; the
#: pool only ever fills from the run loop's recycle path, so the cap just
#: bounds retained garbage, not correctness.
_CELL_POOL_CAP = 1024


class _StopFlag:
    """Callback object marking the ``until`` event as processed.

    A tiny class instead of a closure: the run loop registers exactly one
    per ``run(until=event)`` call, and the kernel keeps itself free of
    per-event closure allocation (lint rule RPR008).
    """

    __slots__ = ("hit",)

    def __init__(self):
        self.hit = False

    def __call__(self, _event) -> None:
        self.hit = True


class Simulator:
    """A discrete-event simulator with a millisecond float clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        #: Bucketed event queue; see the module docstring.
        self._buckets: dict = {}
        self._times: list = []
        #: Legacy heap fields.  The optimized queue no longer touches
        #: them, but the frozen naive reference kernel
        #: (``tests/reference_kernel.py``) subclasses this class and keeps
        #: its seed-state ``(time, counter, event)`` heap here.
        self._queue: list = []
        self._order = itertools.count()
        self._timeout_pool: list = []
        self._cell_pool: list = []
        #: Number of events processed so far (for diagnostics/tests).
        self.processed_events = 0
        #: Optional :class:`repro.analysis.sanitize.Sanitizer` hook.
        self.sanitizer = None
        #: Optional :class:`repro.analysis.sanitize.EventTrace` hook.
        self.trace = None
        #: Optional :class:`repro.trace.Tracer` hook (span recording).
        #: Like the two above it is timeline-read-only: attaching one
        #: must never change the event schedule.
        self.tracer = None
        #: Optional :class:`repro.analysis.witness.RaceWitness` hook
        #: (vector-clock happens-before tracking).  Timeline-read-only
        #: like the three above.  When attached, the run loop disables
        #: the inline trampoline so every wakeup flows through
        #: ``Process._resume`` and its ``on_wake`` hook.
        self.witness = None
        #: The :class:`Process` whose generator is currently executing
        #: (``None`` between resumptions).  Maintained by the process
        #: machinery; the tracer keys its open-span stacks on it.
        self.active_process = None
        #: Callables invoked (with the simulator) every time :meth:`run`
        #: completes normally — at a numeric stop time, when an awaited
        #: event triggers, or when the queue drains.  Epoch drivers (the
        #: ``repro.cluster`` barrier scheduler) register hooks here to
        #: close out a bounded window: flush cross-host message batches,
        #: snapshot outstanding-work counters.  Hooks run after the loop
        #: has exited; events they schedule stay queued for the next
        #: ``run()`` call.  Empty (and costing one truthiness check per
        #: run) everywhere outside the cluster layer.
        self.drain_hooks: list = []

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event that succeeds when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event that succeeds when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def schedule(self, delay: float, callback, *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` ms; returns the event.

        Closure-free: the ``(callback, args)`` pair is stored directly on
        the event's callback list and dispatched by the run loop, instead
        of allocating a wrapper lambda per call.
        """
        event = Timeout(self, delay)
        event.callbacks.append((callback, args))
        return event

    def schedule_at(self, when: float, callback, *args,
                    value: object = None) -> Event:
        """Run ``callback(*args)`` at the *absolute* instant ``when``.

        Unlike :meth:`schedule` — which buckets at ``now + delay`` — this
        buckets at exactly ``when``.  Epoch drivers injecting cross-host
        messages at pre-agreed arrival times must not round-trip through
        a delay subtraction: ``now + (when - now)`` is not guaranteed to
        equal ``when`` in floating point, and a one-ULP split would land
        one agreed instant in two buckets, diverging the replay digest
        between backends.  ``value`` is carried as the event's payload so
        the digest pins *what* arrived, not just when.
        """
        when = float(when)
        if when < self._now:
            raise ValueError("schedule_at(%r) is in the past (now=%r)"
                             % (when, self._now))
        event = Event(self)
        event._ok = True
        event._value = value
        # Bare (callback, args) pair — the closure-free fast path the run
        # loop dispatches directly (see events.Event.callbacks).
        event.callbacks = (callback, args)
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [event]
            heapq.heappush(self._times, when)
        else:
            bucket.append(event)
        return event

    def call_later(self, delay: float, callback, *args) -> None:
        """Fire-and-forget :meth:`schedule`: no event handle is returned.

        Because the caller cannot observe the event, the run loop recycles
        the :class:`Timeout` object through a small pool — per-tick timer
        traffic (e.g. the CPU scheduler's quantum timers) then allocates
        nothing in steady state.  Use :meth:`schedule` whenever the event
        handle is needed.
        """
        if delay < 0:
            raise ValueError("timeout delay must be >= 0, got %r" % delay)
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
            # A recycled timeout's state is known-clean: tuple-form
            # callbacks never expose the event object, so nothing could
            # have touched _ok (True), _value (None), defused (False) or
            # _cont (None) since the run loop dispatched it.  Only the
            # callback pair, the recycle flag and the queue entry need
            # refreshing.
            event.delay = delay
            event.callbacks = (callback, args)
            event.recycle = True
            when = self._now + delay
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = [event]
                heapq.heappush(self._times, when)
            else:
                bucket.append(event)
        else:
            event = Timeout(self, delay)
            event.recycle = True
            event.callbacks = (callback, args)

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        # (time, insertion order) is the *entire* ordering contract; see
        # the module docstring.  Bucket append order realizes the
        # insertion-order tie-break; the times heap orders instants.
        when = self._now + delay
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [event]
            heapq.heappush(self._times, when)
        else:
            bucket.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        times = self._times
        buckets = self._buckets
        while times:
            head = times[0]
            if head in buckets:
                return head
            heapq.heappop(times)  # stale entry; see module docstring
        return float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Kept for manual stepping (tests, debuggers); :meth:`run` drains
        the queue with an inlined copy of this dispatch.  ``step`` does
        not recycle pooled events — only the run loop does.
        """
        times = self._times
        buckets = self._buckets
        bucket = None
        head = 0.0
        while times:
            head = times[0]
            bucket = buckets.get(head)
            if bucket is not None:
                break
            heapq.heappop(times)  # stale entry; see module docstring
        if bucket is None:
            raise SimulationError("no more events to process")
        if head < self._now:
            raise SimulationError(
                "clock would run backwards (%r -> %r): the queue ordering "
                "contract was violated" % (self._now, head))
        self._now = head
        event = bucket.pop(0)
        if not bucket:
            del buckets[head]
            heapq.heappop(times)
        self.processed_events += 1
        if self.trace is not None:
            self.trace.record(head, event)
        callbacks = event.callbacks
        event.callbacks = None
        cont = event._cont
        if cont is not None:
            # Continuation slot first: the parked process was the event's
            # first subscriber, so it wakes before any listed callbacks.
            event._cont = None
            cont._resume(event)
        if callbacks:
            if callbacks.__class__ is tuple:
                callbacks[0](*callbacks[1])
            else:
                for callback in callbacks:
                    if callback.__class__ is tuple:
                        callback[0](*callback[1])
                    else:
                        callback(event)
        if not event._ok and not event.defused:
            # A failure nobody handled: escalate to the run() caller so
            # broken models do not fail silently.
            raise typing.cast(BaseException, event._value)

    def run(self, until: typing.Union[float, Event, None] = None,
            inclusive: bool = True) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until it triggers, returning its value
          (re-raising its exception if it failed).

        ``inclusive`` (numeric ``until`` only) picks the boundary
        semantics: ``True`` (the default, the historical behaviour)
        processes events scheduled exactly *at* the stop time before
        stopping; ``False`` is the epoch-bounded entry — events at the
        boundary stay queued, the clock still advances to the stop time,
        and a later ``run()`` picks them up.  Strict windows are what
        make epoch barriers composable: every event in ``[t0, t1)`` runs
        in the ``until=t1`` window and none leaks across, so N hosts
        advanced window-by-window partition their timelines identically
        no matter how the windows interleave across OS processes.

        On every normal completion (numeric stop, event stop, or queue
        drain) the registered ``drain_hooks`` run, in order.
        """
        stop_event: typing.Optional[Event] = None
        stop_flag: typing.Optional[_StopFlag] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            stop_event.defused = True
            stop_flag = _StopFlag()
            stop_event.add_callback(stop_flag)
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("until=%r is in the past (now=%r)"
                                 % (until, self._now))

        buckets = self._buckets
        times = self._times
        tpool = self._timeout_pool
        cpool = self._cell_pool
        heappop = heapq.heappop
        processed = 0
        try:
            while times:
                if stop_flag is not None and stop_flag.hit:
                    break
                head = heappop(times)
                bucket = buckets.get(head)
                if bucket is None:
                    continue  # stale entry; see module docstring
                if head > stop_time or (head == stop_time
                                        and not inclusive):
                    heapq.heappush(times, head)
                    break
                if head < self._now:
                    heapq.heappush(times, head)
                    raise SimulationError(
                        "clock would run backwards (%r -> %r): the queue "
                        "ordering contract was violated" % (self._now, head))
                trace = self.trace
                witness = self.witness
                self._now = head
                # Drain every event scheduled at this instant.  Delays are
                # never negative, so callbacks can only append to the live
                # bucket (same time, later insertion order) or push later
                # — the stop-time check above stays valid for the whole
                # batch, and ``len(bucket)`` is re-read every iteration to
                # pick up same-instant appends.
                i = 0
                try:
                    while i < len(bucket):
                        event = bucket[i]
                        i += 1
                        processed += 1
                        if trace is not None:
                            trace.record(head, event)
                        callbacks = event.callbacks
                        event.callbacks = None
                        cont = event._cont
                        if cont is not None:
                            event._cont = None
                            if (witness is None and cont._value is PENDING
                                    and cont._waiting_on is event):
                                # Inline trampoline: transcription of
                                # Process._resume's hot path (see the
                                # module docstring invariant).  Dispatching
                                # here saves a bound-method call, the
                                # staleness re-checks, and the try/finally
                                # frame per wake — which is the bulk of
                                # the per-resume host cost in
                                # process-shaped workloads.
                                cont._waiting_on = None
                                self.active_process = cont
                                try:
                                    if event._ok:
                                        target = cont._generator.send(
                                            event._value)
                                    else:
                                        event.defused = True
                                        target = cont._generator.throw(
                                            typing.cast(BaseException,
                                                        event._value))
                                except StopIteration as stop:
                                    self.active_process = None
                                    if cont._value is PENDING:
                                        # Inlined succeed(): no witness is
                                        # attached on this path, and the
                                        # completion lands at the current
                                        # instant — i.e. on the live
                                        # bucket being drained.
                                        cont._ok = True
                                        cont._value = stop.value
                                        bucket.append(cont)
                                    else:
                                        cont.succeed(stop.value)
                                except BaseException as exc:
                                    self.active_process = None
                                    cont.fail(exc)
                                else:
                                    self.active_process = None
                                    if (target.__class__ is Timeout
                                            and target.sim is self
                                            and target._cont is None
                                            and not target.callbacks):
                                        # Fresh same-simulator timeout
                                        # with no subscribers: intern the
                                        # wait without re-entering
                                        # _wait_for.
                                        target._cont = cont
                                        cont._waiting_on = target
                                    else:
                                        cont._wait_for(target)
                            else:
                                cont._resume(event)
                        if callbacks:
                            if callbacks.__class__ is tuple:
                                callbacks[0](*callbacks[1])
                            else:
                                for callback in callbacks:
                                    if callback.__class__ is tuple:
                                        callback[0](*callback[1])
                                    else:
                                        callback(event)
                        if not event._ok and not event.defused:
                            # A failure nobody handled: escalate to the
                            # run() caller so broken models do not fail
                            # silently.
                            raise typing.cast(BaseException, event._value)
                        cls = event.__class__
                        if cls is Timeout:
                            if event.recycle:
                                event.recycle = False
                                if len(tpool) < _TIMEOUT_POOL_CAP:
                                    tpool.append(event)
                        elif cls is _Cell:
                            if len(cpool) < _CELL_POOL_CAP:
                                cpool.append(event)
                        if stop_flag is not None and stop_flag.hit:
                            break
                finally:
                    # Reached on batch completion, a mid-batch stop, or
                    # an escalated failure: keep any unprocessed tail
                    # queued so the queue stays consistent for callers
                    # that catch the failure and continue stepping.
                    if i < len(bucket):
                        del bucket[:i]
                        heapq.heappush(times, head)
                    else:
                        del buckets[head]
        finally:
            # Flushed once per run, not per event; exact again by the
            # time run() returns or an escalated failure escapes.
            self.processed_events += processed

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before the awaited event "
                    "triggered")
            if not stop_event.ok:
                raise typing.cast(BaseException, stop_event.value)
            if self.drain_hooks:
                for hook in self.drain_hooks:
                    hook(self)
            return stop_event.value
        if stop_time != float("inf"):
            self._now = stop_time
        if self.drain_hooks:
            for hook in self.drain_hooks:
                hook(self)
        return None
