"""The discrete-event simulation core.

:class:`Simulator` owns the event queue and the simulated clock.  All times
in the library are **milliseconds of simulated time** expressed as floats;
this matches the units the LightVM paper reports (boot times of 2.3 ms,
migration times of 60 ms, and so on).

The kernel is a compact SimPy-style design: events are pushed onto a heap
keyed by (time, insertion order); :meth:`Simulator.run` pops them in order
and invokes their callbacks.  Processes (see :mod:`repro.sim.process`) are
generators that yield events and are resumed by callbacks.

**Determinism contract.**  The heap key is ``(time, insertion order)``
and nothing else: events scheduled for the same simulated instant are
processed in exactly the order they were pushed, every run.  Nothing in
the kernel may break ties by hash order, object identity (``id()``), or
any other per-process value — that contract is what makes a ``(seed,
config)`` pair replay bit-identically, and it is machine-checked by
:mod:`repro.analysis` (the ``repro lint`` rules and the dual-run digest
checker).  Two opt-in hooks support that checking: ``sanitizer``
(runtime hazard detection) and ``trace`` (streaming timeline digest);
both default to ``None`` and cost one identity check per event when
unused.
"""

from __future__ import annotations

import heapq
import itertools
import typing

from .events import AllOf, AnyOf, Event, SimulationError, Timeout
from .process import Process


class Simulator:
    """A discrete-event simulator with a millisecond float clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: list = []
        self._order = itertools.count()
        #: Number of events processed so far (for diagnostics/tests).
        self.processed_events = 0
        #: Optional :class:`repro.analysis.sanitize.Sanitizer` hook.
        self.sanitizer = None
        #: Optional :class:`repro.analysis.sanitize.EventTrace` hook.
        self.trace = None
        #: Optional :class:`repro.trace.Tracer` hook (span recording).
        #: Like the two above it is timeline-read-only: attaching one
        #: must never change the event schedule.
        self.tracer = None
        #: The :class:`Process` whose generator is currently executing
        #: (``None`` between resumptions).  Maintained by the process
        #: machinery; the tracer keys its open-span stacks on it.
        self.active_process = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event that succeeds when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event that succeeds when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def schedule(self, delay: float, callback, *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` ms; returns the event."""
        event = self.timeout(delay)
        event.add_callback(lambda _evt: callback(*args))
        return event

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        # (time, insertion order) is the *entire* ordering contract; see
        # the module docstring.  The counter both breaks ties FIFO and
        # keeps Event objects out of heap comparisons entirely.
        heapq.heappush(self._queue, (self._now + delay, next(self._order),
                                     event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("no more events to process")
        when, _order, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError(
                "clock would run backwards (%r -> %r): the heap ordering "
                "contract was violated" % (self._now, when))
        self._now = when
        self.processed_events += 1
        if self.trace is not None:
            self.trace.record(when, event)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # A failure nobody handled: escalate to the run() caller so
            # broken models do not fail silently.
            raise typing.cast(BaseException, event._value)

    def run(self, until: typing.Union[float, Event, None] = None) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until it triggers, returning its value
          (re-raising its exception if it failed).
        """
        stop_event: typing.Optional[Event] = None
        stop_processed = [False]
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            stop_event.defused = True
            stop_event.add_callback(
                lambda _evt: stop_processed.__setitem__(0, True))
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("until=%r is in the past (now=%r)"
                                 % (until, self._now))

        while self._queue:
            if stop_processed[0]:
                break
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before the awaited event "
                    "triggered")
            if not stop_event.ok:
                raise typing.cast(BaseException, stop_event.value)
            return stop_event.value
        if stop_time != float("inf"):
            self._now = stop_time
        return None
