"""Shared-resource primitives: counted resources and FIFO stores.

These model contended control-plane entities — e.g. the single oxenstored
worker thread, Dom0's udev queue, or the chaos daemon's pool of pre-created
VM shells.
"""

from __future__ import annotations

import collections
import typing

from .events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulator


class Request(Event):
    """A pending claim on a :class:`Resource`; usable as a context manager."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with a FIFO wait queue.

    Usage from a process::

        with resource.request() as req:
            yield req
            ...  # holding one slot
    """

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: typing.Optional[str] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        #: Optional lock label for the race tooling: the static pass
        #: (`repro races`) and the runtime :class:`RaceWitness` key the
        #: lock-order graph on it.  Indexed families use ``base[%d]``
        #: concrete names, which normalize to one ``base[*]`` label.
        self.name = name
        self.users: typing.List[Request] = []
        self.queue: typing.Deque[Request] = collections.deque()
        if sim.sanitizer is not None:
            sim.sanitizer.track_resource(self)

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a slot.  Releasing an unheld request is a no-op for
        queued requests (they are simply cancelled)."""
        if request in self.users:
            witness = self.sim.witness
            if witness is not None:
                witness.on_release(self, request)
            self.users.remove(request)
            while self.queue and len(self.users) < self.capacity:
                nxt = self.queue.popleft()
                self.users.append(nxt)
                nxt.succeed()
        elif request in self.queue:
            self.queue.remove(request)


class Store:
    """An unbounded FIFO store of items with blocking ``get``.

    The chaos daemon's shell pool and the compute service's request queue
    are Stores.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.items: typing.Deque[object] = collections.deque()
        self._getters: typing.Deque[Event] = collections.deque()
        if sim.sanitizer is not None:
            sim.sanitizer.track_store(self)

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: object) -> None:
        """Add ``item``; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self.items.append(item)

    def get(self) -> Event:
        """Event yielding the next item (immediately if one is available)."""
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> typing.Optional[object]:
        """Non-blocking get; returns None when empty."""
        return self.items.popleft() if self.items else None
