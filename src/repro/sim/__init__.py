"""Discrete-event simulation kernel used by every LightVM subsystem.

Public surface:

* :class:`Simulator` — event queue + millisecond clock.
* :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf`,
  :class:`Interrupt`, :class:`PendingInterrupt` — event primitives.
* :class:`Process` — generator-based processes.
* :class:`Resource`, :class:`Store` — contended resources and FIFO stores.
* :class:`PSCore`, :class:`CpuPool` — processor-sharing CPU model.
* :class:`RngStream`, :class:`RngRegistry` — deterministic random streams.
"""

from .engine import Simulator
from .events import (AllOf, AnyOf, Event, Interrupt, PendingInterrupt,
                     SimulationError, Timeout)
from .process import Process
from .resources import Request, Resource, Store
from .cpu import CpuPool, CpuTask, PSCore
from .rng import RngRegistry, RngStream

__all__ = [
    "AllOf",
    "AnyOf",
    "CpuPool",
    "CpuTask",
    "Event",
    "Interrupt",
    "PendingInterrupt",
    "Process",
    "PSCore",
    "Request",
    "Resource",
    "RngRegistry",
    "RngStream",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
