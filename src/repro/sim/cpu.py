"""Processor-sharing CPU model.

The LightVM evaluation repeatedly hinges on CPU contention: Tinyx boot times
grow once hundreds of idle guests run background tasks (Fig 11), firewall
VMs see rising RTTs as the scheduler round-robins over them (Fig 16a), and
the compute service backlog in Fig 17/18 is a queueing effect on three
cores.  We model each physical core as a **generalized processor-sharing
(GPS) server**:

* *Discrete tasks* (a guest booting, a compute job, a TLS handshake batch)
  carry an amount of work in cpu-milliseconds and complete when it drains.
* *Fluid background load* models large populations of idle guests cheaply:
  each idle Tinyx/Debian guest contributes a small demand weight instead of
  scheduling thousands of tiny wakeup events.

With ``n`` discrete tasks and aggregate background weight ``b`` on a core,
every unit-weight claimant receives ``1 / (n + b)`` of the core, so a task
with ``w`` cpu-ms of work completes in ``w * (n + b)`` ms (while the mix
stays constant).  The implementation re-evaluates lazily at every state
change, so time complexity is O(tasks) per change, independent of the
background population size.
"""

from __future__ import annotations

import typing

from .events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulator


class CpuTask:
    """A discrete unit of CPU work executing on a :class:`PSCore`."""

    __slots__ = ("remaining", "done", "weight")

    def __init__(self, sim: "Simulator", work: float, weight: float = 1.0):
        self.remaining = float(work)
        self.weight = float(weight)
        #: Event that fires (with the completion time) when the work drains.
        self.done = Event(sim)


class PSCore:
    """One physical core as a processor-sharing server."""

    def __init__(self, sim: "Simulator", rate: float = 1.0,
                 name: str = "cpu"):
        if rate <= 0:
            raise ValueError("core rate must be positive")
        self.sim = sim
        self.rate = float(rate)
        self.name = name
        self._tasks: typing.List[CpuTask] = []
        self._background = 0.0
        self._last_update = sim.now
        self._busy_ms = 0.0
        self._timer_generation = 0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def active_tasks(self) -> int:
        """Number of discrete tasks currently on the core."""
        return len(self._tasks)

    @property
    def background_weight(self) -> float:
        """Aggregate fluid background demand weight on this core."""
        return self._background

    def utilization(self) -> float:
        """Instantaneous utilization in [0, 1]."""
        if self._tasks:
            return 1.0
        return min(self._background, 1.0)

    def busy_time(self) -> float:
        """Accumulated busy milliseconds (integral of utilization)."""
        self._advance()
        return self._busy_ms

    def _divisor(self) -> float:
        weights = sum(task.weight for task in self._tasks)
        return max(weights + self._background, 1e-12)

    # ------------------------------------------------------------------
    # Work submission
    # ------------------------------------------------------------------
    def execute(self, work: float, weight: float = 1.0) -> Event:
        """Submit ``work`` cpu-ms; the returned event fires on completion."""
        if work < 0:
            raise ValueError("work must be >= 0")
        self._advance()
        task = CpuTask(self.sim, work, weight)
        if work == 0:
            task.done.succeed(self.sim.now)
            return task.done
        self._tasks.append(task)
        self._reschedule()
        return task.done

    def add_background(self, weight: float) -> None:
        """Add fluid background demand (e.g. one idle guest's share)."""
        if weight < 0:
            raise ValueError("background weight must be >= 0")
        self._advance()
        self._background += weight
        self._reschedule()

    def remove_background(self, weight: float) -> None:
        """Remove previously-added background demand."""
        self._advance()
        self._background = max(0.0, self._background - weight)
        self._reschedule()

    # ------------------------------------------------------------------
    # Internal bookkeeping
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Account for progress since the last state change."""
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            self._busy_ms += elapsed * self.utilization()
            if self._tasks:
                divisor = self._divisor()
                progress = elapsed * self.rate / divisor
                for task in self._tasks:
                    task.remaining -= progress * task.weight
        self._last_update = now
        # Completion check runs even for zero elapsed time: floating-point
        # cancellation can leave a task with residual work after an exact
        # finish-time wakeup, and it must complete *now*, not spin the
        # timer at the same timestamp.  The epsilon (1 ns of CPU time) is
        # far below the model's resolution.
        finished = [task for task in self._tasks
                    if task.remaining <= 1e-6]
        for task in finished:
            self._tasks.remove(task)
            task.done.succeed(now)

    def _reschedule(self) -> None:
        """Arm a wakeup at the earliest possible task completion."""
        self._timer_generation += 1
        if not self._tasks:
            return
        generation = self._timer_generation
        divisor = self._divisor()
        earliest = min(task.remaining / task.weight for task in self._tasks)
        delay = earliest * divisor / self.rate
        # The delay must actually advance the clock: late in a long
        # simulation the double-precision ULP of `now` exceeds tiny
        # delays, which would freeze time and spin the timer forever.
        # Overshooting by a few ULPs is harmless (work goes negative and
        # the completion check catches it).
        minimum = max(1e-9, abs(self.sim.now) * 1e-12)
        # call_later, not schedule: the timer event is fire-and-forget
        # (stale generations are ignored), so the kernel may recycle it.
        self.sim.call_later(max(delay, minimum), self._on_timer, generation)

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a newer state change
        self._advance()
        self._reschedule()


class CpuPool:
    """A set of cores with round-robin placement, as Xen's toolstack uses.

    The paper pins Dom0 to dedicated cores and assigns guest vCPUs to the
    remaining cores round-robin; :meth:`place` reproduces that policy.
    """

    def __init__(self, sim: "Simulator", cores: int, rate: float = 1.0):
        if cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.cores = [PSCore(sim, rate=rate, name="cpu%d" % i)
                      for i in range(cores)]
        self._next = 0

    def __len__(self) -> int:
        return len(self.cores)

    def place(self) -> PSCore:
        """Pick the next core round-robin."""
        core = self.cores[self._next % len(self.cores)]
        self._next += 1
        return core

    def utilization(self) -> float:
        """Mean instantaneous utilization across the pool, in [0, 1]."""
        return sum(core.utilization() for core in self.cores) / len(self.cores)

    def busy_time(self) -> float:
        """Total busy ms across all cores."""
        return sum(core.busy_time() for core in self.cores)
