"""Shared CLI flag conventions.

The seed/parallelism surface is the same across ``repro run``, ``repro
cluster`` and ``repro chaos``:

* ``--seed N`` — one seed (the default workload);
* ``--seeds A..B`` — an inclusive seed range — or ``A,B,C``, an explicit
  seed list;
* ``--workers N`` — OS processes for the parallel backends;
* ``--json`` — machine-readable output; ``--replay FILE`` — re-run a
  recorded artifact and verify its digests bit-for-bit.

Deprecated spellings (``repro cluster --scenario churn``, ``repro chaos
--seeds <count>``) keep working but warn exactly once per process
through :func:`warn_once`, always naming the canonical replacement.
"""

from __future__ import annotations

import argparse
import sys
import typing

#: Deprecation keys already warned about in this process.
_WARNED: typing.Set[str] = set()


def warn_once(key: str, message: str, stream=None) -> bool:
    """Print a deprecation warning for ``key``, at most once per process.

    Returns True when the warning was actually printed.
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    print("repro: warning: %s" % message,
          file=stream if stream is not None else sys.stderr)
    return True


def reset_warnings() -> None:
    """Forget warned-about keys (test isolation)."""
    _WARNED.clear()


def parse_seed_set(text: str) -> typing.List[int]:
    """Parse a seed-set expression into an ordered list of seeds.

    ``"0..31"`` is the inclusive range 0-31; ``"0,4,9"`` an explicit
    list; ``"7"`` the single seed 7.  Duplicates and backwards ranges
    are errors — a seed set names each run exactly once.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty seed set")
    if ".." in text:
        lo_text, _, hi_text = text.partition("..")
        try:
            lo, hi = int(lo_text), int(hi_text)
        except ValueError:
            raise ValueError(
                "seed range %r: expected 'A..B' with integer endpoints"
                % text)
        if hi < lo:
            raise ValueError("seed range %r is backwards (%d > %d)"
                             % (text, lo, hi))
        return list(range(lo, hi + 1))
    seeds: typing.List[int] = []
    for part in text.split(","):
        part = part.strip()
        try:
            seeds.append(int(part))
        except ValueError:
            raise ValueError(
                "seed set %r: %r is not an integer (expected 'A..B', "
                "'A,B,C', or a single seed)" % (text, part))
    if len(set(seeds)) != len(seeds):
        raise ValueError("seed set %r repeats a seed" % text)
    return seeds


def seed_set(text: str) -> typing.List[int]:
    """argparse ``type=`` adapter around :func:`parse_seed_set`."""
    try:
        return parse_seed_set(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def contiguous_range(seeds: typing.Sequence[int]
                     ) -> typing.Optional[typing.Tuple[int, int]]:
    """``(base, count)`` when ``seeds`` is a contiguous ascending run
    (in any input order), else ``None``."""
    ordered = sorted(seeds)
    if not ordered:
        return None
    if ordered == list(range(ordered[0], ordered[0] + len(ordered))):
        return ordered[0], len(ordered)
    return None
