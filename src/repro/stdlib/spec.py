"""Declarative scenario specs: YAML/JSON in, a validated composition out.

A :class:`ScenarioSpec` is the *entire* description of an experiment —
which components run (pinned ``name@version`` references, optionally
with parameter overrides) and the workload scalars (guest count, host
count, request/migration budgets).  Validation is strict and typed:

* unknown keys are rejected (:class:`UnknownSpecKeyError` names the key
  and suggests the nearest valid one — no silent defaulting);
* every component reference must pin a version; unknown names and
  version mismatches raise :class:`~.components.UnknownComponentError` /
  :class:`~.components.ComponentVersionError` naming the offending
  field;
* workload scalars are type- and range-checked
  (:class:`SpecTypeError`).

The resolved spec has a canonical JSON form and a SHA-256 **spec
digest** over it; the sweep manifest is a pure function of (spec digest,
seed set), which is what makes ``repro run`` reproducible by
construction.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
import pathlib
import typing

from .components import ComponentError, resolve
from .library import (FaultProfile, GuestProfile, HostProfile,
                      PlacementProfile, TopologyProfile, TrafficPattern)


class SpecError(ValueError):
    """Base class for scenario-spec validation failures."""

    def __init__(self, field: str, message: str):
        self.field = field
        super().__init__(message)


class UnknownSpecKeyError(SpecError):
    """The spec payload carries a key the schema does not define."""


class MissingSpecKeyError(SpecError):
    """A required key is absent for the declared mode."""


class SpecTypeError(SpecError):
    """A workload scalar has the wrong type or an invalid value."""


#: Keys every spec must carry.
_REQUIRED = ("name", "mode", "host", "guest", "traffic", "guests")
#: Component fields by spec key, with the kinds they resolve against.
_COMPONENT_KEYS = ("host", "guest", "traffic", "faults", "placement",
                   "topology")
#: Keys valid only in cluster mode.
_CLUSTER_ONLY = ("hosts", "placement", "topology", "requests",
                 "migrations")
#: The full schema, per mode.
_KEYS_BY_MODE = {
    "host": frozenset(("name", "mode", "host", "guest", "traffic",
                       "faults", "guests")),
    "cluster": frozenset(("name", "mode", "host", "guest", "traffic",
                          "faults", "placement", "topology", "hosts",
                          "guests", "requests", "migrations")),
}

MODES = ("host", "cluster")


@dataclasses.dataclass
class ScenarioSpec:
    """A validated scenario: resolved components + workload scalars."""

    name: str
    mode: str
    host: HostProfile
    guest: GuestProfile
    traffic: TrafficPattern
    faults: FaultProfile
    placement: typing.Optional[PlacementProfile]
    topology: typing.Optional[TopologyProfile]
    guests: int
    hosts: int = 1
    requests: int = 0
    migrations: int = 0
    #: The original payload (component *references*, not resolved
    #: parameters) — round-trippable through :meth:`from_dict`, embedded
    #: in sweep manifests so ``repro run --replay`` can rebuild the spec.
    source: typing.Dict[str, object] = dataclasses.field(
        default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: typing.Mapping) -> "ScenarioSpec":
        if not isinstance(payload, typing.Mapping):
            raise SpecTypeError(
                "spec", "a scenario spec must be a mapping, got %s"
                % type(payload).__name__)
        data = dict(payload)

        mode = data.get("mode")
        if mode not in MODES:
            raise SpecTypeError(
                "mode", "field 'mode': expected one of %s, got %r"
                % (", ".join(MODES), mode))

        allowed = _KEYS_BY_MODE[mode]
        for key in sorted(data):
            if key in allowed:
                continue
            if key in _CLUSTER_ONLY:
                raise UnknownSpecKeyError(
                    key, "key %r is only valid in mode 'cluster' "
                    "(this spec declares mode %r)" % (key, mode))
            hint = difflib.get_close_matches(str(key), sorted(allowed),
                                             n=1)
            suggestion = " (did you mean %r?)" % hint[0] if hint else ""
            raise UnknownSpecKeyError(
                key, "unknown key %r in scenario spec%s; valid keys for "
                "mode %r: %s" % (key, suggestion, mode,
                                 ", ".join(sorted(allowed))))

        required = list(_REQUIRED)
        if mode == "cluster":
            required += ["hosts", "placement", "topology"]
        for key in required:
            if key not in data:
                raise MissingSpecKeyError(
                    key, "scenario spec is missing required key %r "
                    "(mode %r)" % (key, mode))

        name = data["name"]
        if not isinstance(name, str) or not name:
            raise SpecTypeError(
                "name", "field 'name': expected a non-empty string, "
                "got %r" % (name,))

        host = resolve("host", data["host"], "host")
        guest = resolve("guest", data["guest"], "guest")
        traffic = resolve("traffic", data["traffic"], "traffic")
        faults = resolve("faults", data.get("faults", "none@1"), "faults")
        placement = topology = None
        if mode == "cluster":
            placement = resolve("placement", data["placement"],
                                "placement")
            topology = resolve("topology", data["topology"], "topology")

        guests = _positive_int(data["guests"], "guests")
        hosts = _positive_int(data["hosts"], "hosts") \
            if mode == "cluster" else 1
        requests = _non_negative_int(data.get("requests", 0), "requests")
        migrations = _non_negative_int(data.get("migrations", 0),
                                       "migrations")

        return cls(name=name, mode=mode, host=host, guest=guest,
                   traffic=traffic, faults=faults, placement=placement,
                   topology=topology, guests=guests, hosts=hosts,
                   requests=requests, migrations=migrations,
                   source=dict(data))

    # ------------------------------------------------------------------
    # Canonical form & digest
    # ------------------------------------------------------------------
    def canonical(self) -> typing.Dict[str, object]:
        """Fully-resolved JSON record: every component parameter value
        (post-override) plus the workload scalars."""
        components: typing.Dict[str, object] = {
            "host": self.host.describe(),
            "guest": self.guest.describe(),
            "traffic": self.traffic.describe(),
            "faults": self.faults.describe(),
        }
        if self.mode == "cluster":
            assert self.placement is not None and self.topology is not None
            components["placement"] = self.placement.describe()
            components["topology"] = self.topology.describe()
        return {"name": self.name, "mode": self.mode,
                "guests": self.guests, "hosts": self.hosts,
                "requests": self.requests,
                "migrations": self.migrations,
                "components": components}

    def digest(self) -> str:
        """SHA-256 over the canonical form — the spec's identity."""
        blob = json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def to_cluster_config(self, seed: int = 0):
        """Lower a cluster-mode spec onto a
        :class:`~repro.cluster.config.ClusterConfig`."""
        if self.mode != "cluster":
            raise SpecTypeError(
                "mode", "spec %r has mode %r; only cluster-mode specs "
                "lower to a ClusterConfig" % (self.name, self.mode))
        from ..cluster.config import ClusterConfig
        assert self.placement is not None and self.topology is not None
        return ClusterConfig(
            hosts=self.hosts, seed=seed, scenario=self.name,
            variant=self.host.variant, image=self.guest.image,
            spec=self.host.spec,
            epoch_ms=self.topology.epoch_ms,
            net_latency_ms=self.topology.net_latency_ms,
            net_bandwidth_mbps=self.topology.net_bandwidth_mbps,
            guests=self.guests,
            create_spacing_ms=self.traffic.create_spacing_ms,
            placement=self.placement.policy,
            migrations=self.migrations, requests=self.requests,
            request_gap_ms=self.traffic.request_gap_ms,
            service_ms=self.traffic.service_ms,
            fault_rate=self.faults.rate,
            fault_points=self.faults.points,
            recovery=self.faults.recovery)


def _positive_int(value: object, field: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise SpecTypeError(
            field, "field %r: expected a positive integer, got %r"
            % (field, value))
    return value


def _non_negative_int(value: object, field: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise SpecTypeError(
            field, "field %r: expected a non-negative integer, got %r"
            % (field, value))
    return value


# ----------------------------------------------------------------------
# File loading
# ----------------------------------------------------------------------

def loads(text: str, *, format: str = "yaml") -> ScenarioSpec:
    """Parse a YAML or JSON scenario document."""
    if format == "json":
        payload = json.loads(text)
    else:
        import yaml
        payload = yaml.safe_load(text)
    if not isinstance(payload, dict):
        raise SpecTypeError(
            "spec", "a scenario document must be a mapping, got %s"
            % type(payload).__name__)
    return ScenarioSpec.from_dict(payload)


def load_spec(path: typing.Union[str, pathlib.Path]) -> ScenarioSpec:
    """Load a scenario spec from ``path`` (.yaml/.yml/.json)."""
    path = pathlib.Path(path)
    format = "json" if path.suffix.lower() == ".json" else "yaml"
    return loads(path.read_text(), format=format)


__all__ = ["ScenarioSpec", "SpecError", "UnknownSpecKeyError",
           "MissingSpecKeyError", "SpecTypeError", "ComponentError",
           "load_spec", "loads", "MODES"]
