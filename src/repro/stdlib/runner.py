"""Execute one scenario spec for one seed.

``run_scenario(spec, seed)`` is the single entry point every consumer —
the ``repro run`` CLI, the sweep runner, the migrated figure benchmarks
— goes through.  The outcome is a :class:`ScenarioResult` whose
``digest`` is the replay digest of the run's event timeline: for host
mode, the host's :class:`~repro.analysis.sanitize.EventTrace`; for
cluster mode, the combined per-host cluster digest.  The digest is a
pure function of (resolved spec, seed) — backends, worker counts, and
attached observers must not move it.
"""

from __future__ import annotations

import dataclasses
import typing

from ..analysis.sanitize import EventTrace
from ..faults import (InjectedFault, MigrationAborted, Overloaded,
                      RetryExhausted)
from ..sim import RngStream, Simulator
from .spec import ScenarioSpec

#: Fault outcomes a storm absorbs into counters instead of aborting the
#: run (the same set the cluster nodes and chaos campaigns absorb).
ABSORBED = (InjectedFault, Overloaded, MigrationAborted, RetryExhausted)


@dataclasses.dataclass
class ScenarioResult:
    """One (spec, seed) execution, with a picklable summary record."""

    scenario: str
    mode: str
    seed: int
    digest: str
    events: int
    sim_ms: float
    stats: typing.Dict[str, float]
    #: Full measurement series (``create_ms``/``boot_ms``/``total_ms``
    #: for VM storms, ``start_ms`` for container/process storms).  Kept
    #: in-process only — the sweep manifest carries :meth:`record`.
    series: typing.Dict[str, typing.List[float]] = \
        dataclasses.field(default_factory=dict)
    #: The live host, when ``keep_host=True`` (in-process callers only).
    host: typing.Optional[object] = None
    #: The full ClusterResult for cluster-mode runs.
    cluster: typing.Optional[object] = None

    def record(self) -> typing.Dict[str, object]:
        """The manifest entry: JSON scalars only, no series, no host."""
        return {"seed": self.seed, "digest": self.digest,
                "events": self.events, "sim_ms": self.sim_ms,
                "stats": dict(self.stats)}


def run_scenario(spec: ScenarioSpec, seed: int = 0,
                 keep_host: bool = False) -> ScenarioResult:
    """Run ``spec`` once under ``seed``; returns the result + digest."""
    if spec.mode == "cluster":
        return _run_cluster(spec, seed)
    runtime = spec.guest.runtime
    if runtime == "vm":
        return _vm_storm(spec, seed, keep_host)
    if runtime == "container":
        return _container_storm(spec, seed)
    if runtime == "process":
        return _process_storm(spec, seed)
    raise ValueError("guest %s has unknown runtime %r"
                     % (spec.guest.ref(), runtime))


# ----------------------------------------------------------------------
# Cluster mode
# ----------------------------------------------------------------------

def _run_cluster(spec: ScenarioSpec, seed: int) -> ScenarioResult:
    from ..cluster.cluster import Cluster
    config = spec.to_cluster_config(seed)
    result = Cluster(config, backend="inline").run()
    return ScenarioResult(scenario=spec.name, mode="cluster", seed=seed,
                          digest=result.digest, events=result.events,
                          sim_ms=result.sim_ms,
                          stats=dict(result.stats), cluster=result)


# ----------------------------------------------------------------------
# Host mode: VM storms
# ----------------------------------------------------------------------

def _vm_storm(spec: ScenarioSpec, seed: int,
              keep_host: bool) -> ScenarioResult:
    sim = Simulator()
    trace = EventTrace().attach(sim)
    image = spec.guest.build()
    fault_plan = spec.faults.build(seed)
    host = spec.host.build(count=spec.guests, image=image, sim=sim,
                           seed=seed, fault_plan=fault_plan)

    creates: typing.List[float] = []
    boots: typing.List[float] = []
    totals: typing.List[float] = []
    failures = 0
    pattern = spec.traffic.pattern
    live: typing.List[object] = []

    for index in range(spec.guests):
        try:
            record = host.create_vm(image)
        except ABSORBED:
            failures += 1
        else:
            creates.append(record.create_ms)
            boots.append(record.boot_ms)
            totals.append(record.total_ms)
            if pattern == "churn":
                live.append(record.domain)
        if pattern == "bursty" and spec.traffic.burst_size > 0 \
                and (index + 1) % spec.traffic.burst_size == 0:
            sim.run(until=sim.now + spec.traffic.burst_gap_ms)
        elif pattern == "churn" \
                and len(live) > spec.traffic.churn_working_set:
            host.destroy_vm(live.pop(0))

    if fault_plan is not None or pattern == "churn":
        # Drain in-flight teardowns/retries before reading the digest
        # (fault-free boot storms end quiescent already, and adding a
        # drain there would move the digest away from the hand-coded
        # benchmark timelines).
        sim.run(until=sim.now + 100.0)

    stats: typing.Dict[str, float] = {
        "booted": float(len(creates)),
        "create_failed": float(failures),
    }
    if creates:
        stats["create_ms_first"] = creates[0]
        stats["create_ms_last"] = creates[-1]
        stats["create_ms_max"] = max(creates)
        stats["total_ms_max"] = max(totals)
        stats["boot_ms_sum"] = sum(boots)
    return ScenarioResult(
        scenario=spec.name, mode="host", seed=seed,
        digest=trace.digest(), events=trace.events, sim_ms=sim.now,
        stats=stats,
        series={"create_ms": creates, "boot_ms": boots,
                "total_ms": totals},
        host=host if keep_host else None)


# ----------------------------------------------------------------------
# Host mode: container / process baselines
# ----------------------------------------------------------------------

def _container_storm(spec: ScenarioSpec, seed: int) -> ScenarioResult:
    from ..containers import DockerEngine, DockerOOMError
    sim = Simulator()
    trace = EventTrace().attach(sim)
    memory_mb = spec.host.host_spec().memory_gb * 1024
    engine = DockerEngine(sim, RngStream(seed, "docker"), memory_mb)
    times: typing.List[float] = []
    died_at: typing.Optional[int] = None
    for index in range(spec.guests):
        before = sim.now

        def one():
            yield from engine.start_container()
        try:
            proc = sim.process(one())
            sim.run(until=proc)
        except DockerOOMError:
            died_at = index
            break
        times.append(sim.now - before)
    stats: typing.Dict[str, float] = {
        "started": float(len(times)),
        "died_at": float(-1 if died_at is None else died_at),
    }
    if times:
        stats["start_ms_first"] = times[0]
        stats["start_ms_last"] = times[-1]
    return ScenarioResult(
        scenario=spec.name, mode="host", seed=seed,
        digest=trace.digest(), events=trace.events, sim_ms=sim.now,
        stats=stats, series={"start_ms": times})


def _process_storm(spec: ScenarioSpec, seed: int) -> ScenarioResult:
    from ..containers import ProcessSpawner
    sim = Simulator()
    trace = EventTrace().attach(sim)
    spawner = ProcessSpawner(sim, RngStream(seed, "proc"))
    times: typing.List[float] = []
    for _ in range(spec.guests):
        before = sim.now

        def one():
            yield from spawner.spawn()
        proc = sim.process(one())
        sim.run(until=proc)
        times.append(sim.now - before)
    stats = {"started": float(len(times)),
             "start_ms_first": times[0] if times else 0.0,
             "start_ms_last": times[-1] if times else 0.0}
    return ScenarioResult(
        scenario=spec.name, mode="host", seed=seed,
        digest=trace.digest(), events=trace.events, sim_ms=sim.now,
        stats=stats, series={"start_ms": times})
