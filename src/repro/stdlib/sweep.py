"""The parallel multi-seed sweep runner behind ``repro run``.

Reuses the cluster procs worker-pool machinery (persistent fork-preferred
pipe workers, round-robin partitioning, loud error propagation): seeds
are partitioned ``seed_index % workers``, every worker runs its share of
(spec, seed) scenarios to completion, and the coordinator re-imposes
seed order before building the manifest — so the **sweep manifest is a
pure function of (resolved spec, seed set)**; the worker count is
unobservable, which ``tests/test_stdlib_sweep.py`` holds it to across
``--workers {1,2,4}``.

Along with :mod:`repro.cluster.procs`, this is the only module the
RPR010 lint allowlist sanctions to import ``multiprocessing``: workers
host whole scenario runs (each with its own DES engine) and exchange
nothing until their seeds complete, so real concurrency never touches a
timeline mid-flight.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import traceback
import typing

from .runner import run_scenario
from .spec import ScenarioSpec

#: Manifest schema version (mirrors the chaos/cluster reproducer
#: contract).
MANIFEST_VERSION = 1


class SweepError(RuntimeError):
    """A sweep that cannot complete (dead worker, failed seed, ...)."""


def _worker_main(conn, payload: dict,
                 seeds: typing.List[int]) -> None:
    """Child entry: run this worker's share of seeds, reply once."""
    try:
        spec = ScenarioSpec.from_dict(payload)
        records = [run_scenario(spec, seed=seed).record()
                   for seed in seeds]
        conn.send(("ok", records))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # coordinator already gone
            pass
    finally:
        conn.close()


def _run_parallel(spec: ScenarioSpec, seeds: typing.List[int],
                  workers: int) -> typing.List[dict]:
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    partition = [[seed for index, seed in enumerate(seeds)
                  if index % workers == worker]
                 for worker in range(workers)]
    conns = []
    procs = []
    payload = dict(spec.source)
    try:
        for worker in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, payload,
                                     partition[worker]),
                               daemon=True)
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        records: typing.List[dict] = []
        for conn in conns:
            try:
                reply = conn.recv()
            except EOFError:
                raise SweepError(
                    "sweep worker died without a reply (see stderr for "
                    "the child traceback)")
            if reply[0] == "error":
                raise SweepError("sweep worker failed:\n%s" % reply[1])
            records.extend(reply[1])
        return records
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)


def manifest_digest(spec_digest: str,
                    records: typing.Sequence[dict]) -> str:
    """SHA-256 over (spec digest, ordered (seed, run-digest) pairs)."""
    rollup = hashlib.sha256()
    rollup.update(("spec:%s\n" % spec_digest).encode("ascii"))
    for record in records:
        rollup.update(("%d:%s\n" % (record["seed"], record["digest"]))
                      .encode("ascii"))
    return rollup.hexdigest()


def run_sweep(spec: ScenarioSpec, seeds: typing.Sequence[int],
              workers: int = 1) -> dict:
    """Run ``spec`` under every seed in ``seeds``; returns the manifest.

    ``workers == 1`` runs inline (no subprocesses); ``workers > 1`` fans
    seeds out over the pool.  Either way the manifest — including its
    digest — depends only on the resolved spec and the seed set.
    """
    seeds = list(seeds)
    if not seeds:
        raise SweepError("a sweep needs at least one seed")
    if len(set(seeds)) != len(seeds):
        raise SweepError("duplicate seeds in sweep: %s"
                         % ", ".join(str(s) for s in seeds))
    workers = max(1, min(int(workers), len(seeds)))
    if workers == 1:
        records = [run_scenario(spec, seed=seed).record()
                   for seed in seeds]
    else:
        records = _run_parallel(spec, seeds, workers)
    records.sort(key=lambda record: record["seed"])
    spec_digest = spec.digest()
    totals: typing.Dict[str, float] = {}
    events = 0
    sim_ms = 0.0
    for record in records:
        events += record["events"]
        sim_ms = max(sim_ms, record["sim_ms"])
        for key in sorted(record["stats"]):
            value = record["stats"][key]
            # Latencies/quantile-ish keys take the worst seed; counters
            # and _sum keys accumulate across the sweep.
            if (("_ms" in key and not key.endswith("_sum"))
                    or key == "died_at"):
                totals[key] = max(totals.get(key, value), value)
            else:
                totals[key] = totals.get(key, 0.0) + value
    return {"version": MANIFEST_VERSION,
            "tool": "repro run",
            "scenario": spec.name,
            "mode": spec.mode,
            "spec": dict(spec.source),
            "resolved": spec.canonical(),
            "spec_digest": spec_digest,
            "seeds": sorted(seeds),
            "runs": records,
            "events": events,
            "sim_ms": sim_ms,
            "stats": totals,
            "manifest_digest": manifest_digest(spec_digest, records)}


def replay_manifest(payload: dict, workers: int = 1
                    ) -> typing.Tuple[bool, dict]:
    """Re-run a sweep manifest and verify its digest bit-for-bit."""
    if payload.get("version") != MANIFEST_VERSION:
        raise SweepError("unsupported manifest version %r"
                         % (payload.get("version"),))
    spec = ScenarioSpec.from_dict(payload["spec"])
    result = run_sweep(spec, payload.get("seeds", []), workers=workers)
    same = (result["manifest_digest"] == payload.get("manifest_digest")
            and result["spec_digest"] == payload.get("spec_digest"))
    return same, result


def bench_payload(manifest: dict,
                  wall_s: typing.Optional[float] = None) -> dict:
    """A BENCH-style record for ``repro bench-trend`` / ``bench-gate``.

    The figure id is ``sweep-<scenario>``; the data series carries the
    per-seed digests and the aggregate counters, so a trend diff shows
    both wall-clock drift and any behavioral divergence seed by seed.
    """
    runs = manifest["runs"]
    return {
        "figure": "sweep-%s" % manifest["scenario"],
        "title": "SWEEP %s (%d seed(s), mode %s)"
                 % (manifest["scenario"], len(runs), manifest["mode"]),
        "scale": "quick",
        "wall_clock_s": wall_s,
        "data": {
            "seeds": len(runs),
            "spec_digest": manifest["spec_digest"],
            "manifest_digest": manifest["manifest_digest"],
            "events": manifest["events"],
            "sim_ms": manifest["sim_ms"],
            "stats": dict(manifest["stats"]),
            "run_digests": [[record["seed"], record["digest"]]
                            for record in runs],
        },
    }


def write_bench_json(manifest: dict, path,
                     wall_s: typing.Optional[float] = None) -> None:
    """Write the BENCH-style JSON next to the other ``BENCH_*.json``."""
    payload = bench_payload(manifest, wall_s=wall_s)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
