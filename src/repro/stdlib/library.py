"""The built-in component library.

Concrete component types (host profiles, guest footprints, traffic
patterns, fault plans, placement policies, topologies) and the standard
instances every scenario spec can reference by ``name@version``.

Each type carries a ``build()`` hook that turns the declarative record
into the live object the runner needs (a :class:`~repro.core.host.Host`,
a :class:`~repro.guests.images.GuestImage`, a
:class:`~repro.faults.plan.FaultPlan`); pure-data components (traffic,
placement, topology) are consumed field-by-field when a spec is lowered
onto a single-host storm or a :class:`~repro.cluster.config.ClusterConfig`.
"""

from __future__ import annotations

import dataclasses
import typing

from ..core.hostspec import (AMD_OPTERON_64, XEON_E5_1630, XEON_E5_2690,
                             HostSpec)
from ..guests.catalog import CATALOG
from ..guests.images import GuestImage
from .components import Component, register

#: Host specs addressable from a component (superset of the cluster's).
HOST_SPECS: typing.Dict[str, HostSpec] = {
    "xeon-e5-1630": XEON_E5_1630,
    "xeon-e5-2690": XEON_E5_2690,
    "amd-opteron-64": AMD_OPTERON_64,
}


@dataclasses.dataclass(frozen=True)
class HostProfile(Component):
    """One machine + toolstack configuration.

    ``pooled`` selects the chaos shell-pool discipline the LightVM
    benchmarks use (pool pre-filled to ``guests + pool_slack`` shells,
    ``warmup_ms_per_shell`` simulated ms of pre-fill per shell); with
    ``pooled: false`` the host keeps its stock defaults — the Fig 4
    stock-Xen storms run that way.
    """

    kind: typing.ClassVar[str] = "host"

    spec: str = "xeon-e5-1630"
    variant: str = "lightvm"
    xenstore_workers: int = 1
    xenstore_batch: bool = False
    pooled: bool = True
    pool_slack: int = 64
    warmup_ms_per_shell: float = 20.0

    def host_spec(self) -> HostSpec:
        return HOST_SPECS[self.spec]

    def build(self, *, count: int, image: typing.Optional[GuestImage],
              sim=None, seed: int = 0, fault_plan=None):
        """Construct (and pre-warm) the host for a ``count``-guest run."""
        from ..core.host import Host
        kwargs: typing.Dict[str, object] = dict(
            spec=self.host_spec(), variant=self.variant, seed=seed,
            sim=sim, xenstore_workers=self.xenstore_workers,
            xenstore_batch=self.xenstore_batch, fault_plan=fault_plan)
        if self.pooled:
            kwargs["pool_target"] = count + self.pool_slack
            if image is not None:
                kwargs["shell_memory_kb"] = image.memory_kb
        host = Host(**kwargs)
        if self.pooled and self.warmup_ms_per_shell > 0:
            host.warmup(self.warmup_ms_per_shell
                        * (count + self.pool_slack))
        return host


@dataclasses.dataclass(frozen=True)
class GuestProfile(Component):
    """A guest footprint: a VM image from the catalogue, or one of the
    container/process baselines the paper compares against."""

    kind: typing.ClassVar[str] = "guest"

    #: Catalogue image name (``runtime == "vm"`` only).
    image: str = ""
    #: ``vm`` | ``container`` | ``process``.
    runtime: str = "vm"

    def build(self) -> GuestImage:
        if self.runtime != "vm":
            raise ValueError("guest %s has runtime %r, not a VM image"
                             % (self.ref(), self.runtime))
        return CATALOG[self.image]


@dataclasses.dataclass(frozen=True)
class TrafficPattern(Component):
    """How load arrives.

    Single-host storms read ``pattern`` plus the burst/churn knobs; the
    cluster lowering maps the arrival knobs onto
    :class:`~repro.cluster.config.ClusterConfig` fields
    (``create_spacing_ms``, ``request_gap_ms``, ``service_ms``).
    """

    kind: typing.ClassVar[str] = "traffic"

    #: ``boot-storm`` | ``bursty`` | ``open-loop`` | ``churn``.
    pattern: str = "boot-storm"
    #: Bursty storms: creates per burst / idle gap between bursts.
    burst_size: int = 16
    burst_gap_ms: float = 50.0
    #: Churn storms: live guests kept resident (oldest destroyed first).
    churn_working_set: int = 8
    #: Cluster create ramp: gap between consecutive create commands.
    create_spacing_ms: float = 3.0
    #: Open-loop request streams: mean inter-arrival gap / service time.
    request_gap_ms: float = 1.0
    service_ms: float = 0.5


@dataclasses.dataclass(frozen=True)
class FaultProfile(Component):
    """A named fault plan (rate, point pattern, recovery posture)."""

    kind: typing.ClassVar[str] = "faults"

    rate: float = 0.0
    points: str = "*"
    #: Attach the PR-6 recovery layer (watchdog, reaper, journal).
    recovery: bool = False

    def build(self, seed: int):
        """The per-run :class:`FaultPlan`, or ``None`` for rate 0."""
        if self.rate <= 0.0:
            return None
        from ..faults import FaultPlan
        return FaultPlan.uniform(self.rate, points=self.points, seed=seed)


@dataclasses.dataclass(frozen=True)
class PlacementProfile(Component):
    """Cluster placement policy."""

    kind: typing.ClassVar[str] = "placement"

    policy: str = "least-loaded"


@dataclasses.dataclass(frozen=True)
class TopologyProfile(Component):
    """Cluster interconnect: epoch window, latency floor, bandwidth."""

    kind: typing.ClassVar[str] = "topology"

    epoch_ms: float = 5.0
    net_latency_ms: float = 5.0
    net_bandwidth_mbps: float = 10000.0


#: Component kind -> dataclass type (the spec layer dispatches on this).
KINDS: typing.Dict[str, type] = {
    "host": HostProfile,
    "guest": GuestProfile,
    "traffic": TrafficPattern,
    "faults": FaultProfile,
    "placement": PlacementProfile,
    "topology": TopologyProfile,
}


# ----------------------------------------------------------------------
# Standard instances (version 1 of everything)
# ----------------------------------------------------------------------

#: One host profile per toolstack variant on the paper's 4-core Xeon —
#: the Fig 9 contenders.
for _variant in ("xl", "chaos+xs", "chaos+xs+split", "chaos+noxs",
                 "lightvm"):
    register(HostProfile(name=_variant, version=1, variant=_variant))

#: The 64-core AMD density machine (Fig 10): LightVM with the quicker
#: 12 ms/shell pre-fill the density benchmark uses.
register(HostProfile(name="lightvm-64core", version=1,
                     spec="amd-opteron-64", variant="lightvm",
                     warmup_ms_per_shell=12.0))

#: The PR-5 batched multi-worker control plane, as a distinct component
#: (the ablation configuration — never silently substituted for
#: ``lightvm@1``, which the Fig 10 gate pins to workers=1).
register(HostProfile(name="lightvm-batched", version=1,
                     variant="lightvm", xenstore_workers=4,
                     xenstore_batch=True))

#: Every catalogue image is a guest component at version 1: unikernel
#: (noop/daytime/...), Tinyx, and full-VM (debian) footprints.
for _name in sorted(CATALOG):
    register(GuestProfile(name=_name, version=1, image=_name))

#: The container and process baselines from Figs 4 and 10.
register(GuestProfile(name="docker", version=1, runtime="container"))
register(GuestProfile(name="process", version=1, runtime="process"))

#: Traffic patterns.
register(TrafficPattern(name="boot-storm", version=1,
                        pattern="boot-storm"))
register(TrafficPattern(name="open-loop", version=1, pattern="open-loop"))
register(TrafficPattern(name="bursty", version=1, pattern="bursty"))
register(TrafficPattern(name="churn", version=1, pattern="churn"))

#: Fault plans.
register(FaultProfile(name="none", version=1, rate=0.0))
register(FaultProfile(name="light", version=1, rate=0.01))
register(FaultProfile(name="heavy", version=1, rate=0.05, recovery=True))

#: Placement policies.
register(PlacementProfile(name="least-loaded", version=1,
                          policy="least-loaded"))
register(PlacementProfile(name="first-fit", version=1,
                          policy="first-fit"))

#: Topologies.
register(TopologyProfile(name="lan", version=1))
register(TopologyProfile(name="wan", version=1, epoch_ms=20.0,
                         net_latency_ms=20.0,
                         net_bandwidth_mbps=1000.0))
