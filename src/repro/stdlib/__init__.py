"""repro.stdlib — the scenario standard library.

A gem5-stdlib-style component registry (named, versioned host profiles,
guest footprints, traffic patterns, fault plans, placement policies and
topologies), a declarative :class:`ScenarioSpec` (YAML/JSON) composing
them into single-host or cluster runs, a runner, and a parallel
multi-seed sweep whose manifest is a pure function of (spec, seed set).

Entry points:

* ``load_spec(path)`` / ``ScenarioSpec.from_dict(payload)`` — validate a
  scenario document (typed errors, no silent defaulting);
* ``run_scenario(spec, seed)`` — one run, one replay digest;
* ``run_sweep(spec, seeds, workers)`` — the sweep manifest behind
  ``repro run``;
* ``preset(name)`` / ``storm_spec(...)`` — the standing experiments.
"""

from .components import (Component, ComponentError,
                         ComponentOverrideError, ComponentVersionError,
                         DuplicateComponentError, UnknownComponentError,
                         catalogue, kinds, lookup, names, register,
                         resolve, versions_of)
from .library import (KINDS, FaultProfile, GuestProfile, HostProfile,
                      PlacementProfile, TopologyProfile, TrafficPattern)
from .presets import PRESETS, preset, storm_spec
from .runner import ScenarioResult, run_scenario
from .spec import (MissingSpecKeyError, ScenarioSpec, SpecError,
                   SpecTypeError, UnknownSpecKeyError, load_spec, loads)
from .sweep import (MANIFEST_VERSION, SweepError, bench_payload,
                    manifest_digest, replay_manifest, run_sweep,
                    write_bench_json)

__all__ = [
    # components
    "Component", "ComponentError", "ComponentOverrideError",
    "ComponentVersionError", "DuplicateComponentError",
    "UnknownComponentError", "register", "lookup", "resolve",
    "kinds", "names", "versions_of", "catalogue",
    # library
    "KINDS", "HostProfile", "GuestProfile", "TrafficPattern",
    "FaultProfile", "PlacementProfile", "TopologyProfile",
    # spec
    "ScenarioSpec", "SpecError", "UnknownSpecKeyError",
    "MissingSpecKeyError", "SpecTypeError", "load_spec", "loads",
    # runner / sweep
    "ScenarioResult", "run_scenario", "run_sweep", "replay_manifest",
    "manifest_digest", "bench_payload", "write_bench_json",
    "SweepError", "MANIFEST_VERSION",
    # presets
    "PRESETS", "preset", "storm_spec",
]
