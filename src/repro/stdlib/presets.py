"""Named scenario presets: the repo's standing experiments as specs.

These are the declarative equivalents of the hand-coded entry points
that predate the stdlib: the two cluster scenarios behind ``repro
cluster`` (whose old builders in :mod:`repro.cluster.config` are now
thin shims over :func:`preset`), and a helper for the single-host storm
shape the figure benchmarks use.
"""

from __future__ import annotations

import typing

from .spec import ScenarioSpec

#: ``repro cluster --scenario boot-storm`` — a create ramp across N
#: LightVM hosts (the generalized Fig 10 shape).
BOOT_STORM: typing.Dict[str, object] = {
    "name": "boot-storm",
    "mode": "cluster",
    "host": "lightvm-64core@1",
    "guest": "noop@1",
    "traffic": "boot-storm@1",
    "faults": "none@1",
    "placement": "least-loaded@1",
    "topology": "lan@1",
    "hosts": 8,
    "guests": 32,
    "requests": 0,
    "migrations": 0,
}

#: ``repro cluster --scenario migration-churn`` — boot a fleet, then
#: churn guests between hosts (Fig 13 generalized to cluster placement).
MIGRATION_CHURN: typing.Dict[str, object] = {
    "name": "migration-churn",
    "mode": "cluster",
    "host": "lightvm-64core@1",
    "guest": "noop@1",
    "traffic": "churn@1",
    "faults": "none@1",
    "placement": "least-loaded@1",
    "topology": "lan@1",
    "hosts": 4,
    "guests": 16,
    "requests": 0,
    "migrations": 8,
}

PRESETS: typing.Dict[str, typing.Dict[str, object]] = {
    "boot-storm": BOOT_STORM,
    "migration-churn": MIGRATION_CHURN,
}


def preset(name: str, **workload) -> ScenarioSpec:
    """The named preset, with workload scalars optionally overridden.

    ``workload`` keys are spec keys (``hosts``, ``guests``,
    ``requests``, ``migrations``, or even component references) — they
    go through the same strict validation as a spec file.
    """
    if name not in PRESETS:
        raise KeyError("unknown preset %r (have: %s)"
                       % (name, ", ".join(sorted(PRESETS))))
    payload = dict(PRESETS[name])
    payload.update(workload)
    return ScenarioSpec.from_dict(payload)


def storm_spec(name: str, host: object, guest: object, guests: int,
               traffic: object = "boot-storm@1",
               faults: object = "none@1") -> ScenarioSpec:
    """A single-host storm spec — the shape every figure benchmark is.

    ``host``/``guest``/``traffic``/``faults`` take anything a spec file
    accepts: a pinned ``name@version`` string or a ``{"ref": ...}``
    mapping with parameter overrides.
    """
    return ScenarioSpec.from_dict({
        "name": name, "mode": "host", "host": host, "guest": guest,
        "traffic": traffic, "faults": faults, "guests": guests})
