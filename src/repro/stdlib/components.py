"""The component model: named, versioned building blocks for scenarios.

Following the gem5 standard-library design, every reusable piece of an
experiment — a host profile, a guest image footprint, a traffic pattern,
a fault plan, a placement policy, a topology — is a small frozen
dataclass with a ``name``, a ``version`` and a ``build()`` hook, held in
a global registry keyed by ``(kind, name, version)``.

Versioning contract:

* a registered component is **immutable**: changing any parameter of a
  published ``name@version`` is forbidden — bump the version instead and
  register the new instance alongside the old one;
* scenario specs must **pin** a version (``daytime@1``); an unversioned
  reference is a typed error, never a silent "latest" (reproducibility
  by construction — an old spec file keeps meaning what it meant);
* a spec may override individual component *parameters* (``{"ref":
  "xl@1", "pooled": false}``); the override set is part of the resolved
  spec and therefore of the spec digest.

Everything here is plain data resolution — no simulation state, no
clocks, no randomness.
"""

from __future__ import annotations

import dataclasses
import typing


class ComponentError(ValueError):
    """Base class for component-resolution failures.

    ``field`` names the scenario-spec field whose value failed to
    resolve, so error messages always point at the offending line of the
    spec rather than at registry internals.
    """

    def __init__(self, field: str, message: str):
        self.field = field
        super().__init__(message)


class UnknownComponentError(ComponentError):
    """The referenced component name is not in the registry."""


class ComponentVersionError(ComponentError):
    """The referenced version does not exist (or none was pinned)."""


class ComponentOverrideError(ComponentError):
    """A parameter override names an unknown or reserved field."""


class DuplicateComponentError(ValueError):
    """A second registration for an existing (kind, name, version)."""


@dataclasses.dataclass(frozen=True)
class Component:
    """Base record every library component derives from."""

    name: str
    version: int

    #: Registry namespace; subclasses set this ("host", "guest", ...).
    kind: typing.ClassVar[str] = "component"

    def ref(self) -> str:
        """The canonical pinned reference, ``name@version``."""
        return "%s@%d" % (self.name, self.version)

    def params(self) -> typing.Dict[str, object]:
        """The component's parameters (everything but name/version)."""
        out = {}
        for field in dataclasses.fields(self):
            if field.name in ("name", "version"):
                continue
            out[field.name] = getattr(self, field.name)
        return out

    def describe(self) -> typing.Dict[str, object]:
        """Fully-resolved JSON record (feeds the spec digest)."""
        record: typing.Dict[str, object] = {
            "kind": self.kind, "name": self.name, "version": self.version}
        record.update(self.params())
        return record


#: kind -> name -> version -> component instance.
_REGISTRY: typing.Dict[str, typing.Dict[str, typing.Dict[int, Component]]] \
    = {}


def register(component: Component) -> Component:
    """Add ``component`` to the library; duplicate versions are loud."""
    by_name = _REGISTRY.setdefault(component.kind, {})
    versions = by_name.setdefault(component.name, {})
    if component.version in versions:
        raise DuplicateComponentError(
            "component %s %r already has a version %d; published "
            "components are immutable — bump the version instead"
            % (component.kind, component.name, component.version))
    versions[component.version] = component
    return component


def kinds() -> typing.List[str]:
    return sorted(_REGISTRY)


def names(kind: str) -> typing.List[str]:
    return sorted(_REGISTRY.get(kind, {}))


def versions_of(kind: str, name: str) -> typing.List[int]:
    return sorted(_REGISTRY.get(kind, {}).get(name, {}))


def catalogue() -> typing.List[Component]:
    """Every registered component, in (kind, name, version) order."""
    out: typing.List[Component] = []
    for kind in sorted(_REGISTRY):
        by_name = _REGISTRY[kind]
        for name in sorted(by_name):
            for version in sorted(by_name[name]):
                out.append(by_name[name][version])
    return out


def _parse_ref(field: str, text: str) -> typing.Tuple[str, int]:
    """Split ``name@version``; an unpinned version is a typed error."""
    if "@" not in text:
        raise ComponentVersionError(
            field,
            "field %r: component reference %r pins no version; write "
            "'%s@<version>' (specs must be reproducible by construction, "
            "so there is no implicit 'latest')" % (field, text, text))
    name, _, version_text = text.rpartition("@")
    try:
        version = int(version_text)
    except ValueError:
        raise ComponentVersionError(
            field, "field %r: malformed version %r in reference %r "
            "(expected an integer)" % (field, version_text, text))
    return name, version


def lookup(kind: str, name: str, version: int,
           field: str = "?") -> Component:
    """Fetch ``kind`` component ``name@version``; typed errors name the
    spec field and list what *is* available."""
    by_name = _REGISTRY.get(kind, {})
    if name not in by_name:
        raise UnknownComponentError(
            field, "field %r: unknown %s component %r (known: %s)"
            % (field, kind, name, ", ".join(sorted(by_name)) or "none"))
    versions = by_name[name]
    if version not in versions:
        raise ComponentVersionError(
            field, "field %r: %s component %r has no version %d "
            "(have: %s)" % (field, kind, name, version,
                            ", ".join(str(v) for v in sorted(versions))))
    return versions[version]


def resolve(kind: str, ref: object, field: str) -> Component:
    """Resolve a spec-level component reference.

    Accepted shapes:

    * ``"name@version"`` — the plain pinned reference;
    * ``{"ref": "name@version", <param>: <value>, ...}`` — a pinned
      reference plus parameter overrides, applied with
      :func:`dataclasses.replace` after validation.
    """
    if isinstance(ref, str):
        name, version = _parse_ref(field, ref)
        return lookup(kind, name, version, field=field)
    if isinstance(ref, dict):
        payload = dict(ref)
        text = payload.pop("ref", None)
        if not isinstance(text, str):
            raise ComponentOverrideError(
                field, "field %r: a component mapping needs a 'ref' key "
                "with a 'name@version' string, got %r" % (field, ref))
        name, version = _parse_ref(field, text)
        component = lookup(kind, name, version, field=field)
        return _apply_overrides(component, payload, field)
    raise ComponentOverrideError(
        field, "field %r: expected a 'name@version' string or a mapping "
        "with a 'ref' key, got %r" % (field, ref))


def _apply_overrides(component: Component,
                     overrides: typing.Dict[str, object],
                     field: str) -> Component:
    if not overrides:
        return component
    allowed = set(component.params())
    for key in sorted(overrides):
        if key in ("name", "version", "kind"):
            raise ComponentOverrideError(
                field, "field %r: cannot override reserved key %r of "
                "%s — reference a different component instead"
                % (field, key, component.ref()))
        if key not in allowed:
            raise ComponentOverrideError(
                field, "field %r: %s has no parameter %r "
                "(overridable: %s)" % (field, component.ref(), key,
                                       ", ".join(sorted(allowed))))
        current = getattr(component, key)
        value = overrides[key]
        if not _compatible(current, value):
            raise ComponentOverrideError(
                field, "field %r: parameter %r of %s expects %s, got %r"
                % (field, key, component.ref(),
                   type(current).__name__, value))
    return dataclasses.replace(component, **overrides)


def _compatible(current: object, value: object) -> bool:
    """Loose type check for an override value against the default."""
    if isinstance(current, bool):
        return isinstance(value, bool)
    if isinstance(current, (int, float)):
        return isinstance(value, (int, float)) \
            and not isinstance(value, bool)
    if current is None:
        return True
    return isinstance(value, type(current))
