"""repro — a reproduction of "My VM is Lighter (and Safer) than your
Container" (Manco et al., SOSP 2017) as a discrete-event simulation of a
Xen-style virtualization host.

Quickstart::

    from repro.core import Host, XEON_E5_1630
    from repro.guests import DAYTIME_UNIKERNEL

    host = Host(spec=XEON_E5_1630, variant="lightvm")
    record = host.create_vm(DAYTIME_UNIKERNEL)
    print("created in %.2f ms, booted in %.2f ms"
          % (record.create_ms, record.boot_ms))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every figure.
"""

__version__ = "1.0.0"

from .core import Host  # noqa: F401  (re-exported convenience)
