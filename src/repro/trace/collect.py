"""Host scraping: fold every subsystem's counters into one registry.

:func:`collect_host_metrics` walks a live :class:`~repro.core.host.Host`
and publishes its state through a :class:`MetricsRegistry` — the same
counters :func:`repro.core.stats.snapshot` reads, plus the fault-injector
tallies and scheduler/memory gauges.  Repeated calls against the same
registry refresh gauges in place and reset counters to the subsystems'
current values, so the registry always reflects "now".
"""

from __future__ import annotations

import typing

from .metrics import MetricsRegistry

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.host import Host


def _set_counter(registry: MetricsRegistry, name: str, value: int) -> None:
    counter = registry.counter(name)
    # Scrapes publish the subsystem's own monotone total; later scrapes
    # only ever move it forward, so overwrite rather than accumulate.
    counter.value = int(value)


def collect_host_metrics(host: "Host",
                         registry: typing.Optional[MetricsRegistry] = None
                         ) -> MetricsRegistry:
    """Scrape ``host`` into ``registry`` (created if not given)."""
    from ..hypervisor.domain import DomainState

    registry = registry if registry is not None else MetricsRegistry(
        sim=host.sim)

    # --- hypervisor ---------------------------------------------------
    for op in sorted(host.hypervisor.hypercall_counts):
        _set_counter(registry, "hypervisor/hypercalls/" + op,
                     host.hypervisor.hypercall_counts[op])
    registry.gauge("hypervisor/event_channels/dom0").set(
        host.hypervisor.event_channels.count_for(0))
    registry.gauge("hypervisor/grants/dom0").set(
        host.hypervisor.grants.count_for(0))

    # --- domains and memory -------------------------------------------
    by_state: typing.Dict[str, int] = {}
    shell_kb = 0
    for domain in host.hypervisor.domains.values():
        if domain.domid == 0:
            continue
        by_state[domain.state.value] = by_state.get(domain.state.value,
                                                    0) + 1
        if domain.state is DomainState.SHELL:
            shell_kb += domain.memory_kb
    for state in sorted(by_state):
        registry.gauge("domains/" + state).set(by_state[state])
    guest_kb = (host.hypervisor.memory.used_kb
                - host.spec.dom0_memory_kb - shell_kb)
    registry.gauge("memory/guest_kb").set(guest_kb)
    registry.gauge("memory/shell_kb").set(shell_kb)
    registry.gauge("memory/free_kb").set(host.hypervisor.memory.free_kb)
    registry.gauge("cpu/utilization").set(host.cpu_utilization())

    # --- XenStore -----------------------------------------------------
    if host.xenstore is not None:
        for key in sorted(host.xenstore.stats):
            _set_counter(registry, "xenstore/" + key,
                         host.xenstore.stats[key])
        registry.gauge("xenstore/watches").set(len(host.xenstore.watches))
        registry.gauge("xenstore/nodes").set(
            host.xenstore.tree.count_nodes())

    # --- noxs ---------------------------------------------------------
    if host.noxs is not None:
        for key in sorted(host.noxs.stats):
            _set_counter(registry, "noxs/" + key, host.noxs.stats[key])

    # --- shell pool ---------------------------------------------------
    if host.daemon is not None:
        registry.gauge("shellpool/ready").set(len(host.daemon.pool))
        registry.gauge("shellpool/target").set(host.daemon.pool_target)

    # --- fault injection ----------------------------------------------
    for point, counts in host.faults.metrics().items():
        _set_counter(registry, "faults/%s/occurrences" % point,
                     counts["occurrences"])
        _set_counter(registry, "faults/%s/injected" % point,
                     counts["injected"])

    return registry
