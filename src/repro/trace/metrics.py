"""The metrics registry: counters, gauges, sim-time-weighted histograms.

One :class:`MetricsRegistry` is the single scrape point for everything
the subsystems count.  Three instrument kinds cover the repo's needs:

* :class:`Counter` — monotonically increasing totals (hypercalls issued,
  XenStore ops served, devices created);
* :class:`Gauge` — instantaneous levels that also integrate over
  *simulated* time, so ``time_weighted_mean()`` answers "how full was
  the shell pool on average", not "how full was it when I looked";
* :class:`Histogram` — fixed-boundary distributions whose observations
  may carry a weight; span durations land here (weight 1 per span), and
  time-in-state samples use the dwell time as the weight.

Instruments are created on first use (``registry.counter("x").inc()``)
and re-fetched by name thereafter; asking for an existing name with a
different kind is an error, not a silent shadow.  Rendering sorts by
name so output is stable regardless of creation order.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator

#: Default histogram boundaries (upper edges), tuned for the repo's
#: millisecond latencies: 1 µs up to 100 s, roughly 1-2-5 per decade.
DEFAULT_BUCKETS = (0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
                   1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                   1000.0, 2000.0, 5000.0, 10000.0, 100000.0)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % amount)
        self.value += amount

    def describe(self) -> str:
        return "%d" % self.value


class Gauge:
    """An instantaneous level with a sim-time-weighted integral.

    ``set()``/``inc()``/``dec()`` update the level; when the gauge was
    built with a simulator, every change accumulates ``level × dwell``
    so :meth:`time_weighted_mean` reports the average level over the
    observed interval (the right statistic for pool depths, queue
    lengths and utilization).
    """

    kind = "gauge"
    __slots__ = ("name", "value", "_sim", "_since", "_integral")

    def __init__(self, name: str, sim: typing.Optional["Simulator"] = None):
        self.name = name
        self.value = 0.0
        self._sim = sim
        self._since = sim.now if sim is not None else 0.0
        self._integral = 0.0

    def _accumulate(self) -> None:
        if self._sim is not None:
            now = self._sim.now
            self._integral += self.value * (now - self._since)
            self._since = now

    def set(self, value: float) -> None:
        self._accumulate()
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def time_weighted_mean(self, start_ms: float = 0.0) -> float:
        """Average level from ``start_ms`` to now (current level if no
        simulator or no time has passed)."""
        self._accumulate()
        if self._sim is None:
            return self.value
        elapsed = self._sim.now - start_ms
        if elapsed <= 0.0:
            return self.value
        return self._integral / elapsed

    def describe(self) -> str:
        return "%g" % self.value


class Histogram:
    """A fixed-boundary distribution of weighted observations."""

    kind = "histogram"
    __slots__ = ("name", "bounds", "bucket_weights", "count", "total",
                 "weight", "min", "max")

    def __init__(self, name: str,
                 buckets: typing.Optional[typing.Sequence[float]] = None):
        self.name = name
        self.bounds = tuple(sorted(buckets if buckets is not None
                                   else DEFAULT_BUCKETS))
        #: One weight accumulator per bucket, plus the overflow bucket.
        self.bucket_weights = [0.0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.weight = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float, weight: float = 1.0) -> None:
        """Record one observation (``weight`` defaults to a plain count;
        pass a dwell time for sim-time-weighted distributions)."""
        if weight < 0:
            raise ValueError("negative weight %r" % weight)
        self.count += 1
        self.total += value * weight
        self.weight += weight
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_weights[self._bucket(value)] += weight

    def _bucket(self, value: float) -> int:
        low, high = 0, len(self.bounds)
        while low < high:
            mid = (low + high) // 2
            if value <= self.bounds[mid]:
                high = mid
            else:
                low = mid + 1
        return low

    def mean(self) -> float:
        return self.total / self.weight if self.weight else 0.0

    def quantile(self, q: float) -> float:
        """Approximate weighted q-quantile (0..1) from the buckets.

        Returns the interpolated position inside the bucket containing
        the q-th weight; exact at bucket edges, clamped to the observed
        min/max so tiny samples do not report impossible tails.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1], got %r" % q)
        if self.weight == 0.0:
            return 0.0
        target = q * self.weight
        cumulative = 0.0
        for index, bucket_weight in enumerate(self.bucket_weights):
            if cumulative + bucket_weight >= target and bucket_weight > 0:
                lower = (self.bounds[index - 1] if index > 0 else 0.0)
                upper = (self.bounds[index] if index < len(self.bounds)
                         else self.max)
                fraction = ((target - cumulative) / bucket_weight
                            if bucket_weight else 0.0)
                estimate = lower + (upper - lower) * fraction
                return min(self.max, max(self.min, estimate))
            cumulative += bucket_weight
        return self.max

    def describe(self) -> str:
        if self.count == 0:
            return "empty"
        return ("n=%d mean=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f"
                % (self.count, self.mean(), self.min, self.quantile(0.5),
                   self.quantile(0.99), self.max))


Instrument = typing.Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self, sim: typing.Optional["Simulator"] = None):
        self.sim = sim
        self._instruments: typing.Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, kind: str, factory) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise TypeError("metric %r is a %s, not a %s"
                            % (name, instrument.kind, kind))
        return instrument

    def counter(self, name: str) -> Counter:
        return typing.cast(Counter, self._get_or_create(
            name, "counter", lambda: Counter(name)))

    def gauge(self, name: str) -> Gauge:
        return typing.cast(Gauge, self._get_or_create(
            name, "gauge", lambda: Gauge(name, sim=self.sim)))

    def histogram(self, name: str,
                  buckets: typing.Optional[typing.Sequence[float]] = None
                  ) -> Histogram:
        return typing.cast(Histogram, self._get_or_create(
            name, "histogram", lambda: Histogram(name, buckets=buckets)))

    def get(self, name: str) -> typing.Optional[Instrument]:
        """Look up an instrument without creating it."""
        return self._instruments.get(name)

    def names(self) -> typing.List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> typing.Dict[str, typing.Dict[str, object]]:
        """A JSON-ready snapshot of every instrument, sorted by name."""
        out: typing.Dict[str, typing.Dict[str, object]] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if instrument.kind == "histogram":
                histogram = typing.cast(Histogram, instrument)
                out[name] = {
                    "kind": "histogram", "count": histogram.count,
                    "mean": histogram.mean(),
                    "min": histogram.min if histogram.count else 0.0,
                    "max": histogram.max if histogram.count else 0.0,
                    "p50": histogram.quantile(0.5),
                    "p90": histogram.quantile(0.9),
                    "p99": histogram.quantile(0.99),
                }
            else:
                out[name] = {"kind": instrument.kind,
                             "value": instrument.value}
        return out

    def render(self) -> str:
        """A fixed-width table, one instrument per line, sorted by name."""
        lines = ["%-44s %-9s %s" % ("metric", "kind", "value")]
        for name in self.names():
            instrument = self._instruments[name]
            lines.append("%-44s %-9s %s" % (name, instrument.kind,
                                            instrument.describe()))
        return "\n".join(lines)
