"""The span tracer: sim-time intervals with nesting and attributes.

A :class:`Span` is one named interval of *simulated* time with structured
attributes — ``tracer.span("xenstore.txn", domid=3)`` — opened and closed
as a context manager around the work it measures.  Spans nest: the parent
of a new span is the innermost span still open *in the same simulation
process*, so two interleaved ``create_vm`` coroutines each get their own
stack and never adopt each other's children (the kernel exposes the
running process as :attr:`Simulator.active_process`).

Design constraints, in priority order:

* **Zero cost when disabled.**  Instrumented call sites obtain their
  tracer with :func:`tracer_of`, which returns the shared
  :data:`NULL_TRACER` when no tracer is attached; its ``span()`` hands
  back one reusable no-op context manager, so an untraced run pays an
  attribute read and a method call per site and allocates nothing.
* **The timeline is read-only.**  A tracer never schedules events, never
  draws randomness and never advances the clock — it only samples
  ``sim.now`` at enter/exit.  That is what makes the acceptance property
  hold: :class:`~repro.analysis.sanitize.EventTrace` digests are
  byte-identical with tracing enabled or disabled.
* **Replay-deterministic output.**  Span ids, track ids and the span
  list order come from monotone counters driven by the (deterministic)
  event order; :meth:`Tracer.digest` folds the whole span timeline
  through the same address-free ``canonical()`` encoding the replay
  digest uses, so two runs of one scenario produce identical span
  digests.
"""

from __future__ import annotations

import hashlib
import itertools
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator
    from .metrics import MetricsRegistry


class Span:
    """One named sim-time interval; also its own context manager."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "track", "begin_ms", "end_ms", "_context")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: typing.Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self.track = 0
        self.begin_ms = 0.0
        self.end_ms: typing.Optional[float] = None
        self._context: object = None

    @property
    def duration_ms(self) -> float:
        """Length of the span (0 while still open, and for instants)."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.begin_ms

    def set(self, **attrs: object) -> "Span":
        """Attach further attributes (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._begin(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._end(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Span %s [%s, %s)>" % (self.name, self.begin_ms,
                                       self.end_ms)


class _NullSpan:
    """The do-nothing span; one shared instance serves every site."""

    __slots__ = ()

    def set(self, **_attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    __slots__ = ()

    enabled = False

    def span(self, _name: str, **_attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, _name: str, **_attrs: object) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Shared disabled tracer returned by :func:`tracer_of` when none is
#: attached.
NULL_TRACER = NullTracer()


def tracer_of(sim: typing.Optional["Simulator"]):
    """The tracer attached to ``sim``, or :data:`NULL_TRACER`."""
    if sim is None:
        return NULL_TRACER
    tracer = sim.tracer
    return NULL_TRACER if tracer is None else tracer


class Tracer:
    """Collects the span timeline of one simulator.

    Usage::

        sim = Simulator()
        tracer = Tracer().attach(sim)
        ...  # run the scenario
        for span in tracer.spans: ...
        print(tracer.digest())

    Optionally pass a :class:`~repro.trace.metrics.MetricsRegistry`; every
    finished span then lands in the ``span/<name>`` histogram, making
    per-operation latency distributions available without re-walking the
    span list.
    """

    enabled = True

    def __init__(self, metrics: typing.Optional["MetricsRegistry"] = None):
        self.sim: typing.Optional["Simulator"] = None
        self.metrics = metrics
        #: Finished spans, in completion order (children before parents).
        self.spans: typing.List[Span] = []
        self._ids = itertools.count(1)
        #: Open-span stacks, keyed by the simulation process that opened
        #: them (``None`` for code running outside any process).
        self._stacks: typing.Dict[object, typing.List[Span]] = {}
        #: Track registry: context -> track id, plus the names in
        #: assignment order for exporters.
        self._tracks: typing.Dict[object, int] = {}
        self.track_names: typing.List[str] = []

    def attach(self, sim: "Simulator") -> "Tracer":
        """Attach to ``sim`` (sets ``sim.tracer``) and return self."""
        self.sim = sim
        sim.tracer = self
        return self

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        """A new span; open it with ``with`` (or manually via
        :meth:`_begin`/:meth:`_end` if the interval spans call sites)."""
        return Span(self, name, attrs)

    def instant(self, name: str, **attrs: object) -> Span:
        """Record a zero-duration event at the current sim time."""
        span = Span(self, name, attrs)
        self._begin(span)
        self._end(span)
        return span

    def _context(self) -> object:
        return None if self.sim is None else self.sim.active_process

    def _track_for(self, context: object) -> int:
        track = self._tracks.get(context)
        if track is None:
            track = len(self.track_names)
            self._tracks[context] = track
            name = getattr(context, "name", None)
            self.track_names.append("main" if name is None
                                    else "%s-%d" % (name, track))
        return track

    def _begin(self, span: Span) -> None:
        context = self._context()
        stack = self._stacks.setdefault(context, [])
        span.span_id = next(self._ids)
        span.parent_id = stack[-1].span_id if stack else 0
        span.track = self._track_for(context)
        span.begin_ms = 0.0 if self.sim is None else self.sim.now
        span._context = context
        stack.append(span)

    def _end(self, span: Span) -> None:
        span.end_ms = 0.0 if self.sim is None else self.sim.now
        stack = self._stacks.get(span._context, [])
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is span:
                del stack[index]
                break
        self.spans.append(span)
        if self.metrics is not None:
            self.metrics.histogram("span/" + span.name).observe(
                span.duration_ms)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def open_spans(self) -> typing.List[Span]:
        """Spans entered but not yet exited (normally empty at end)."""
        open_: typing.List[Span] = []
        for stack in self._stacks.values():
            open_.extend(stack)
        open_.sort(key=lambda s: s.span_id)
        return open_

    def by_name(self, name: str) -> typing.List[Span]:
        """All finished spans called ``name``, in completion order."""
        return [span for span in self.spans if span.name == name]

    def digest(self) -> str:
        """SHA-256 over the canonical span timeline (address-free, so
        equal across replay-identical runs)."""
        from ..analysis.sanitize import canonical
        digest = hashlib.sha256()
        for span in self.spans:
            line = "%d|%d|%s|%s|%s|%s\n" % (
                span.span_id, span.parent_id, span.name,
                span.begin_ms.hex(),
                "open" if span.end_ms is None else span.end_ms.hex(),
                canonical(span.attrs))
            digest.update(line.encode("utf-8", "backslashreplace"))
        return digest.hexdigest()
