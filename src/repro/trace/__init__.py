"""Observability for the simulated stack: spans, metrics, exporters.

The package has three layers:

* :mod:`repro.trace.tracer` — the span tracer.  Attach a
  :class:`Tracer` to a simulator and every instrumented control-plane
  path records nested sim-time spans; leave it detached and the
  instrumentation collapses to the no-op :data:`NULL_TRACER`.
* :mod:`repro.trace.metrics` — counters, gauges and sim-time-weighted
  histograms behind a :class:`MetricsRegistry`;
  :func:`collect_host_metrics` scrapes a live host into one.
* :mod:`repro.trace.export` — Chrome/Perfetto ``trace_event`` JSON and
  the Figure 5 phase-attribution table regenerated from spans.

Tracing is timeline-read-only by construction: replay digests are
byte-identical whether or not a tracer is attached.
"""

from .collect import collect_host_metrics
from .export import (phase_attribution, render_attribution,
                     render_span_summary, span_summary, trace_events,
                     write_chrome_trace)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      DEFAULT_BUCKETS)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, tracer_of

__all__ = [
    "Counter", "DEFAULT_BUCKETS", "Gauge", "Histogram", "MetricsRegistry",
    "NULL_TRACER", "NullTracer", "Span", "Tracer", "collect_host_metrics",
    "phase_attribution", "render_attribution", "render_span_summary",
    "span_summary", "trace_events", "tracer_of", "write_chrome_trace",
]
