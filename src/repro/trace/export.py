"""Exporters: Perfetto/Chrome ``trace_event`` JSON and phase attribution.

Two consumers are served from one span timeline:

* :func:`write_chrome_trace` emits the Chrome ``trace_event`` JSON array
  format, loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Sim-time milliseconds become microsecond
  timestamps; each tracer track becomes one named thread so interleaved
  VM creations render as parallel swimlanes.
* :func:`phase_attribution` regenerates the Figure 5 per-phase cost
  breakdown directly from ``phase.*`` spans.  It sums span durations per
  phase **in completion order**, which is exactly the order
  :class:`~repro.toolstack.phases.PhaseRecorder` accumulates its totals
  in — so the result matches the recorder float-for-float, and the
  benchmark cross-check can assert equality rather than closeness.
"""

from __future__ import annotations

import json
import typing

from .tracer import Span, Tracer

#: Synthetic process id used for all tracks (the simulation is one
#: process; tracks distinguish simulated activities, not OS pids).
TRACE_PID = 1


def _event_args(span: Span) -> typing.Dict[str, object]:
    return {key: span.attrs[key] for key in sorted(span.attrs)}


def trace_events(tracer: Tracer) -> typing.List[typing.Dict[str, object]]:
    """The span timeline as Chrome ``trace_event`` dicts.

    Finished spans become complete (``"ph": "X"``) events; zero-duration
    spans become instants (``"ph": "i"``).  Track-name metadata events
    come first so viewers label the lanes before any slice renders.
    """
    events: typing.List[typing.Dict[str, object]] = []
    for track, name in enumerate(tracer.track_names):
        events.append({
            "ph": "M", "pid": TRACE_PID, "tid": track,
            "name": "thread_name", "args": {"name": name},
        })
    for span in tracer.spans:
        ts_us = span.begin_ms * 1000.0
        if span.duration_ms > 0.0:
            event = {"ph": "X", "pid": TRACE_PID, "tid": span.track,
                     "name": span.name, "cat": span.name.split(".")[0],
                     "ts": ts_us, "dur": span.duration_ms * 1000.0}
        else:
            event = {"ph": "i", "pid": TRACE_PID, "tid": span.track,
                     "name": span.name, "cat": span.name.split(".")[0],
                     "ts": ts_us, "s": "t"}
        if span.attrs:
            event["args"] = _event_args(span)
        events.append(event)
    # Stable chronological order (ties broken by span id via enumerate
    # position): viewers do not require sorting, but diffs do.
    events[len(tracer.track_names):] = sorted(
        events[len(tracer.track_names):],
        key=lambda e: (e["ts"], e["tid"]))
    return events


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the Perfetto-loadable JSON file; returns the event count."""
    events = trace_events(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, handle, indent=1)
        handle.write("\n")
    return len(events)


# ----------------------------------------------------------------------
# Figure 5 attribution
# ----------------------------------------------------------------------
def phase_attribution(tracer: Tracer,
                      prefix: str = "phase.") -> typing.Dict[str, float]:
    """Per-phase simulated-ms totals summed from ``phase.*`` spans.

    Spans are visited in completion order and added phase-by-phase, the
    same order ``PhaseRecorder.stop()`` performs its float additions —
    equality with the recorder's totals is exact, not approximate.
    """
    totals: typing.Dict[str, float] = {}
    for span in tracer.spans:
        if span.name.startswith(prefix):
            phase = span.name[len(prefix):]
            totals[phase] = totals.get(phase, 0.0) + span.duration_ms
    return totals


def render_attribution(totals: typing.Mapping[str, float],
                       count: int = 0) -> str:
    """The attribution table as text (phases sorted by descending cost)."""
    lines = []
    if count:
        lines.append("phase attribution over %d creation(s)" % count)
    lines.append("%-12s %12s %8s" % ("phase", "total ms", "share"))
    grand = sum(totals.values())
    ordered = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    for phase, total in ordered:
        share = (total / grand * 100.0) if grand else 0.0
        lines.append("%-12s %12.3f %7.1f%%" % (phase, total, share))
    lines.append("%-12s %12.3f %8s" % ("total", grand, ""))
    return "\n".join(lines)


def span_summary(tracer: Tracer) -> typing.Dict[str, typing.Dict[str, float]]:
    """Aggregate count/total/max duration per span name (sorted keys)."""
    summary: typing.Dict[str, typing.Dict[str, float]] = {}
    for span in tracer.spans:
        entry = summary.setdefault(span.name,
                                   {"count": 0, "total_ms": 0.0,
                                    "max_ms": 0.0})
        entry["count"] += 1
        entry["total_ms"] += span.duration_ms
        if span.duration_ms > entry["max_ms"]:
            entry["max_ms"] = span.duration_ms
    return {name: summary[name] for name in sorted(summary)}


def render_span_summary(tracer: Tracer) -> str:
    """Per-span-name aggregate table (sorted by name)."""
    lines = ["%-28s %8s %12s %12s" % ("span", "count", "total ms",
                                      "max ms")]
    for name, entry in span_summary(tracer).items():
        lines.append("%-28s %8d %12.3f %12.3f"
                     % (name, entry["count"], entry["total_ms"],
                        entry["max_ms"]))
    return "\n".join(lines)
