"""Throughput/latency model for packet-forwarding VM fleets (Fig 16a).

The personal-firewall use case runs up to 1000 ClickOS VMs, each
forwarding one client's traffic capped at 10 Mb/s.  The paper's findings:

* cumulative throughput grows linearly until the guest cores saturate
  (≈2.5 Gb/s at 250 clients on the 14-core machine);
* past saturation the aggregate keeps inching up (per-packet cost drops
  as VM batching improves): 500 clients average 6.5 Mb/s each
  (3.25 Gb/s), 1000 clients 4 Mb/s each (4 Gb/s);
* added RTT is the scheduler's round-robin sweep over runnable VMs:
  negligible with tens of VMs, ~60 ms at 1000.

We model per-megabit CPU cost that shrinks with the number of active VMs
(interrupt coalescing / ring batching under load) and a round-robin
latency proportional to runnable VMs per core.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class ForwardingCosts:
    """Calibrated packet-forwarding cost model."""

    #: Base CPU cost to forward 1 Mb/s of traffic, µs of core time per
    #: second (i.e. a core forwards 1e6/cost Mb/s unbatched).
    base_us_per_mbit: float = 4700.0
    #: Cost reduction per active VM (batching efficiency), µs per Mb/s.
    batching_us_per_vm: float = 1.45
    #: Floor on the per-megabit cost.
    min_us_per_mbit: float = 3000.0
    #: Xen credit-scheduler timeslice experienced per runnable VM sweep,
    #: ms (effective, including context-switch overhead).
    sweep_ms_per_vm: float = 0.78


@dataclasses.dataclass
class ForwardingResult:
    """Aggregate behaviour of an n-VM forwarding fleet."""

    clients: int
    total_gbps: float
    per_client_mbps: float
    rtt_ms: float
    saturated: bool


def forwarding_capacity_mbps(active_vms: int, guest_cores: int,
                             costs: ForwardingCosts) -> float:
    """Aggregate forwarding capacity of the guest cores, Mb/s."""
    us_per_mbit = max(costs.min_us_per_mbit,
                      costs.base_us_per_mbit
                      - active_vms * costs.batching_us_per_vm)
    return guest_cores * 1e6 / us_per_mbit


def run_forwarding_fleet(clients: int, guest_cores: int,
                         per_client_cap_mbps: float = 10.0,
                         costs: ForwardingCosts = ForwardingCosts()
                         ) -> ForwardingResult:
    """Steady-state throughput and added RTT for ``clients`` firewalls."""
    if clients < 1:
        raise ValueError("need at least one client")
    capacity = forwarding_capacity_mbps(clients, guest_cores, costs)
    demand = clients * per_client_cap_mbps
    total = min(demand, capacity)
    saturated = demand > capacity
    rho = min(1.0, demand / capacity)
    # Round-robin sweep: every runnable VM gets a slice before a given
    # VM's packet is forwarded again.  With low utilisation most VMs are
    # blocked, so the sweep shrinks with rho.
    rtt = (clients / guest_cores) * costs.sweep_ms_per_vm * rho ** 2
    return ForwardingResult(clients=clients,
                            total_gbps=total / 1000.0,
                            per_client_mbps=total / clients,
                            rtt_ms=rtt,
                            saturated=saturated)
