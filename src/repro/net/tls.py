"""TLS termination serving model (Fig 16c).

§7.3: N apachebench clients continuously request an empty file over HTTPS
from N single-threaded TLS proxies using 1024-bit RSA.  Aggregate
throughput rises with N until all CPUs are busy with public-key
operations; "Tinyx's performance is very similar to that of running
processes on a bare-metal Linux distribution: around 1400 requests per
second", while "the unikernel only achieves a fifth of the throughput of
Tinyx; this is mostly due to the inefficient lwip stack".
"""

from __future__ import annotations

import dataclasses

#: CPU cost of one HTTPS request (RSA-1024 handshake + HTTP exchange) per
#: server kind, ms of core time.
HANDSHAKE_CPU_MS = {
    # 14 cores / 10 ms ≈ 1400 req/s at saturation.
    "bare-metal": 10.0,
    "tinyx": 10.1,
    # lwip packet handling burns ~5x the CPU per request.
    "unikernel": 50.5,
}


@dataclasses.dataclass
class TlsResult:
    """Aggregate throughput for one server-count point."""

    kind: str
    instances: int
    requests_per_s: float
    saturated: bool


def tls_throughput(kind: str, instances: int, cores: int) -> TlsResult:
    """Steady-state aggregate request rate for ``instances`` servers.

    Each server is single-threaded, so it can use at most one core; the
    host caps the total at ``cores`` of CPU.
    """
    try:
        per_request_ms = HANDSHAKE_CPU_MS[kind]
    except KeyError:
        raise ValueError("unknown TLS server kind %r; known: %s"
                         % (kind, ", ".join(sorted(HANDSHAKE_CPU_MS)))) \
            from None
    if instances < 1:
        raise ValueError("need at least one instance")
    per_server_rate = 1000.0 / per_request_ms          # one core's worth
    usable_cores = min(instances, cores)
    rate = usable_cores * per_server_rate
    return TlsResult(kind=kind, instances=instances,
                     requests_per_s=rate,
                     saturated=instances >= cores)


def simulate_tls_fleet(kind: str, instances: int, cores: int,
                       duration_ms: float = 5000.0) -> float:
    """Discrete-event cross-check of :func:`tls_throughput`.

    Spins up ``instances`` single-threaded server processes placed
    round-robin on processor-sharing cores; each loops handshake after
    handshake (apachebench keeps every server saturated).  Returns the
    measured aggregate request rate — which must agree with the analytic
    model (tested in the suite).
    """
    from ..sim.cpu import CpuPool
    from ..sim.engine import Simulator

    try:
        per_request_ms = HANDSHAKE_CPU_MS[kind]
    except KeyError:
        raise ValueError("unknown TLS server kind %r" % kind) from None
    if instances < 1:
        raise ValueError("need at least one instance")
    sim = Simulator()
    pool = CpuPool(sim, cores=cores)
    completed = [0]

    def server(core):
        while sim.now < duration_ms:
            yield core.execute(per_request_ms)
            completed[0] += 1

    for _ in range(instances):
        sim.process(server(pool.place()))
    sim.run(until=duration_ms)
    return completed[0] / (duration_ms / 1000.0)
