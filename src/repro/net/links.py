"""Network links: bandwidth/latency pipes used for migration and clients.

A :class:`Link` models a point-to-point path with a propagation latency
and a serialization bandwidth; ``transfer`` charges the simulated time a
payload needs to cross it.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


@dataclasses.dataclass
class Link:
    """A point-to-point network path."""

    sim: "Simulator"
    #: One-way propagation latency, ms.
    latency_ms: float = 0.1
    #: Bandwidth in megabits per second.
    bandwidth_mbps: float = 1000.0
    #: Total bytes moved (accounting).
    bytes_transferred: int = 0

    def transfer_ms(self, size_kb: float) -> float:
        """Time for ``size_kb`` KiB to cross the link (one way)."""
        bits = size_kb * 1024 * 8
        return self.latency_ms + bits / (self.bandwidth_mbps * 1000.0)

    def transfer(self, size_kb: float):
        """Generator: move a payload across the link."""
        yield self.sim.timeout(self.transfer_ms(size_kb))
        self.bytes_transferred += int(size_kb * 1024)

    def round_trip(self):
        """Generator: one RTT (e.g. a TCP handshake leg)."""
        yield self.sim.timeout(2 * self.latency_ms)
