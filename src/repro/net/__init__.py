"""Network substrate: links, the software switch, flows and TLS serving."""

from .links import Link

__all__ = ["Link"]
