"""The Dom0 software switch (Linux bridge / Open vSwitch stand-in).

Dom0 "hosts a software switch ... to mux/demux packets between NICs and
the VMs" (§4.1).  For the use cases we need two behaviours:

* port membership — hotplug attaches each vif (it implements the
  :class:`repro.toolstack.hotplug.Bridge` protocol);
* overload — §7.2: "our Linux bridge is overloaded and starts dropping
  packets (mostly ARP packets)" once the broadcast/flood load exceeds its
  capacity.  ARP resolution failures are what produce the long tail in
  Fig 16b.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator
    from ..sim.rng import RngStream


class SoftwareBridge:
    """A software switch with a broadcast-processing capacity."""

    def __init__(self, sim: "Simulator", rng: "RngStream",
                 capacity_events_per_ms: float = 1.2,
                 window_ms: float = 100.0):
        self.sim = sim
        self.rng = rng
        #: Broadcast-ish control events (ARP, flooding for unknown MACs)
        #: the bridge can process per ms before dropping.
        self.capacity_events_per_ms = capacity_events_per_ms
        #: Sliding window for load estimation.
        self.window_ms = window_ms
        self.ports: typing.Dict[str, int] = {}
        self._events: typing.List[float] = []
        self.drops = 0
        self.arp_requests = 0

    # ------------------------------------------------------------------
    # Bridge protocol (hotplug)
    # ------------------------------------------------------------------
    def attach(self, domid: int, devname: str) -> None:
        self.ports[devname] = domid
        self._note_event()  # port attach floods the learning tables

    def detach(self, domid: int, devname: str) -> None:
        self.ports.pop(devname, None)

    # ------------------------------------------------------------------
    # Load and drops
    # ------------------------------------------------------------------
    def _note_event(self) -> None:
        now = self.sim.now
        self._events.append(now)
        cutoff = now - self.window_ms
        while self._events and self._events[0] < cutoff:
            self._events.pop(0)

    def load(self) -> float:
        """Control events per ms over the sliding window."""
        if not self._events:
            return 0.0
        return len(self._events) / self.window_ms

    def arp_resolve(self) -> bool:
        """One ARP resolution attempt; False means the request was dropped.

        Every new-VM ping triggers ARP broadcasts; a port attach also
        floods.  Above capacity the drop probability rises with the
        overload ratio.
        """
        self.arp_requests += 1
        self._note_event()
        load = self.load()
        if load <= self.capacity_events_per_ms:
            return True
        overload = (load - self.capacity_events_per_ms) / load
        if self.rng.random() < overload:
            self.drops += 1
            return False
        return True
