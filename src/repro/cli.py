"""Command-line interface: ``python -m repro <command>``.

Gives the library a downstream-usable front end:

* ``images`` — list the guest catalogue with the paper's footprints;
* ``create`` — run a boot storm under any toolstack variant;
* ``checkpoint`` — save/restore round-trip timings;
* ``tinyx-build`` — run the Tinyx pipeline for an application;
* ``usecase`` — run one of the §7 use cases;
* ``syscalls`` — print the Fig 1 dataset;
* ``lint`` — run the determinism linter over Python sources;
* ``races`` — lock-order & sim-race analysis: deadlock cycles, lock
  leaks, yield-spanning stale read-modify-writes, baseline drift, and
  an optional runtime happens-before witness;
* ``bench-trend`` — wall-clock deltas between two BENCH_*.json sets;
* ``bench-gate`` — engine microbench vs the committed perf baseline;
* ``sanitize`` — dual-run replay-digest check with runtime sanitizers;
* ``trace`` — boot storm under the span tracer: per-phase attribution,
  span summary, optional Chrome/Perfetto ``trace_event`` export;
* ``metrics`` — boot storm, then print the scraped metrics registry;
* ``chaos`` — N seeded fault campaigns against a scenario, invariants
  audited after every recovery, failing schedules delta-debugged down to
  minimal replayable JSON reproducers;
* ``run`` — execute a declarative scenario spec (YAML/JSON) from the
  scenario standard library across a seed set, in parallel, producing a
  replayable sweep manifest;
* ``components`` — list the stdlib component catalogue.

Flag conventions are shared across ``run``/``cluster``/``chaos`` (see
:mod:`repro.cli_flags`): ``--seed N`` for one seed, ``--seeds A..B`` for
a set, ``--workers`` for parallelism, ``--json``/``--replay`` for
machine-readable output and bit-for-bit replay.  Deprecated spellings
warn once and keep working.
"""

from __future__ import annotations

import argparse
import sys
import typing

from .cli_flags import (contiguous_range, parse_seed_set, seed_set,
                        warn_once)
from .core import Host, VARIANTS
from .core.metrics import mean, median, percentile, sample_indices
from .data import counts_by_year
from .guests import CATALOG, lookup


def _cmd_images(_args) -> int:
    print("%-20s %-10s %10s %10s %8s" % ("name", "kind", "kernel",
                                         "memory", "vifs"))
    for name in sorted(CATALOG):
        image = CATALOG[name]
        print("%-20s %-10s %8.1fMB %8.1fMB %8d"
              % (name, image.kind.value, image.kernel_size_kb / 1024.0,
                 image.memory_kb / 1024.0, image.vifs))
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _lookup_or_exit(parser_error, name: str):
    try:
        return lookup(name)
    except KeyError as exc:
        parser_error(str(exc).strip('"'))


def _cmd_create(args) -> int:
    image = _lookup_or_exit(args.parser_error, args.image)
    host = Host(variant=args.variant, seed=args.seed,
                pool_target=args.count + 32,
                shell_memory_kb=image.memory_kb)
    host.warmup(20.0 * (args.count + 32))
    creates, boots = [], []
    for _ in range(args.count):
        record = host.create_vm(image)
        creates.append(record.create_ms)
        boots.append(record.boot_ms)
    print("booted %d x %s under %s" % (args.count, args.image,
                                       args.variant))
    print("%-8s %12s %12s" % ("n", "create(ms)", "boot(ms)"))
    for index in sample_indices(args.count, min(10, args.count)):
        print("%-8d %12.2f %12.2f" % (index + 1, creates[index],
                                      boots[index]))
    print("create: mean=%.2f median=%.2f p90=%.2f"
          % (mean(creates), median(creates), percentile(creates, 90)))
    if args.stats:
        from .core.stats import snapshot
        print()
        print(snapshot(host).render())
    if args.plot:
        from .core.asciiplot import render
        print()
        print(render(list(range(1, args.count + 1)),
                     {"create": creates, "boot": boots},
                     logy=True,
                     title="%s on %s" % (args.image, args.variant)))
    return 0


def _cmd_faults(args) -> int:
    from .faults import FaultPlan
    plan = FaultPlan.uniform(args.rate, points=args.points, seed=args.seed)
    host = Host(variant=args.variant, seed=args.seed,
                pool_target=args.count + 32,
                shell_memory_kb=_lookup_or_exit(args.parser_error,
                                                args.image).memory_kb,
                fault_plan=plan)
    image = lookup(args.image)
    host.warmup(20.0 * (args.count + 32))
    creates, failures = [], 0
    for _ in range(args.count):
        try:
            record = host.create_vm(image)
        except Exception:
            failures += 1
            continue
        creates.append(record.create_ms)
    host.sim.run(until=host.sim.now + 100.0)
    print("fault storm: %d x %s under %s at rate %.3f (%s)"
          % (args.count, args.image, args.variant, args.rate, args.points))
    if creates:
        print("create: mean=%.2f median=%.2f p99=%.2f ms (%d ok, %d failed)"
              % (mean(creates), median(creates), percentile(creates, 99),
                 len(creates), failures))
    else:
        print("no creation survived (%d failed)" % failures)
    print("%-24s %12s %10s" % ("fault point", "occurrences", "injected"))
    for point, counters in sorted(host.fault_metrics().items()):
        print("%-24s %12d %10d" % (point, counters["occurrences"],
                                   counters["injected"]))
    violations = host.check_invariants()
    print("invariants: %s" % ("clean" if not violations
                              else "%d violation(s)" % len(violations)))
    for violation in violations:
        print("  " + violation)
    return 1 if violations else 0


def _cmd_checkpoint(args) -> int:
    image = _lookup_or_exit(args.parser_error, args.image)
    host = Host(variant=args.variant, seed=args.seed)
    host.warmup(500)
    config = host.config_for(image)
    record = host.create_vm(config)
    domain = record.domain
    saves, restores = [], []
    for _ in range(args.cycles):
        t0 = host.sim.now
        saved = host.save_vm(domain, config)
        saves.append(host.sim.now - t0)
        t0 = host.sim.now
        domain = host.restore_vm(saved)
        restores.append(host.sim.now - t0)
    print("%d checkpoint cycles of %s under %s" % (args.cycles,
                                                   args.image,
                                                   args.variant))
    print("save:    mean %.1f ms" % mean(saves))
    print("restore: mean %.1f ms" % mean(restores))
    return 0


def _cmd_tinyx_build(args) -> int:
    from .tinyx import DEFAULT_TRIM_CANDIDATES, TinyxBuilder
    build = TinyxBuilder().build(
        args.app, platform=args.platform,
        trim_candidates=DEFAULT_TRIM_CANDIDATES if args.trim else None)
    print("packages: %s" % ", ".join(build.packages))
    print("initramfs: %.1f MB" % (build.initramfs_kb / 1024.0))
    print("kernel: %.1f MB" % (build.kernel_kb / 1024.0))
    if build.trim_report:
        print("trim: %d options removed in %d rebuilds"
              % (len(build.trim_report.removed),
                 build.trim_report.builds))
    print("image: %.1f MB, %.0f MB RAM"
          % (build.image.kernel_size_kb / 1024.0,
             build.image.memory_kb / 1024.0))
    return 0


def _cmd_usecase(args) -> int:
    from .core import usecases
    if args.name == "firewalls":
        result = usecases.run_personal_firewalls(boot_fleet=args.scale)
        for point in result.points:
            print("%5d users: %5.2f Gb/s, %5.1f Mb/s each, +%5.1f ms"
                  % (point.clients, point.total_gbps,
                     point.per_client_mbps, point.rtt_ms))
    elif args.name == "jit":
        result = usecases.run_jit_service(25.0, clients=args.scale)
        print("median %.1f ms, p90 %.1f ms, %d retried"
              % (median(result.rtts), percentile(result.rtts, 90),
                 result.retried))
    elif args.name == "tls":
        result = usecases.run_tls_termination()
        for kind, points in result.series.items():
            print("%-12s %8.0f req/s at saturation"
                  % (kind, points[-1].requests_per_s))
    elif args.name == "compute":
        result = usecases.run_compute_service("lightvm",
                                              requests=args.scale)
        print("create mean %.2f ms; completion %0.2f s -> %0.2f s"
              % (mean(result.create_ms),
                 result.service_ms[0] / 1000.0,
                 result.service_ms[-1] / 1000.0))
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.name)
    return 0


def _cmd_unikernel_build(args) -> int:
    from .unikernel import APPLICATIONS, build, size_report
    if args.app == "all":
        names = sorted(APPLICATIONS)
    else:
        names = [args.app]
    builds = [build(name) for name in names]
    print(size_report(builds))
    if len(builds) == 1:
        result = builds[0].link_result
        print("\nlink map:")
        for obj in result.objects:
            print("  %-18s %5d KB" % (obj.name, obj.size_kb))
    return 0


def _cmd_syscalls(_args) -> int:
    for year, count in counts_by_year():
        print("%d  %d" % (year, count))
    return 0


def _cmd_lint(args) -> int:
    import pathlib
    import sys

    from .analysis import format_findings, lint_paths
    paths = args.paths
    if not paths:
        # Default to the installed package itself.
        paths = [pathlib.Path(__file__).resolve().parent]
    missing = [p for p in paths if not pathlib.Path(p).exists()]
    if missing:
        print("repro lint: error: no such file or directory: %s"
              % ", ".join(str(p) for p in missing), file=sys.stderr)
        return 2
    findings = lint_paths(paths)
    print(format_findings(findings, args.format))
    return 1 if findings else 0


def _cmd_races(args) -> int:
    import json
    import pathlib
    import sys

    from .analysis import (analyze_paths, format_findings, load_baseline,
                           run_shard_witness, save_baseline)
    paths = args.paths
    if not paths:
        paths = [pathlib.Path(__file__).resolve().parent]
    missing = [p for p in paths if not pathlib.Path(p).exists()]
    if missing:
        print("repro races: error: no such file or directory: %s"
              % ", ".join(str(p) for p in missing), file=sys.stderr)
        return 2
    report = analyze_paths(paths)

    drift: typing.List[str] = []
    if args.baseline:
        baseline_path = pathlib.Path(args.baseline)
        if baseline_path.exists():
            drift = report.graph.diff_baseline(load_baseline(baseline_path))
        else:
            drift = ["baseline %s does not exist (run with "
                     "--update-baseline to create it)" % baseline_path]
    if args.update_baseline:
        save_baseline(report, args.update_baseline)
        drift = []

    witness = None
    discrepancies: typing.List[str] = []
    if args.witness:
        witness = run_shard_witness(workers=args.witness_workers)
        discrepancies = witness.validate_static(report.graph)

    if args.format == "json":
        payload = report.to_json()
        payload["baseline_drift"] = drift
        if witness is not None:
            payload["witness"] = witness.report()
            payload["witness_discrepancies"] = discrepancies
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "github":
        print(format_findings(report.findings, "github"))
        for message in drift:
            print("::error title=lock-order-drift::%s" % message)
        for message in discrepancies:
            print("::error title=witness-discrepancy::%s" % message)
    else:
        print(report.render())
        for message in drift:
            print("lock-order drift: %s" % message)
        if witness is not None:
            print(witness.render())
            for message in discrepancies:
                print("witness discrepancy: %s" % message)
    return 1 if (report.findings or drift or discrepancies) else 0


def _cmd_bench_trend(args) -> int:
    from .analysis import BenchResultError, bench_trend, load_results
    try:
        old = load_results(args.old)
        new = load_results(args.new)
    except BenchResultError as exc:
        print("repro bench-trend: error: %s" % exc, file=sys.stderr)
        return 2
    print(bench_trend(old, new))
    return 0


def _cmd_bench_gate(args) -> int:
    import json
    import pathlib

    from .analysis import (BenchResultError, bench_gate, figure_gate,
                           load_results)
    result_path = pathlib.Path(args.result)
    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.is_file():
        print("repro bench-gate: error: no such file: %s" % baseline_path,
              file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())

    passed = True
    if result_path.is_file():
        engine_ok, report = bench_gate(json.loads(result_path.read_text()),
                                       baseline)
        print(report)
        passed = passed and engine_ok
    elif args.figures is None:
        print("repro bench-gate: error: no such file: %s" % result_path,
              file=sys.stderr)
        return 2
    else:
        # Figure-only invocation (e.g. the bench-smoke CI job, which
        # produces BENCH_fig*.json but not the engine microbench).
        print("bench-gate: no %s; skipping the engine check" % result_path)

    if args.figures is not None:
        try:
            results = load_results(args.figures)
        except BenchResultError as exc:
            print("repro bench-gate: error: %s" % exc, file=sys.stderr)
            return 2
        figures_ok, report = figure_gate(results, baseline)
        print(report)
        passed = passed and figures_ok
    return 0 if passed else 1


def _cmd_sanitize(args) -> int:
    from .analysis import EventTrace, Sanitizer
    from .faults import FaultPlan
    from .sim import Simulator

    image = _lookup_or_exit(args.parser_error, args.image)
    plan = (FaultPlan.uniform(args.rate, points=args.points,
                              seed=args.seed)
            if args.rate > 0.0 else None)
    digests, violation_total = [], 0
    for run in range(args.runs):
        sim = Simulator()
        trace = EventTrace().attach(sim)
        sanitizer = Sanitizer().attach(sim)
        with sanitizer.watch_rng():
            host = Host(variant=args.variant, seed=args.seed, sim=sim,
                        pool_target=args.count + 32,
                        shell_memory_kb=image.memory_kb,
                        fault_plan=plan)
            host.warmup(20.0 * (args.count + 32))
            failures = 0
            for _ in range(args.count):
                try:
                    host.create_vm(image)
                except Exception:
                    failures += 1
            # Drain in-flight teardowns before auditing.
            sim.run(until=sim.now + 500.0)
        violations = sanitizer.check() + host.check_invariants()
        violation_total += len(violations)
        digests.append(trace.digest())
        print("run %d: %d events, %d failed create(s), digest %s"
              % (run + 1, trace.events, failures, trace.digest()))
        for violation in violations:
            print("  violation: %s" % violation)
    identical = len(set(digests)) == 1
    print("sanitizers: %s" % ("clean" if not violation_total
                              else "%d violation(s)" % violation_total))
    print("replay: %s" % ("IDENTICAL" if identical else "DIVERGED"))
    return 0 if identical and not violation_total else 1


def _traced_storm(args):
    """Run a boot storm with a tracer + metrics registry attached;
    returns (host, tracer, registry)."""
    from .sim import Simulator
    from .trace import MetricsRegistry, Tracer

    image = _lookup_or_exit(args.parser_error, args.image)
    sim = Simulator()
    registry = MetricsRegistry(sim=sim)
    tracer = Tracer(metrics=registry).attach(sim)
    host = Host(variant=args.variant, seed=args.seed, sim=sim,
                pool_target=args.count + 32,
                shell_memory_kb=image.memory_kb)
    host.warmup(20.0 * (args.count + 32))
    for _ in range(args.count):
        host.create_vm(image)
    return host, tracer, registry


def _cmd_trace(args) -> int:
    from .trace import (phase_attribution, render_attribution,
                        render_span_summary, write_chrome_trace)

    host, tracer, _registry = _traced_storm(args)
    print("traced %d x %s under %s: %d spans on %d tracks"
          % (args.count, args.image, args.variant, len(tracer.spans),
             len(tracer.track_names)))
    totals = phase_attribution(tracer)
    if totals:
        print()
        print(render_attribution(totals, count=args.count))
    print()
    print(render_span_summary(tracer))
    if args.out:
        events = write_chrome_trace(tracer, args.out)
        print()
        print("wrote %d trace events to %s "
              "(load in Perfetto or chrome://tracing)" % (events, args.out))
    return 0


def _cmd_metrics(args) -> int:
    import json

    from .trace import collect_host_metrics

    host, _tracer, registry = _traced_storm(args)
    collect_host_metrics(host, registry)
    if args.json:
        print(json.dumps(registry.as_dict(), indent=2, sort_keys=True))
    else:
        print(registry.render())
    return 0


def _cmd_chaos(args) -> int:
    import json

    from .recovery import campaign

    if args.replay:
        with open(args.replay) as handle:
            data = json.load(handle)
        documents = data if isinstance(data, list) else [data]
        reproduced = True
        for document in documents:
            result = campaign.replay(document)
            same = (result.violations == document.get("violations")
                    and result.digest == document.get("digest"))
            reproduced = reproduced and same
            print("seed %d: %d violation(s), digest %s — %s"
                  % (result.seed, len(result.violations),
                     result.digest[:12],
                     "reproduced" if same else "DIVERGED from record"))
            for violation in result.violations:
                print("  violation: %s" % violation)
        return 0 if reproduced else 1

    _lookup_or_exit(args.parser_error, args.image)
    text = str(args.seeds).strip()
    if ".." not in text and "," not in text:
        # A bare integer: the pre-stdlib "count of seeds" spelling.
        try:
            count = int(text)
        except ValueError:
            args.parser_error("argument --seeds: expected 'A..B', "
                              "'A,B,C', or an integer count, got %r"
                              % text)
        if count < 1:
            args.parser_error("argument --seeds: count must be >= 1")
        warn_once(
            "chaos:--seeds-count",
            "'repro chaos --seeds %d' (a count) is deprecated; write "
            "'--seeds %d..%d' — the canonical seed-set spelling shared "
            "with 'repro run' and 'repro cluster'"
            % (count, args.seed, args.seed + count - 1))
        base_seed = args.seed
    else:
        try:
            seeds = parse_seed_set(text)
        except ValueError as exc:
            args.parser_error("argument --seeds: %s" % exc)
        span = contiguous_range(seeds)
        if span is None:
            args.parser_error(
                "argument --seeds: chaos campaigns need a contiguous "
                "range (run i replays seed base+i), got %r" % text)
        base_seed, count = span
    report = campaign.run_campaign(
        seeds=count, base_seed=base_seed, scenario=args.scenario,
        variant=args.variant, image=args.image, count=args.count,
        queue_cap=args.queue_cap, reap=not args.no_reap,
        do_shrink=not args.no_shrink, max_rules=args.rules,
        max_occurrence=args.occurrences, log=print)
    print()
    print("campaign: %d seeded run(s), %d failure(s)%s"
          % (len(report.runs), len(report.failures),
             "" if report.ok else " — reproducers shrunk"))
    if args.out and report.failures:
        with open(args.out, "w") as handle:
            json.dump(report.failures, handle, indent=2, sort_keys=True)
        print("wrote %d reproducer(s) to %s"
              % (len(report.failures), args.out))
    return 0 if report.ok else 1


def _cmd_cluster(args) -> int:
    import json
    import time  # noqa: RPR002 -- wall-clock only annotates the CLI report; it is read outside the simulated timeline

    from .cluster import SCENARIOS, Cluster, ClusterConfig, replay_reproducer

    if args.replay:
        with open(args.replay) as handle:
            data = json.load(handle)
        documents = data if isinstance(data, list) else [data]
        reproduced = True
        for payload in documents:
            same, result = replay_reproducer(payload)
            reproduced = reproduced and same
            print("scenario %s seed %d: %d epoch(s), digest %s — %s"
                  % (result.config.scenario, result.config.seed,
                     result.epochs, result.digest[:12],
                     "reproduced" if same else "DIVERGED from record"))
        return 0 if reproduced else 1

    scenario = args.scenario
    if scenario == "churn":
        warn_once(
            "cluster:--scenario-churn",
            "'repro cluster --scenario churn' is deprecated; use "
            "'--scenario migration-churn'")
        scenario = "migration-churn"
    build = SCENARIOS[scenario]
    overrides: typing.Dict[str, object] = {}
    if args.epoch_ms is not None:
        overrides["epoch_ms"] = args.epoch_ms
        overrides["net_latency_ms"] = max(args.epoch_ms,
                                          args.net_latency_ms or 0.0)
    elif args.net_latency_ms is not None:
        overrides["net_latency_ms"] = args.net_latency_ms

    seeds = args.seeds if args.seeds is not None else [args.seed]
    payloads = []
    for seed in seeds:
        config: ClusterConfig = build(
            hosts=args.hosts, seed=seed, guests=args.guests,
            requests=args.requests, variant=args.variant,
            fault_rate=args.fault_rate, recovery=args.recovery,
            placement=args.placement, **overrides)
        if scenario != "boot-storm" and args.migrations is not None:
            config.migrations = args.migrations
        start = time.perf_counter()  # noqa: RPR002 -- wall-clock annotates the CLI report only, outside the timeline
        result = Cluster(config, backend=args.backend,
                         workers=args.workers).run()
        wall_s = time.perf_counter() - start  # noqa: RPR002 -- same wall-clock annotation as above

        if args.json:
            payload = result.to_dict()
            payload["wall_s"] = wall_s
            payloads.append(payload)
            continue
        stats = result.stats
        print("cluster %s: %d host(s), backend=%s (%d worker(s)), seed %d"
              % (config.scenario, config.hosts, result.backend,
                 result.workers, config.seed))
        print("  %d epoch(s), %.1f ms simulated, %d events, %.2f s wall"
              % (result.epochs, result.sim_ms, result.events, wall_s))
        print("  booted %d guest(s) (%d failed), %d migration(s) "
              "(%d failed), %d request(s) served (%d missed, %d unrouted)"
              % (stats.get("booted", 0), stats.get("create_failed", 0),
                 stats.get("migrations_done", 0),
                 stats.get("migrations_failed", 0), stats.get("served", 0),
                 stats.get("missed", 0), stats.get("unrouted", 0)))
        responses = stats.get("responses", 0)
        if responses:
            print("  request latency: %.2f ms mean, %.2f ms max"
                  % (stats.get("latency_ms_sum", 0.0) / responses,
                     stats.get("latency_ms_max", 0.0)))
        print("  cluster digest %s" % result.digest)
    if args.json:
        # One seed: the bare replayable reproducer (the pre-stdlib
        # shape); a seed set: a list of them (still --replay-able).
        out = payloads[0] if len(payloads) == 1 else payloads
        print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def _cmd_run(args) -> int:
    import json
    import time  # noqa: RPR002 -- wall-clock only annotates the CLI report; it is read outside the simulated timeline

    from .stdlib import (ComponentError, SpecError, load_spec,
                         replay_manifest, run_sweep, write_bench_json)

    if args.replay:
        with open(args.replay) as handle:
            payload = json.load(handle)
        same, result = replay_manifest(payload, workers=args.workers)
        print("scenario %s: %d seed(s), manifest digest %s — %s"
              % (result["scenario"], len(result["runs"]),
                 result["manifest_digest"][:12],
                 "reproduced" if same else "DIVERGED from record"))
        return 0 if same else 1

    if args.spec is None:
        args.parser_error("repro run needs a scenario spec file "
                          "(or --replay FILE)")
    try:
        spec = load_spec(args.spec)
    except FileNotFoundError:
        print("repro run: error: no such file: %s" % args.spec,
              file=sys.stderr)
        return 2
    except (SpecError, ComponentError) as exc:
        print("repro run: error: %s: %s" % (args.spec, exc),
              file=sys.stderr)
        return 2

    seeds = args.seeds if args.seeds is not None else [args.seed]
    start = time.perf_counter()  # noqa: RPR002 -- wall-clock annotates the CLI report only, outside the timeline
    manifest = run_sweep(spec, seeds, workers=args.workers)
    wall_s = time.perf_counter() - start  # noqa: RPR002 -- same wall-clock annotation as above

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.bench_out:
        write_bench_json(manifest, args.bench_out, wall_s=wall_s)

    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    print("scenario %s (mode %s): %d seed(s), %d worker(s), %.2f s wall"
          % (manifest["scenario"], manifest["mode"],
             len(manifest["runs"]),
             min(max(1, args.workers), len(seeds)), wall_s))
    for record in manifest["runs"]:
        print("  seed %-4d %7d event(s) %10.1f ms  digest %s"
              % (record["seed"], record["events"], record["sim_ms"],
                 record["digest"][:12]))
    for key in sorted(manifest["stats"]):
        print("  %-24s %12.2f" % (key, manifest["stats"][key]))
    print("  spec digest     %s" % manifest["spec_digest"])
    print("  manifest digest %s" % manifest["manifest_digest"])
    if args.out:
        print("  wrote sweep manifest to %s" % args.out)
    if args.bench_out:
        print("  wrote BENCH-style JSON to %s" % args.bench_out)
    return 0


def _cmd_components(args) -> int:
    from .stdlib import catalogue
    print("%-10s %-22s %s" % ("kind", "ref", "parameters"))
    for component in catalogue():
        if args.kind and component.kind != args.kind:
            continue
        params = component.params()
        rendered = ", ".join("%s=%r" % (key, params[key])
                             for key in sorted(params))
        print("%-10s %-22s %s" % (component.kind, component.ref(),
                                  rendered))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LightVM (SOSP 2017) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("images", help="list the guest image catalogue") \
        .set_defaults(fn=_cmd_images)

    create = sub.add_parser("create", help="run a boot storm")
    create.add_argument("--variant", choices=VARIANTS, default="lightvm")
    create.add_argument("--image", default="daytime")
    create.add_argument("--count", type=_positive_int, default=10)
    create.add_argument("--seed", type=int, default=0)
    create.add_argument("--plot", action="store_true",
                        help="render an ASCII chart of the series")
    create.add_argument("--stats", action="store_true",
                        help="print a host-wide stats snapshot at the end")
    create.set_defaults(fn=_cmd_create)

    faults = sub.add_parser(
        "faults", help="run a boot storm under injected faults")
    faults.add_argument("--variant", choices=VARIANTS, default="lightvm")
    faults.add_argument("--image", default="daytime")
    faults.add_argument("--count", type=_positive_int, default=10)
    faults.add_argument("--rate", type=float, default=0.02,
                        help="per-occurrence fault probability")
    faults.add_argument("--points", default="*",
                        help="fault-point pattern, e.g. 'xenstore.*'")
    faults.add_argument("--seed", type=int, default=0)
    faults.set_defaults(fn=_cmd_faults)

    checkpoint = sub.add_parser("checkpoint",
                                help="save/restore round trips")
    checkpoint.add_argument("--variant", choices=VARIANTS,
                            default="lightvm")
    checkpoint.add_argument("--image", default="daytime")
    checkpoint.add_argument("--cycles", type=_positive_int, default=3)
    checkpoint.add_argument("--seed", type=int, default=0)
    checkpoint.set_defaults(fn=_cmd_checkpoint)

    tinyx = sub.add_parser("tinyx-build", help="build a Tinyx image")
    tinyx.add_argument("app")
    tinyx.add_argument("--platform", choices=("xen", "kvm"),
                       default="xen")
    tinyx.add_argument("--no-trim", dest="trim", action="store_false")
    tinyx.set_defaults(fn=_cmd_tinyx_build)

    unikernel = sub.add_parser("unikernel-build",
                               help="link a Mini-OS unikernel")
    unikernel.add_argument("app", nargs="?", default="all")
    unikernel.set_defaults(fn=_cmd_unikernel_build)

    usecase = sub.add_parser("usecase", help="run a §7 use case")
    usecase.add_argument("name", choices=("firewalls", "jit", "tls",
                                          "compute"))
    usecase.add_argument("--scale", type=int, default=100)
    usecase.set_defaults(fn=_cmd_usecase)

    sub.add_parser("syscalls", help="print the Fig 1 dataset") \
        .set_defaults(fn=_cmd_syscalls)

    lint = sub.add_parser(
        "lint", help="run the determinism linter (RPR rules)")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--format", choices=("text", "json", "github"),
                      default="text",
                      help="report format (github = workflow annotations)")
    lint.set_defaults(fn=_cmd_lint)

    races = sub.add_parser(
        "races",
        help="lock-order & sim-race analysis (RPR101-103) with optional "
             "runtime witness cross-validation")
    races.add_argument("paths", nargs="*",
                       help="files/directories to analyze (default: the "
                            "installed repro package)")
    races.add_argument("--format", choices=("text", "json", "github"),
                       default="text",
                       help="report format (github = workflow annotations)")
    races.add_argument("--baseline",
                       help="lock-order baseline JSON to diff against "
                            "(drift fails the run)")
    races.add_argument("--update-baseline",
                       help="write the current lock-order graph to this "
                            "path and skip the drift check")
    races.add_argument("--witness", action="store_true",
                       help="run a sharded boot storm under the "
                            "RaceWitness and cross-validate observed "
                            "lock orders against the static graph")
    races.add_argument("--witness-workers", type=_positive_int, default=4,
                       help="XenStore shard count for the witness "
                            "workload (default 4)")
    races.set_defaults(fn=_cmd_races)

    bench_trend = sub.add_parser(
        "bench-trend",
        help="wall-clock deltas between two BENCH_*.json result sets")
    bench_trend.add_argument("old", help="directory (or file) with the "
                                         "older BENCH_*.json results")
    bench_trend.add_argument("new", help="directory (or file) with the "
                                         "newer BENCH_*.json results")
    bench_trend.set_defaults(fn=_cmd_bench_trend)

    bench_gate = sub.add_parser(
        "bench-gate",
        help="check the engine microbench against the committed baseline")
    bench_gate.add_argument("--result", default="BENCH_engine.json",
                            help="BENCH_engine.json from a --json bench "
                                 "run (default: ./BENCH_engine.json)")
    bench_gate.add_argument("--baseline",
                            default="benchmarks/baseline_engine.json",
                            help="committed baseline JSON")
    bench_gate.add_argument("--figures", default=None, metavar="DIR",
                            help="also check the baseline's figure-level "
                                 "requirements against the BENCH_*.json "
                                 "results in DIR (skips the engine check "
                                 "if --result is absent)")
    bench_gate.set_defaults(fn=_cmd_bench_gate)

    sanitize = sub.add_parser(
        "sanitize",
        help="dual-run replay-digest check with runtime sanitizers")
    sanitize.add_argument("--variant", choices=VARIANTS,
                          default="lightvm")
    sanitize.add_argument("--image", default="daytime")
    sanitize.add_argument("--count", type=_positive_int, default=10)
    sanitize.add_argument("--seed", type=int, default=0)
    sanitize.add_argument("--rate", type=float, default=0.0,
                          help="uniform fault-injection probability "
                               "(0 disables the FaultPlan)")
    sanitize.add_argument("--points", default="*",
                          help="fault-point pattern, e.g. 'xenstore.*'")
    sanitize.add_argument("--runs", type=_positive_int, default=2,
                          help="independent runs to digest and compare")
    sanitize.set_defaults(fn=_cmd_sanitize)

    trace = sub.add_parser(
        "trace", help="boot storm under the span tracer "
                      "(phase attribution + Perfetto export)")
    trace.add_argument("--variant", choices=VARIANTS, default="lightvm")
    trace.add_argument("--image", default="daytime")
    trace.add_argument("--count", type=_positive_int, default=10)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", metavar="FILE",
                       help="write a Chrome/Perfetto trace_event JSON "
                            "file")
    trace.set_defaults(fn=_cmd_trace)

    metrics = sub.add_parser(
        "metrics", help="boot storm, then print the metrics registry")
    metrics.add_argument("--variant", choices=VARIANTS,
                         default="lightvm")
    metrics.add_argument("--image", default="daytime")
    metrics.add_argument("--count", type=_positive_int, default=10)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--json", action="store_true",
                         help="emit the registry as JSON")
    metrics.set_defaults(fn=_cmd_metrics)

    cluster = sub.add_parser(
        "cluster", help="parallel multi-host simulation with "
                        "deterministic epoch barriers")
    cluster.add_argument("--scenario", choices=("boot-storm",
                                                "migration-churn",
                                                "churn"),
                         default="boot-storm")
    cluster.add_argument("--hosts", type=_positive_int, default=8)
    cluster.add_argument("--workers", type=_positive_int, default=None,
                         help="OS processes for the procs backend "
                              "(default: one per host)")
    cluster.add_argument("--backend", choices=("inline", "procs"),
                         default="inline")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--seeds", type=seed_set, default=None,
                         metavar="A..B",
                         help="run a whole seed set ('0..7' or '0,3,9'; "
                              "overrides --seed)")
    cluster.add_argument("--guests", type=_positive_int, default=32,
                         help="guests created cluster-wide")
    cluster.add_argument("--requests", type=int, default=0,
                         help="open-loop requests cluster-wide")
    cluster.add_argument("--migrations", type=int, default=None,
                         help="cross-host migrations (churn scenario)")
    cluster.add_argument("--variant", choices=VARIANTS,
                         default="lightvm")
    cluster.add_argument("--placement", choices=("least-loaded",
                                                 "first-fit"),
                         default="least-loaded")
    cluster.add_argument("--epoch-ms", type=float, default=None,
                         help="epoch window length (the lookahead)")
    cluster.add_argument("--net-latency-ms", type=float, default=None,
                         help="minimum cross-host message latency")
    cluster.add_argument("--fault-rate", type=float, default=0.0)
    cluster.add_argument("--recovery", action="store_true",
                         help="attach the recovery layer to every host")
    cluster.add_argument("--json", action="store_true",
                         help="print the replayable reproducer JSON")
    cluster.add_argument("--replay", metavar="FILE",
                         help="re-run a reproducer JSON on the inline "
                              "backend and verify its digest")
    cluster.set_defaults(fn=_cmd_cluster)

    chaos = sub.add_parser(
        "chaos", help="seeded fault campaigns with shrinking reproducers")
    chaos.add_argument("--variant", choices=VARIANTS, default="chaos+xs")
    chaos.add_argument("--image", default="daytime")
    chaos.add_argument("--scenario", choices=("boot-storm", "churn"),
                       default="boot-storm")
    chaos.add_argument("--seeds", default="16", metavar="A..B",
                       help="seed range to campaign over ('0..15'; a "
                            "bare count N is the deprecated spelling "
                            "for '--seed base' + N consecutive seeds)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed (run i uses seed base+i)")
    chaos.add_argument("--count", type=_positive_int, default=8,
                       help="guests each scenario run creates")
    chaos.add_argument("--rules", type=_positive_int, default=3,
                       help="max fault rules per generated schedule")
    chaos.add_argument("--occurrences", type=_positive_int, default=40,
                       help="max occurrence number a rule may target")
    chaos.add_argument("--queue-cap", type=_positive_int, default=None,
                       help="daemon admission-queue depth (enables "
                            "load shedding)")
    chaos.add_argument("--no-reap", action="store_true",
                       help="skip the recovery pass (self-test: crashed "
                            "schedules must then fail the audit)")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="report failing schedules without ddmin")
    chaos.add_argument("--out", metavar="FILE",
                       help="write failing reproducers as JSON")
    chaos.add_argument("--replay", metavar="FILE",
                       help="re-run reproducer JSON instead of a campaign")
    chaos.set_defaults(fn=_cmd_chaos)

    run = sub.add_parser(
        "run", help="execute a declarative scenario spec (YAML/JSON) "
                    "across a seed set; emits a replayable sweep "
                    "manifest")
    run.add_argument("spec", nargs="?", default=None,
                     help="scenario spec file (.yaml/.yml/.json)")
    run.add_argument("--seed", type=int, default=0,
                     help="single seed to run (default 0)")
    run.add_argument("--seeds", type=seed_set, default=None,
                     metavar="A..B",
                     help="run a whole seed set ('0..31' or '0,3,9'; "
                          "overrides --seed)")
    run.add_argument("--workers", type=_positive_int, default=1,
                     help="OS processes for the sweep (default 1; the "
                          "manifest is worker-count invariant)")
    run.add_argument("--json", action="store_true",
                     help="print the sweep manifest JSON")
    run.add_argument("--out", metavar="FILE",
                     help="write the sweep manifest JSON to FILE")
    run.add_argument("--bench-out", metavar="FILE",
                     help="write BENCH-style JSON (bench-trend/"
                          "bench-gate compatible) to FILE")
    run.add_argument("--replay", metavar="FILE",
                     help="re-run a sweep manifest and verify its "
                          "digest instead of reading a spec")
    run.set_defaults(fn=_cmd_run)

    components = sub.add_parser(
        "components", help="list the scenario stdlib component "
                           "catalogue")
    components.add_argument("--kind", default=None,
                            choices=("host", "guest", "traffic",
                                     "faults", "placement", "topology"),
                            help="restrict the listing to one kind")
    components.set_defaults(fn=_cmd_components)
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    args.parser_error = parser.error  # clean exits for runtime lookups
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
