"""noxs — the paper's XenStore replacement (§5.1).

Device information lives in hypervisor-held device pages; back-end setup
goes through ioctls to the noxs kernel module; power operations (suspend/
resume for migration) go through the sysctl split pseudo-device.
"""

from .devctrl import CTRL_SIZE, ControlPageError, DeviceControlPage
from .module import NoxsCosts, NoxsModule
from .sysctl import SysctlBackend, SysctlCosts, SysctlError

__all__ = [
    "CTRL_SIZE",
    "ControlPageError",
    "DeviceControlPage",
    "NoxsCosts",
    "NoxsModule",
    "SysctlBackend",
    "SysctlCosts",
    "SysctlError",
]
