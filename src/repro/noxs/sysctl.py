"""The sysctl pseudo-device: power operations without a XenStore.

§5.1: "To support migration without a XenStore, we create a new
pseudo-device called sysctl to handle power-related operations and
implement it following Xen's split driver model ... These two drivers
share a device page through which communication happens and an event
channel."

The back-end (Dom0) sets the shutdown reason in the shared page and
triggers the event channel; the front-end (guest) saves its state, unbinds
its noxs resources, and reports shutdown to the hypervisor.
"""

from __future__ import annotations

import dataclasses
import typing

from ..hypervisor.devicepage import DEV_SYSCTL
from ..hypervisor.domain import Domain, DomainState, ShutdownReason
from ..hypervisor.hypervisor import Hypervisor
from .module import NoxsModule

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


@dataclasses.dataclass
class SysctlCosts:
    """Cost constants for sysctl power operations (µs unless noted)."""

    #: The Dom0 ioctl + shared-page write + event-channel trigger.
    request_us: float = 15.0
    #: Guest-side suspend work: quiesce, save internal state, unbind noxs
    #: channels and device pages (ms).
    guest_suspend_ms: float = 1.2
    #: Guest-side resume work: rebind and restore (ms).
    guest_resume_ms: float = 0.8


class SysctlError(RuntimeError):
    """Power operation attempted without a sysctl device."""


class SysctlBackend:
    """Dom0 side of the sysctl split driver."""

    NOTE_KEY = "sysctl_entry"

    def __init__(self, sim: "Simulator", hypervisor: Hypervisor,
                 noxs: NoxsModule,
                 costs: typing.Optional[SysctlCosts] = None):
        self.sim = sim
        self.hypervisor = hypervisor
        self.noxs = noxs
        self.costs = costs or SysctlCosts()

    def attach(self, domain: Domain):
        """Generator: create the sysctl device pair for a new noxs VM."""
        entry = yield from self.noxs.ioctl_create_device(domain, DEV_SYSCTL)
        index = yield from self.noxs.write_devpage(domain, entry)
        domain.notes[self.NOTE_KEY] = entry
        return index

    def _entry_for(self, domain: Domain):
        entry = domain.notes.get(self.NOTE_KEY)
        if entry is None:
            raise SysctlError("domain %d has no sysctl device"
                              % domain.domid)
        return entry

    def request_suspend(self, domain: Domain):
        """Generator: suspend ``domain`` through the sysctl channel.

        Returns when the guest has acknowledged and entered SUSPENDED.
        """
        entry = self._entry_for(domain)
        domain.require_state(DomainState.RUNNING)
        # Back-end: write the shutdown reason into the shared control page
        # and trigger the event channel.
        grant = self.hypervisor.grants.entry(0, entry.grant_ref)
        page = self.noxs.control_pages.get(grant.frame)
        if page is not None:
            page.feature_bits = 1  # shutdown_reason = suspend
        yield self.sim.timeout(self.costs.request_us / 1000.0)
        # Front-end: the guest saves internal state and unbinds noxs
        # event channels and device pages.
        yield self.sim.timeout(self.costs.guest_suspend_ms)
        self.hypervisor.domctl_shutdown(domain, ShutdownReason.SUSPEND)

    def complete_resume(self, domain: Domain):
        """Generator: guest-side rebind after a restore/migration."""
        self._entry_for(domain)
        domain.require_state(DomainState.SUSPENDED, DomainState.CREATED)
        yield self.sim.timeout(self.costs.guest_resume_ms)
        self.hypervisor.domctl_unpause(domain)
