"""Device control pages.

Under noxs the per-device state that used to live in XenStore records
(state machine, MAC address, ring reference) moves into a small shared
memory page "pointed to by the grant reference" (§5.1).  Front- and
back-end read and write this page directly and signal each other over the
event channel — no message protocol, no daemon.

The control block is a real packed structure (64 bytes):
``state u8 | dev_type u8 | mtu u16 | mac 6s | ring_ref u32 | feature_bits
u32 | 46 bytes reserved``.
"""

from __future__ import annotations

import struct

from ..hypervisor.devicepage import (STATE_CLOSED, STATE_CONNECTED,
                                     STATE_INITIALISING)

_CTRL_FMT = "<BBH6sII46x"
CTRL_SIZE = struct.calcsize(_CTRL_FMT)


class ControlPageError(RuntimeError):
    """Malformed control-page access."""


class DeviceControlPage:
    """One device's shared control block, identified by a frame number."""

    def __init__(self, frame: int, dev_type: int,
                 mac: bytes = b"\x00" * 6, mtu: int = 1500):
        if len(mac) != 6:
            raise ControlPageError("mac must be 6 bytes")
        self.frame = frame
        self._buf = bytearray(CTRL_SIZE)
        struct.pack_into(_CTRL_FMT, self._buf, 0, STATE_INITIALISING,
                         dev_type, mtu, mac, 0, 0)

    # ------------------------------------------------------------------
    # Field accessors (front and back ends share these)
    # ------------------------------------------------------------------
    def _unpack(self):
        return struct.unpack_from(_CTRL_FMT, self._buf, 0)

    @property
    def state(self) -> int:
        return self._unpack()[0]

    @state.setter
    def state(self, value: int) -> None:
        if value not in (STATE_INITIALISING, STATE_CONNECTED, STATE_CLOSED):
            raise ControlPageError("invalid device state %r" % value)
        self._buf[0] = value

    @property
    def dev_type(self) -> int:
        return self._unpack()[1]

    @property
    def mtu(self) -> int:
        return self._unpack()[2]

    @property
    def mac(self) -> bytes:
        return self._unpack()[3]

    @property
    def ring_ref(self) -> int:
        return self._unpack()[4]

    @ring_ref.setter
    def ring_ref(self, value: int) -> None:
        state, dev_type, mtu, mac, _ring, features = self._unpack()
        struct.pack_into(_CTRL_FMT, self._buf, 0, state, dev_type, mtu, mac,
                         value, features)

    @property
    def feature_bits(self) -> int:
        return self._unpack()[5]

    @feature_bits.setter
    def feature_bits(self, value: int) -> None:
        state, dev_type, mtu, mac, ring, _feat = self._unpack()
        struct.pack_into(_CTRL_FMT, self._buf, 0, state, dev_type, mtu, mac,
                         ring, value)

    def raw(self) -> bytes:
        """The packed 64-byte block."""
        return bytes(self._buf)
