"""The noxs Linux kernel module (Dom0 side).

§5.1 / Figure 7b: when ``chaos create`` runs, the toolstack requests device
creation from the back-end(s) "through an ioctl handled by the noxs Linux
kernel module"; the back-end returns the communication-channel details,
and the toolstack asks the hypervisor (via hypercall) to record them in
the VM's device page.

This module owns the back-end side of that flow: it allocates the event
channel, the device control page and its grant, and hands the triple back
to the toolstack.  It also keeps the frame → control-page mapping that
stands in for physical memory.
"""

from __future__ import annotations

import dataclasses
import typing

from ..faults.plan import GrantMapFailure
from ..faults.retry import RetryPolicy
from ..hypervisor.devicepage import DEV_SYSCTL, DEV_VBD, DEV_VIF, DeviceEntry
from ..hypervisor.domain import Domain
from ..hypervisor.hypervisor import DOM0_ID, Hypervisor
from ..hypervisor.rings import RingPair
from ..trace.tracer import tracer_of
from .devctrl import DeviceControlPage

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


@dataclasses.dataclass
class NoxsCosts:
    """Cost constants for the noxs control path (µs)."""

    #: One ioctl into the kernel module (user/kernel crossing).
    ioctl_us: float = 8.0
    #: Back-end work to set up one device (channel + page + grant).
    backend_setup_us: float = 120.0
    #: The devpage-write hypercall issued by the toolstack.
    hypercall_us: float = 5.0
    #: Back-end teardown of one device.  Deliberately much larger than
    #: setup: §6.2 notes noxs "device destruction times ... which we have
    #: not yet optimized" make migration slightly slower than chaos+XS at
    #: low VM counts (Fig 13).
    backend_teardown_us: float = 9000.0


class NoxsModule:
    """Back-end device factory reached through ``/dev/noxs`` ioctls."""

    def __init__(self, sim: "Simulator", hypervisor: Hypervisor,
                 costs: typing.Optional[NoxsCosts] = None,
                 rng=None,
                 retry_policy: typing.Optional[RetryPolicy] = None):
        self.sim = sim
        self.hypervisor = hypervisor
        self.costs = costs or NoxsCosts()
        #: Retry schedule for transient grant-map failures.
        self.rng = rng
        self.retry_policy = retry_policy or RetryPolicy()
        self._next_frame = 0x100000
        #: frame number -> control page (both ends dereference through it).
        self.control_pages: typing.Dict[int, DeviceControlPage] = {}
        #: frame number -> the device's request/response ring pair.
        self.rings: typing.Dict[int, RingPair] = {}
        self.stats = {"devices_created": 0, "devices_destroyed": 0}

    def _alloc_frame(self) -> int:
        frame = self._next_frame
        self._next_frame += 1
        return frame

    # ------------------------------------------------------------------
    # ioctls (generators driven by toolstack processes)
    # ------------------------------------------------------------------
    def ioctl_create_device(self, domain: Domain, dev_type: int,
                            mac: bytes = b"\x00" * 6):
        """Generator: create one back-end device for ``domain``.

        Returns the :class:`DeviceEntry` the toolstack will write into the
        domain's device page via hypercall.  Currently back-ends must run
        in Dom0 (the paper notes the same restriction).
        """
        if dev_type not in (DEV_VIF, DEV_VBD, DEV_SYSCTL):
            raise ValueError("unsupported noxs device type %r" % dev_type)
        with tracer_of(self.sim).span("noxs.ioctl_create",
                                      domid=domain.domid,
                                      dev_type=dev_type):
            entry = yield from self._ioctl_create(domain, dev_type, mac)
        return entry

    def _ioctl_create(self, domain: Domain, dev_type: int, mac: bytes):
        yield self.sim.timeout(self.costs.ioctl_us / 1000.0)

        # Back-end: allocate the communication channel and control page.
        port = self.hypervisor.event_channels.alloc_unbound(
            DOM0_ID, domain.domid)
        frame = self._alloc_frame()
        page = DeviceControlPage(frame, dev_type, mac=mac)
        self.control_pages[frame] = page
        # Data path: the device's shared request/response rings, pointed
        # to by the control page (sysctl has no data path).
        if dev_type != DEV_SYSCTL:
            self.rings[frame] = RingPair()
            page.ring_ref = frame
        retry = 0
        started = self.sim.now
        while True:
            try:
                grant_ref = self.hypervisor.grants.grant_access(
                    DOM0_ID, domain.domid, frame)
                break
            except GrantMapFailure:
                retry += 1
                if self.retry_policy.give_up(retry, started, self.sim.now):
                    # Undo the half-built device before giving up.
                    self.control_pages.pop(frame, None)
                    self.rings.pop(frame, None)
                    self.hypervisor.event_channels.close(DOM0_ID, port)
                    raise
                yield self.sim.timeout(
                    self.retry_policy.backoff_ms(retry, self.rng))
        yield self.sim.timeout(self.costs.backend_setup_us / 1000.0)

        self.stats["devices_created"] += 1
        return DeviceEntry(dev_type=dev_type, state=page.state,
                           backend_domid=DOM0_ID, evtchn_port=port,
                           grant_ref=grant_ref, mac=mac)

    def ioctl_destroy_device(self, domain: Domain, entry):
        """Generator: tear down one back-end device (unoptimized path)."""
        with tracer_of(self.sim).span("noxs.ioctl_destroy",
                                      domid=domain.domid):
            yield from self._ioctl_destroy(domain, entry)

    def _ioctl_destroy(self, domain: Domain, entry):
        yield self.sim.timeout(self.costs.ioctl_us / 1000.0)
        # Force-revoke the control-page grant: the guest may be gone.
        grant = self.hypervisor.grants._entries.get(
            (DOM0_ID, entry.grant_ref))
        if grant is not None:
            self.control_pages.pop(grant.frame, None)
            self.rings.pop(grant.frame, None)
            grant.mapped_by = None
            self.hypervisor.grants.end_access(DOM0_ID, entry.grant_ref)
        try:
            self.hypervisor.event_channels.close(DOM0_ID, entry.evtchn_port)
        except Exception:
            pass  # peer already closed it during teardown
        yield self.sim.timeout(self.costs.backend_teardown_us / 1000.0)
        self.stats["devices_destroyed"] += 1

    def write_devpage(self, domain: Domain, entry: DeviceEntry):
        """Generator: hypercall adding ``entry`` to the domain's page."""
        with tracer_of(self.sim).span("noxs.devpage_write",
                                      domid=domain.domid):
            index = self.hypervisor.devpage_write(DOM0_ID, domain, entry)
            yield self.sim.timeout(self.costs.hypercall_us / 1000.0)
        return index
