"""Kernel configuration trimming — the Tinyx kernel build (§3.2).

"To build the kernel, Tinyx begins with the 'tinyconfig' Linux kernel
build target as a baseline, and adds a set of built-in options depending
on the target system (e.g., Xen or KVM support) ... Optionally, the build
system can take a set of user-provided kernel options, disable each one in
turn, rebuild the kernel with the olddefconfig target, boot the Tinyx
image, and run a user-provided test to see if the system still works ...
if the test fails, the option is re-enabled, otherwise it is left out."

We model a kernel as a dependency graph of options with size
contributions, implement ``olddefconfig`` as dependency fix-point
resolution, and run the real disable→rebuild→test→revert loop.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class KernelOption:
    """One CONFIG_* option."""

    name: str
    #: Kernel image size contribution, KiB.
    size_kb: int
    #: Options this one needs (select/depends collapsed).
    requires: typing.Tuple[str, ...] = ()


#: The modelled option universe (a representative slice).
KERNEL_OPTIONS: typing.Dict[str, KernelOption] = {
    opt.name: opt for opt in [
        # tinyconfig core.
        KernelOption("CONFIG_64BIT", 220),
        KernelOption("CONFIG_PRINTK", 90),
        KernelOption("CONFIG_BINFMT_ELF", 60),
        KernelOption("CONFIG_MULTIUSER", 40),
        KernelOption("CONFIG_FUTEX", 35),
        KernelOption("CONFIG_EPOLL", 25),
        KernelOption("CONFIG_PROC_FS", 70),
        KernelOption("CONFIG_SYSFS", 65),
        KernelOption("CONFIG_TMPFS", 45),
        # Paravirtualization.
        KernelOption("CONFIG_PARAVIRT", 110),
        KernelOption("CONFIG_XEN", 260, requires=("CONFIG_PARAVIRT",)),
        KernelOption("CONFIG_XEN_NETFRONT", 95,
                     requires=("CONFIG_XEN", "CONFIG_NET")),
        KernelOption("CONFIG_XEN_BLKFRONT", 85, requires=("CONFIG_XEN",)),
        KernelOption("CONFIG_HVC_XEN", 30, requires=("CONFIG_XEN",)),
        KernelOption("CONFIG_KVM_GUEST", 180,
                     requires=("CONFIG_PARAVIRT",)),
        KernelOption("CONFIG_VIRTIO", 80),
        KernelOption("CONFIG_VIRTIO_NET", 90,
                     requires=("CONFIG_VIRTIO", "CONFIG_NET")),
        KernelOption("CONFIG_VIRTIO_BLK", 80, requires=("CONFIG_VIRTIO",)),
        # Networking.
        KernelOption("CONFIG_NET", 420),
        KernelOption("CONFIG_INET", 510, requires=("CONFIG_NET",)),
        KernelOption("CONFIG_UNIX", 90, requires=("CONFIG_NET",)),
        KernelOption("CONFIG_PACKET", 60, requires=("CONFIG_NET",)),
        KernelOption("CONFIG_IPV6", 480, requires=("CONFIG_INET",)),
        KernelOption("CONFIG_NETFILTER", 380, requires=("CONFIG_NET",)),
        # Filesystems.
        KernelOption("CONFIG_BLOCK", 260),
        KernelOption("CONFIG_EXT4_FS", 540, requires=("CONFIG_BLOCK",)),
        KernelOption("CONFIG_VFAT_FS", 130, requires=("CONFIG_BLOCK",)),
        KernelOption("CONFIG_NFS_FS", 420,
                     requires=("CONFIG_INET", "CONFIG_BLOCK")),
        # Bare-metal drivers Tinyx disables for virtual machines.
        KernelOption("CONFIG_PCI", 320),
        KernelOption("CONFIG_E1000", 190,
                     requires=("CONFIG_PCI", "CONFIG_NET")),
        KernelOption("CONFIG_SATA_AHCI", 210,
                     requires=("CONFIG_PCI", "CONFIG_BLOCK")),
        KernelOption("CONFIG_USB", 480, requires=("CONFIG_PCI",)),
        KernelOption("CONFIG_DRM", 900, requires=("CONFIG_PCI",)),
        KernelOption("CONFIG_SOUND", 620, requires=("CONFIG_PCI",)),
        KernelOption("CONFIG_WLAN", 700, requires=("CONFIG_NET",)),
        # Generic fat to trim.
        KernelOption("CONFIG_MODULES", 150),
        KernelOption("CONFIG_SWAP", 120, requires=("CONFIG_BLOCK",)),
        KernelOption("CONFIG_NUMA", 240),
        KernelOption("CONFIG_DEBUG_INFO", 1500),
        KernelOption("CONFIG_KALLSYMS", 350),
        KernelOption("CONFIG_MAGIC_SYSRQ", 40),
        KernelOption("CONFIG_AUDIT", 180),
        KernelOption("CONFIG_SECURITY_SELINUX", 420,
                     requires=("CONFIG_AUDIT",)),
        KernelOption("CONFIG_CGROUPS", 260),
        KernelOption("CONFIG_NAMESPACES", 190),
    ]
}

#: Compressed-image bytes independent of options (head code, decompressor).
BASE_KERNEL_KB = 600

#: What `make tinyconfig` turns on.
TINYCONFIG = ("CONFIG_64BIT", "CONFIG_PRINTK", "CONFIG_BINFMT_ELF",
              "CONFIG_MULTIUSER", "CONFIG_FUTEX", "CONFIG_EPOLL")

#: Built-ins Tinyx adds per target platform.
PLATFORM_OPTIONS = {
    "xen": ("CONFIG_XEN", "CONFIG_XEN_NETFRONT", "CONFIG_XEN_BLKFRONT",
            "CONFIG_HVC_XEN", "CONFIG_PROC_FS", "CONFIG_SYSFS",
            "CONFIG_TMPFS", "CONFIG_NET", "CONFIG_INET", "CONFIG_UNIX",
            "CONFIG_BLOCK"),
    "kvm": ("CONFIG_KVM_GUEST", "CONFIG_VIRTIO", "CONFIG_VIRTIO_NET",
            "CONFIG_VIRTIO_BLK", "CONFIG_PROC_FS", "CONFIG_SYSFS",
            "CONFIG_TMPFS", "CONFIG_NET", "CONFIG_INET", "CONFIG_UNIX",
            "CONFIG_BLOCK"),
}

#: A typical distribution kernel config (what Debian ships) — everything.
DISTRO_EXTRA = ("CONFIG_IPV6", "CONFIG_NETFILTER", "CONFIG_EXT4_FS",
                "CONFIG_VFAT_FS", "CONFIG_NFS_FS", "CONFIG_PCI",
                "CONFIG_E1000", "CONFIG_SATA_AHCI", "CONFIG_USB",
                "CONFIG_DRM", "CONFIG_SOUND", "CONFIG_WLAN",
                "CONFIG_MODULES", "CONFIG_SWAP", "CONFIG_NUMA",
                "CONFIG_KALLSYMS", "CONFIG_MAGIC_SYSRQ", "CONFIG_AUDIT",
                "CONFIG_SECURITY_SELINUX", "CONFIG_CGROUPS",
                "CONFIG_NAMESPACES", "CONFIG_DEBUG_INFO")


class UnknownOptionError(KeyError):
    """Referenced a CONFIG_* option the model does not know."""


class KernelConfig:
    """A mutable kernel configuration."""

    def __init__(self, enabled: typing.Iterable[str] = ()):
        self.enabled: typing.Set[str] = set()
        for name in enabled:
            self.enable(name)

    @classmethod
    def tinyconfig(cls) -> "KernelConfig":
        """`make tinyconfig`."""
        return cls(TINYCONFIG)

    @classmethod
    def distro(cls, platform: str = "xen") -> "KernelConfig":
        """A Debian-style everything-on kernel for comparison."""
        config = cls.tinyconfig()
        for name in PLATFORM_OPTIONS[platform] + DISTRO_EXTRA:
            config.enable(name)
        return config

    @staticmethod
    def _option(name: str) -> KernelOption:
        try:
            return KERNEL_OPTIONS[name]
        except KeyError:
            raise UnknownOptionError(name) from None

    def enable(self, name: str) -> None:
        """Enable an option and (recursively) its requirements."""
        option = self._option(name)
        if name in self.enabled:
            return
        self.enabled.add(name)
        for requirement in option.requires:
            self.enable(requirement)

    def disable(self, name: str) -> None:
        """Turn an option off (dependents are fixed by olddefconfig)."""
        self._option(name)
        self.enabled.discard(name)

    def olddefconfig(self) -> typing.List[str]:
        """Drop options whose requirements are no longer satisfiable;
        iterate to a fix point (what `make olddefconfig` effectively does
        after a dependency was switched off).  Returns what was dropped."""
        dropped: typing.List[str] = []
        changed = True
        while changed:
            changed = False
            for name in sorted(self.enabled):
                option = self._option(name)
                if any(req not in self.enabled for req in option.requires):
                    self.enabled.discard(name)
                    dropped.append(name)
                    changed = True
        return dropped

    def is_enabled(self, name: str) -> bool:
        return name in self.enabled

    def size_kb(self) -> int:
        """Compressed kernel image size."""
        return BASE_KERNEL_KB + sum(self._option(name).size_kb
                                    for name in self.enabled)

    def copy(self) -> "KernelConfig":
        clone = KernelConfig()
        clone.enabled = set(self.enabled)
        return clone


def default_boot_test(platform: str,
                      needs_network: bool = True,
                      needs_block: bool = False):
    """A boot-test oracle: does a Tinyx image with this config come up and
    pass the user's check (e.g. wget a file from nginx)?"""
    base = ["CONFIG_64BIT", "CONFIG_BINFMT_ELF", "CONFIG_PROC_FS",
            "CONFIG_SYSFS", "CONFIG_TMPFS"]
    if platform == "xen":
        base += ["CONFIG_XEN", "CONFIG_HVC_XEN"]
        if needs_network:
            base += ["CONFIG_XEN_NETFRONT", "CONFIG_NET", "CONFIG_INET"]
        if needs_block:
            base += ["CONFIG_XEN_BLKFRONT", "CONFIG_BLOCK"]
    elif platform == "kvm":
        base += ["CONFIG_KVM_GUEST"]
        if needs_network:
            base += ["CONFIG_VIRTIO_NET", "CONFIG_NET", "CONFIG_INET"]
        if needs_block:
            base += ["CONFIG_VIRTIO_BLK", "CONFIG_BLOCK"]
    else:
        raise ValueError("unknown platform %r" % platform)
    required = tuple(base)

    def test(config: KernelConfig) -> bool:
        return all(config.is_enabled(name) for name in required)

    return test


@dataclasses.dataclass
class TrimReport:
    """Outcome of the trim loop."""

    removed: typing.List[str]
    retained: typing.List[str]
    #: Kernel rebuilds performed (each candidate costs one).
    builds: int
    size_before_kb: int
    size_after_kb: int


def trim(config: KernelConfig, candidates: typing.Sequence[str],
         boot_test: typing.Callable[[KernelConfig], bool]) -> TrimReport:
    """The §3.2 loop: disable each candidate in turn, olddefconfig,
    boot-test, and keep the option out only if the test still passes."""
    size_before = config.size_kb()
    removed: typing.List[str] = []
    retained: typing.List[str] = []
    builds = 0
    for name in candidates:
        if not config.is_enabled(name):
            continue
        trial = config.copy()
        trial.disable(name)
        dropped = trial.olddefconfig()
        builds += 1
        if boot_test(trial):
            config.enabled = trial.enabled
            removed.append(name)
            removed.extend(dropped)
        else:
            retained.append(name)
    return TrimReport(removed=removed, retained=retained, builds=builds,
                      size_before_kb=size_before,
                      size_after_kb=config.size_kb())
