"""Tinyx — the automated minimal-Linux-VM build system of §3.2."""

from .build import (DEFAULT_TRIM_CANDIDATES, TinyxBuild, TinyxBuilder,
                    debian_kernel_size_kb)
from .depresolve import (DependencyError, discover_library_packages,
                         plan_install, resolve_closure)
from .kernelconfig import (KERNEL_OPTIONS, KernelConfig, KernelOption,
                           TrimReport, UnknownOptionError,
                           default_boot_test, trim)
from .overlay import Filesystem, OverlayResult, assemble, busybox_underlay
from .packages import (APP_BINARIES, DEFAULT_BLACKLIST, AppBinary, Package,
                       PackageUniverse, UnknownPackageError,
                       debian_universe)

__all__ = [
    "APP_BINARIES",
    "AppBinary",
    "DEFAULT_BLACKLIST",
    "DEFAULT_TRIM_CANDIDATES",
    "DependencyError",
    "Filesystem",
    "KERNEL_OPTIONS",
    "KernelConfig",
    "KernelOption",
    "OverlayResult",
    "Package",
    "PackageUniverse",
    "TinyxBuild",
    "TinyxBuilder",
    "TrimReport",
    "UnknownOptionError",
    "UnknownPackageError",
    "assemble",
    "busybox_underlay",
    "debian_kernel_size_kb",
    "debian_universe",
    "default_boot_test",
    "discover_library_packages",
    "plan_install",
    "resolve_closure",
    "trim",
]
