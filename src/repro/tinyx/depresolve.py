"""Tinyx dependency discovery and closure resolution.

§3.2: "To derive dependencies, Tinyx uses (1) objdump to generate a list
of libraries and (2) the Debian package manager.  To optimize the latter,
Tinyx includes a blacklist of packages that are marked as required (mostly
for installation, e.g., dpkg) but not strictly needed for running the
application.  In addition, we include a whitelist of packages that the
user might want to include irrespective of dependency analysis."
"""

from __future__ import annotations

import typing

from .packages import (AppBinary, Package, PackageUniverse,
                       UnknownPackageError)


class DependencyError(RuntimeError):
    """The closure cannot be satisfied (missing package/library)."""


def discover_library_packages(binary: AppBinary,
                              universe: PackageUniverse
                              ) -> typing.List[Package]:
    """The objdump step: map NEEDED sonames to the packages shipping them.

    Returns the direct library providers (unsorted closure comes later).
    """
    providers: typing.List[Package] = []
    seen: typing.Set[str] = set()
    for soname in binary.needed_sonames:
        try:
            provider = universe.provider_of_lib(soname)
        except UnknownPackageError:
            raise DependencyError(
                "%s needs %s but no package provides it"
                % (binary.name, soname)) from None
        if provider.name not in seen:
            seen.add(provider.name)
            providers.append(provider)
    return providers


def resolve_closure(roots: typing.Iterable[str],
                    universe: PackageUniverse,
                    blacklist: typing.Iterable[str] = (),
                    whitelist: typing.Iterable[str] = ()
                    ) -> typing.List[Package]:
    """Compute the install set: roots + whitelist, transitively closed
    over Depends, minus the blacklist.

    The result is topologically ordered (dependencies before dependents),
    matching dpkg's unpack order.  Blacklisted packages are skipped along
    with the dependency edges into them — the whole point of the blacklist
    is to cut those edges.

    Raises :class:`DependencyError` for unknown packages or dependency
    cycles (a malformed universe).
    """
    blacklist_set = set(blacklist)
    wanted: typing.List[str] = []
    for name in list(roots) + list(whitelist):
        if name not in wanted:
            wanted.append(name)

    # BFS the Depends graph, skipping blacklisted nodes.
    closure: typing.Dict[str, Package] = {}
    queue = [name for name in wanted if name not in blacklist_set]
    while queue:
        name = queue.pop(0)
        if name in closure:
            continue
        try:
            package = universe.get(name)
        except UnknownPackageError:
            raise DependencyError("unknown package %r" % name) from None
        closure[name] = package
        for dep in package.depends:
            if dep not in blacklist_set and dep not in closure:
                queue.append(dep)

    # Topological sort (Kahn) over the subgraph.
    in_closure = set(closure)
    indegree = {name: 0 for name in closure}
    for package in closure.values():
        for dep in package.depends:
            if dep in in_closure:
                indegree[package.name] += 1
    ready = sorted(name for name, deg in indegree.items() if deg == 0)
    ordered: typing.List[Package] = []
    while ready:
        name = ready.pop(0)
        ordered.append(closure[name])
        for other in sorted(in_closure):
            package = closure[other]
            if name in package.depends:
                indegree[other] -= 1
                if indegree[other] == 0:
                    ready.append(other)
        ready.sort()
    if len(ordered) != len(closure):
        cyclic = sorted(in_closure - {p.name for p in ordered})
        raise DependencyError("dependency cycle among: %s"
                              % ", ".join(cyclic))
    return ordered


def plan_install(app: AppBinary, universe: PackageUniverse,
                 blacklist: typing.Iterable[str] = (),
                 whitelist: typing.Iterable[str] = ()
                 ) -> typing.List[Package]:
    """The full Tinyx discovery pipeline for one application binary."""
    roots = [app.package]
    roots.extend(p.name for p in discover_library_packages(app, universe))
    return resolve_closure(roots, universe, blacklist=blacklist,
                           whitelist=whitelist)
