"""A synthetic Debian package universe for the Tinyx build system.

Tinyx (§3.2) derives an application's dependencies with objdump and the
Debian package manager.  Since the reproduction has no network or dpkg, we
model a self-consistent slice of the Debian jessie archive: packages with
versions, sizes, dependency lists, provided shared libraries (sonames),
and the metadata Tinyx's heuristics key on (``required`` packages that are
only needed for installation, maintainer scripts, cache files).
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class Package:
    """One Debian package."""

    name: str
    version: str
    #: Installed size, KiB.
    size_kb: int
    #: Names of packages this one depends on.
    depends: typing.Tuple[str, ...] = ()
    #: Sonames of shared libraries this package ships.
    provides_libs: typing.Tuple[str, ...] = ()
    #: Binaries under /usr/bin this package ships.
    provides_bins: typing.Tuple[str, ...] = ()
    #: dpkg priority "required": needed to *install* a Debian system but
    #: usually not to *run* one application (Tinyx blacklists most).
    required: bool = False
    #: Whether the package has maintainer scripts (which expect utilities
    #: a minimal system lacks — the reason Tinyx installs via an overlay).
    has_scripts: bool = False
    #: KiB of cache/doc files that Tinyx strips before the merge.
    strippable_kb: int = 0


class UnknownPackageError(KeyError):
    """A dependency references a package not in the universe."""


class PackageUniverse:
    """An indexed set of packages."""

    def __init__(self, packages: typing.Iterable[Package] = ()):
        self._by_name: typing.Dict[str, Package] = {}
        self._by_lib: typing.Dict[str, str] = {}
        self._by_bin: typing.Dict[str, str] = {}
        for package in packages:
            self.add(package)

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def add(self, package: Package) -> None:
        """Register a package (latest add wins for lib/bin providers)."""
        if package.name in self._by_name:
            raise ValueError("duplicate package %r" % package.name)
        self._by_name[package.name] = package
        for soname in package.provides_libs:
            self._by_lib[soname] = package.name
        for binary in package.provides_bins:
            self._by_bin[binary] = package.name

    def get(self, name: str) -> Package:
        """Look up a package by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownPackageError(name) from None

    def provider_of_lib(self, soname: str) -> Package:
        """Which package ships ``soname``."""
        try:
            return self._by_name[self._by_lib[soname]]
        except KeyError:
            raise UnknownPackageError("no package provides %r"
                                      % soname) from None

    def provider_of_bin(self, binary: str) -> Package:
        """Which package ships ``/usr/bin/<binary>``."""
        try:
            return self._by_name[self._by_bin[binary]]
        except KeyError:
            raise UnknownPackageError("no package provides binary %r"
                                      % binary) from None

    def names(self) -> typing.List[str]:
        return sorted(self._by_name)


@dataclasses.dataclass(frozen=True)
class AppBinary:
    """What objdump would tell Tinyx about an application binary."""

    name: str
    #: NEEDED entries from the ELF dynamic section.
    needed_sonames: typing.Tuple[str, ...]
    #: The package shipping the application itself.
    package: str


def debian_universe() -> PackageUniverse:
    """The synthetic jessie slice the examples and tests build against."""
    return PackageUniverse([
        # -- the C runtime and friends -------------------------------------
        Package("libc6", "2.19-18", 10240,
                provides_libs=("libc.so.6", "libm.so.6", "libdl.so.2",
                               "libpthread.so.0", "librt.so.1"),
                required=True, strippable_kb=1400),
        Package("zlib1g", "1.2.8-1", 160, depends=("libc6",),
                provides_libs=("libz.so.1",)),
        Package("libpcre3", "8.35-3", 420, depends=("libc6",),
                provides_libs=("libpcre.so.3",)),
        Package("libssl1.0.0", "1.0.1t-1", 2200, depends=("libc6",),
                provides_libs=("libssl.so.1.0.0", "libcrypto.so.1.0.0"),
                strippable_kb=250),
        Package("libexpat1", "2.1.0-6", 220, depends=("libc6",),
                provides_libs=("libexpat.so.1",)),
        Package("libffi6", "3.1-2", 80, depends=("libc6",),
                provides_libs=("libffi.so.6",)),
        Package("libbz2", "1.0.6-7", 90, depends=("libc6",),
                provides_libs=("libbz2.so.1.0",)),
        Package("libsqlite3", "3.8.7-1", 800, depends=("libc6",),
                provides_libs=("libsqlite3.so.0",)),
        Package("libreadline6", "6.3-8", 300, depends=("libc6",),
                provides_libs=("libreadline.so.6",)),
        Package("libncurses5", "5.9-10", 400, depends=("libc6",),
                provides_libs=("libncurses.so.5", "libtinfo.so.5")),
        # -- applications ---------------------------------------------------
        Package("nginx", "1.6.2-5", 1200,
                depends=("libc6", "libpcre3", "zlib1g", "libssl1.0.0"),
                provides_bins=("nginx",), has_scripts=True,
                strippable_kb=300),
        Package("micropython", "1.8-1", 450, depends=("libc6", "libffi6"),
                provides_bins=("micropython",)),
        Package("python3.4-minimal", "3.4.2-1", 3900,
                depends=("libc6", "libexpat1", "zlib1g", "libssl1.0.0",
                         "libsqlite3", "libffi6", "libbz2"),
                provides_bins=("python3",), has_scripts=True,
                strippable_kb=900),
        Package("redis-server", "2.8.17-1", 1100, depends=("libc6",),
                provides_bins=("redis-server",), has_scripts=True,
                strippable_kb=120),
        Package("openssl", "1.0.1t-1", 1100,
                depends=("libc6", "libssl1.0.0"),
                provides_bins=("openssl",), strippable_kb=150),
        Package("iperf", "2.0.5-1", 140, depends=("libc6",),
                provides_bins=("iperf",)),
        Package("stunnel4", "5.06-2", 500,
                depends=("libc6", "libssl1.0.0"),
                provides_bins=("stunnel4",), has_scripts=True),
        # -- the BusyBox underlay -------------------------------------------
        Package("busybox-static", "1.22.0-9", 1800,
                provides_bins=("busybox", "sh", "init")),
        # -- installation-only machinery (Tinyx's default blacklist) --------
        Package("dpkg", "1.17.26", 6600, depends=("libc6",),
                provides_bins=("dpkg",), required=True, has_scripts=True,
                strippable_kb=2200),
        Package("apt", "1.0.9", 3600, depends=("libc6", "dpkg"),
                provides_bins=("apt-get",), required=True,
                has_scripts=True, strippable_kb=1100),
        Package("perl-base", "5.20.2", 5300, depends=("libc6",),
                provides_bins=("perl",), required=True,
                strippable_kb=1600),
        Package("bash", "4.3-11", 5100,
                depends=("libc6", "libncurses5"),
                provides_bins=("bash",), required=True,
                strippable_kb=1500),
        Package("coreutils", "8.23-4", 14000, depends=("libc6",),
                provides_bins=("ls", "cp", "cat"), required=True,
                strippable_kb=4200),
        Package("debconf", "1.5.56", 700, depends=("perl-base",),
                required=True, has_scripts=True, strippable_kb=250),
        Package("init-system-helpers", "1.22", 130,
                depends=("perl-base",), required=True),
    ])


#: The binaries Tinyx knows how to objdump in the examples.
APP_BINARIES = {
    "nginx": AppBinary("nginx",
                       ("libc.so.6", "libpcre.so.3", "libz.so.1",
                        "libssl.so.1.0.0", "libcrypto.so.1.0.0"),
                       package="nginx"),
    "micropython": AppBinary("micropython",
                             ("libc.so.6", "libm.so.6", "libffi.so.6"),
                             package="micropython"),
    "redis-server": AppBinary("redis-server",
                              ("libc.so.6", "libm.so.6",
                               "libpthread.so.0"),
                              package="redis-server"),
    "iperf": AppBinary("iperf", ("libc.so.6", "libpthread.so.0"),
                       package="iperf"),
    "stunnel4": AppBinary("stunnel4",
                          ("libc.so.6", "libssl.so.1.0.0",
                           "libcrypto.so.1.0.0"),
                          package="stunnel4"),
}

#: Tinyx's default blacklist: dpkg-"required" packages that are "mostly
#: for installation ... but not strictly needed for running the
#: application" (§3.2).
DEFAULT_BLACKLIST = ("dpkg", "apt", "perl-base", "bash", "coreutils",
                     "debconf", "init-system-helpers")
