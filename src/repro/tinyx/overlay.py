"""OverlayFS assembly of the Tinyx filesystem.

§3.2's procedure, reproduced step for step: mount an empty OverlayFS
directory over a minimal debootstrap system, install the resolved packages
into the overlay (so maintainer scripts find the utilities they expect),
strip caches and dpkg/apt state, unmount, then overlay the result on top
of a BusyBox underlay and take the merged contents.  A final init glue
script runs the application from BusyBox's init.
"""

from __future__ import annotations

import dataclasses
import typing

from .packages import Package, PackageUniverse


@dataclasses.dataclass
class Filesystem:
    """A set of files: path -> size in KiB."""

    files: typing.Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def total_kb(self) -> int:
        return sum(self.files.values())

    def add(self, path: str, size_kb: int) -> None:
        self.files[path] = size_kb

    def remove_prefix(self, prefix: str) -> int:
        """Delete everything under ``prefix``; returns KiB removed."""
        doomed = [p for p in self.files if p.startswith(prefix)]
        removed = 0
        for path in doomed:
            removed += self.files.pop(path)
        return removed

    def merge_under(self, underlay: "Filesystem") -> "Filesystem":
        """Overlay self on top of ``underlay`` (self wins on conflicts)."""
        merged = dict(underlay.files)
        merged.update(self.files)
        return Filesystem(files=merged)


def package_files(package: Package) -> typing.Dict[str, int]:
    """The file manifest a package unpacks (deterministic synthesis)."""
    files: typing.Dict[str, int] = {}
    payload = package.size_kb - package.strippable_kb
    units = (list(package.provides_bins)
             + list(package.provides_libs)) or [package.name]
    per_unit = max(1, payload // len(units))
    for binary in package.provides_bins:
        files["usr/bin/%s" % binary] = per_unit
    for soname in package.provides_libs:
        files["usr/lib/%s" % soname] = per_unit
    if not package.provides_bins and not package.provides_libs:
        files["usr/share/%s/data" % package.name] = per_unit
    # Strippable material: caches, docs, dpkg bookkeeping.
    if package.strippable_kb:
        files["usr/share/doc/%s/changelog.gz" % package.name] = \
            package.strippable_kb // 2
        files["var/cache/apt/archives/%s.deb" % package.name] = \
            package.strippable_kb - package.strippable_kb // 2
    files["var/lib/dpkg/info/%s.list" % package.name] = 1
    return files


#: The debootstrap base (what the overlay is mounted over).  Mounted
#: read-only underneath — it is *not* part of the final image.
DEBOOTSTRAP_BASE_KB = 190_000

#: BusyBox underlay: the static binary plus its applet links and the
#: minimal /etc skeleton (§3.2: BusyBox provides "basic functionality").
def busybox_underlay() -> Filesystem:
    fs = Filesystem()
    fs.add("bin/busybox", 1800)
    fs.add("etc/inittab", 1)
    fs.add("etc/init.d/rcS", 1)
    for applet in ("sh", "mount", "ifconfig", "ip", "udhcpc", "syslogd"):
        fs.add("bin/%s" % applet, 0)  # symlinks to busybox
    return fs


@dataclasses.dataclass
class OverlayResult:
    """Outcome of the overlay assembly."""

    filesystem: Filesystem
    stripped_kb: int
    installed_packages: typing.List[str]


def assemble(packages: typing.Sequence[Package],
             universe: PackageUniverse,
             app_name: str) -> OverlayResult:
    """Run the §3.2 overlay procedure; returns the merged minimal fs."""
    del universe  # the manifest synthesis needs only the packages
    overlay = Filesystem()
    for package in packages:
        for path, size_kb in package_files(package).items():
            overlay.add(path, size_kb)

    # "Before unmounting, we remove all cache files, any dpkg/apt related
    # files, and other unnecessary directories."
    stripped = 0
    for prefix in ("var/cache/", "var/lib/dpkg/", "var/lib/apt/",
                   "usr/share/doc/"):
        stripped += overlay.remove_prefix(prefix)

    # "we overlay this directory on top of a BusyBox image as an underlay
    # and take the contents of the merged directory"
    merged = overlay.merge_under(busybox_underlay())

    # "the system adds a small glue to run the application from BusyBox's
    # init"
    merged.add("etc/init.d/S99%s" % app_name, 1)

    return OverlayResult(filesystem=merged, stripped_kb=stripped,
                         installed_packages=[p.name for p in packages])
