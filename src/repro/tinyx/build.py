"""The Tinyx builder: application + platform → a bootable GuestImage.

Ties the pipeline together: objdump dependency discovery → package
closure minus blacklist plus whitelist → OverlayFS assembly → tinyconfig
kernel + platform built-ins + optional trim loop → a
:class:`~repro.guests.images.GuestImage` whose kernel bundles the
distribution as an initramfs (how the Fig 4 Tinyx image is built).
"""

from __future__ import annotations

import dataclasses
import typing

from ..guests.images import GuestImage, GuestKind
from .depresolve import plan_install
from .kernelconfig import (DISTRO_EXTRA, KernelConfig, PLATFORM_OPTIONS,
                           TrimReport, default_boot_test, trim)
from .overlay import OverlayResult, assemble
from .packages import (APP_BINARIES, DEFAULT_BLACKLIST, AppBinary,
                       PackageUniverse, debian_universe)

#: Runtime memory model: kernel working set (§3.2: "1.6MB for Tinyx vs.
#: 8MB for the Debian we tested") + BusyBox/init + the application's RSS
#: headroom, rounded up to what Fig 4's Tinyx guests were given.
TINYX_KERNEL_RUNTIME_KB = 1638
DEFAULT_GUEST_MEMORY_KB = 30720


@dataclasses.dataclass
class TinyxBuild:
    """Everything the build produced, for inspection and reporting."""

    image: GuestImage
    packages: typing.List[str]
    overlay: OverlayResult
    kernel_config: KernelConfig
    trim_report: typing.Optional[TrimReport]

    @property
    def kernel_kb(self) -> int:
        return self.kernel_config.size_kb()

    @property
    def initramfs_kb(self) -> int:
        return self.overlay.filesystem.total_kb


class TinyxBuilder:
    """The automated build system of §3.2."""

    def __init__(self, universe: typing.Optional[PackageUniverse] = None):
        self.universe = universe or debian_universe()

    def build(self, app: str, platform: str = "xen",
              blacklist: typing.Iterable[str] = DEFAULT_BLACKLIST,
              whitelist: typing.Iterable[str] = (),
              trim_candidates: typing.Optional[typing.Sequence[str]] = None,
              boot_test: typing.Optional[typing.Callable] = None,
              memory_kb: int = DEFAULT_GUEST_MEMORY_KB,
              needs_block: bool = False) -> TinyxBuild:
        """Build a Tinyx image for ``app`` targeting ``platform``.

        ``trim_candidates`` is the §3.2 "set of user-provided kernel
        options" to try disabling; ``boot_test`` overrides the default
        boot-and-probe oracle.
        """
        binary = self._binary(app)
        packages = plan_install(binary, self.universe,
                                blacklist=blacklist, whitelist=whitelist)
        overlay = assemble(packages, self.universe, app_name=app)

        config = KernelConfig.tinyconfig()
        if platform not in PLATFORM_OPTIONS:
            raise ValueError("unknown platform %r; known: %s"
                             % (platform,
                                ", ".join(sorted(PLATFORM_OPTIONS))))
        for option in PLATFORM_OPTIONS[platform]:
            config.enable(option)

        trim_report = None
        if trim_candidates is not None:
            test = boot_test or default_boot_test(
                platform, needs_network=True, needs_block=needs_block)
            # Make sure the candidates exist in the config so that the
            # trim loop has something to try (a distro-ish starting set).
            for option in trim_candidates:
                config.enable(option)
            trim_report = trim(config, trim_candidates, test)

        kernel_kb = config.size_kb() + overlay.filesystem.total_kb
        image = GuestImage(
            name="tinyx-%s" % app,
            kind=GuestKind.TINYX,
            kernel_size_kb=kernel_kb,
            rootfs_size_kb=0,  # the distribution rides in the initramfs
            memory_kb=memory_kb,
            boot_cpu_ms=165.0,
            boot_fixed_ms=8.0,
            vifs=1,
            vbds=1 if needs_block else 0,
            idle_cpu_weight=4e-5,
            sched_contention=0.018,
            sched_contention_threshold=230,
            extra_xenstore_entries=6,
            xenbus_watches=8,
            ambient_weight=2.0,
            toolstack_build_ms=185.0,
        )
        return TinyxBuild(image=image,
                          packages=[p.name for p in packages],
                          overlay=overlay, kernel_config=config,
                          trim_report=trim_report)

    def _binary(self, app: str) -> AppBinary:
        try:
            return APP_BINARIES[app]
        except KeyError:
            raise KeyError("no objdump manifest for %r; known apps: %s"
                           % (app, ", ".join(sorted(APP_BINARIES)))) \
                from None


def debian_kernel_size_kb(platform: str = "xen") -> int:
    """Size of the everything-on distro kernel (the Tinyx comparison
    point: Tinyx kernels are about half this)."""
    return KernelConfig.distro(platform).size_kb()


#: Candidates Tinyx users typically hand to the trim loop: the distro fat.
DEFAULT_TRIM_CANDIDATES = tuple(DISTRO_EXTRA)
