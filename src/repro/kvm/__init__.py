"""KVM-side comparison point: ukvm-style unikernel monitors (§9)."""

from .monitor import UkvmCosts, UkvmHost, UkvmInstance

__all__ = ["UkvmCosts", "UkvmHost", "UkvmInstance"]
