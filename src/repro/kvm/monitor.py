"""ukvm-style unikernel monitors on KVM — the §9 generality argument.

"While LightVM is based on Xen, most of its components can be extended to
other virtualization platforms such as KVM.  This includes (1) the
optimized toolstack, where work such as ukvm [50] provides a lean
toolstack for KVM..."

ukvm (Williams & Koller, HotCloud '16) runs each unikernel under its own
specialized *monitor* process: fork/exec the monitor, a handful of KVM
ioctls (VM + vCPU file descriptors, memory regions), a tap device for
networking, load the unikernel ELF, and enter the guest.  No central
daemon, no registry — creation cost is constant by construction, around
10 ms (the boot-time figure the ukvm work reports).

This module models that stack on a Linux host so the benchmarks can put
the KVM path next to LightVM and stock Xen.
"""

from __future__ import annotations

import dataclasses
import typing

from ..guests.images import GuestImage
from ..hypervisor.memory import MemoryAllocator
from ..sim.cpu import CpuPool

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator
    from ..sim.rng import RngStream


@dataclasses.dataclass
class UkvmCosts:
    """Cost constants for the ukvm monitor path (ms unless noted)."""

    #: fork/exec of the monitor binary.
    monitor_spawn_ms: float = 1.1
    #: KVM_CREATE_VM + vCPU setup + irqchip (a few ioctls).
    kvm_setup_ms: float = 0.9
    #: Registering guest memory regions, µs per MiB (mmap + slots).
    memory_us_per_mb: float = 450.0
    #: Creating and plumbing one tap device into the host bridge.
    tap_setup_ms: float = 3.5
    #: Loading the unikernel ELF, µs per KiB (same ~1 ms/MB storage
    #: path as Xen's image load).
    image_load_us_per_kb: float = 1.0
    #: Monitor resident memory per instance (MB) — ukvm is tiny.
    monitor_overhead_mb: float = 1.2
    #: Monitor teardown.
    teardown_ms: float = 1.5


@dataclasses.dataclass
class UkvmInstance:
    """One running unikernel + its monitor."""

    instance_id: int
    image: GuestImage
    started_at: float
    create_ms: float
    boot_ms: float


class UkvmHost:
    """A Linux/KVM host running ukvm monitors."""

    def __init__(self, sim: "Simulator", rng: "RngStream",
                 cores: int = 4, memory_gb: int = 128,
                 costs: typing.Optional[UkvmCosts] = None):
        self.sim = sim
        self.rng = rng
        self.cpus = CpuPool(sim, cores=cores)
        self.memory = MemoryAllocator(memory_gb * 1024 * 1024)
        self.costs = costs or UkvmCosts()
        self.instances: typing.Dict[int, UkvmInstance] = {}
        self._next_id = 1

    @property
    def running(self) -> int:
        return len(self.instances)

    def memory_usage_kb(self) -> int:
        return self.memory.used_kb

    def start(self, image: GuestImage):
        """Generator: spawn a monitor and boot the unikernel.

        Returns the :class:`UkvmInstance`.  Cost is independent of how
        many instances already run — there is no shared control plane to
        congest (the ukvm design point).
        """
        costs = self.costs
        start = self.sim.now
        # The monitor process.
        spawn = costs.monitor_spawn_ms * self.rng.lognormvariate(0.0, 0.1)
        yield self.sim.timeout(spawn)
        # KVM ioctls + guest memory registration.
        yield self.sim.timeout(costs.kvm_setup_ms)
        instance_id = self._next_id
        self._next_id += 1
        total_kb = image.memory_kb + int(costs.monitor_overhead_mb * 1024)
        self.memory.allocate(("ukvm", instance_id), total_kb)
        yield self.sim.timeout(image.memory_kb / 1024.0
                               * costs.memory_us_per_mb / 1000.0)
        # Networking: one tap per vif.
        for _ in range(image.vifs):
            yield self.sim.timeout(costs.tap_setup_ms)
        # Load the unikernel and enter the guest.
        yield self.sim.timeout(image.kernel_size_kb
                               * costs.image_load_us_per_kb / 1000.0)
        create_ms = self.sim.now - start

        boot_start = self.sim.now
        core = self.cpus.place()
        done = core.execute(image.boot_cpu_ms)
        yield done
        if image.boot_fixed_ms:
            yield self.sim.timeout(image.boot_fixed_ms)
        boot_ms = self.sim.now - boot_start

        instance = UkvmInstance(instance_id=instance_id, image=image,
                                started_at=self.sim.now,
                                create_ms=create_ms, boot_ms=boot_ms)
        self.instances[instance_id] = instance
        return instance

    def stop(self, instance: UkvmInstance):
        """Generator: kill the monitor; the kernel reaps everything."""
        yield self.sim.timeout(self.costs.teardown_ms)
        self.memory.free(("ukvm", instance.instance_id))
        self.instances.pop(instance.instance_id, None)
