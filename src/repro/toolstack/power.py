"""Pause/unpause — the third container property the paper requires.

§2: "Along with short instantiation times, containers can be paused and
unpaused quickly.  This can be used to achieve even higher density by
pausing idle instances ... Amazon Lambda, for instance, 'freezes' and
'thaws' containers."

For a VM, pause is a single hypercall (stop scheduling the vCPUs) and is
therefore inherently fast on *any* toolstack; the toolstack only adds its
command overhead.  A paused guest stops exerting idle CPU load but keeps
its memory reservation — pausing raises density on CPU, not on RAM
(unless combined with checkpointing).
"""

from __future__ import annotations

import dataclasses
import typing

from ..hypervisor.domain import Domain
from ..hypervisor.hypervisor import Hypervisor

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


@dataclasses.dataclass
class PowerCosts:
    """Pause/unpause latency constants (ms)."""

    #: The pause/unpause hypercall plus vCPU descheduling.
    hypercall_ms: float = 0.05
    #: xl's command overhead around it (process start, libxl).
    xl_overhead_ms: float = 18.0
    #: chaos's command overhead.
    chaos_overhead_ms: float = 0.4


class PowerManager:
    """pause/unpause on top of a toolstack instance."""

    def __init__(self, toolstack,
                 costs: typing.Optional[PowerCosts] = None):
        self.toolstack = toolstack
        self.sim: "Simulator" = toolstack.sim
        self.hypervisor: Hypervisor = toolstack.hypervisor
        self.costs = costs or PowerCosts()

    def _overhead_ms(self) -> float:
        if getattr(self.toolstack, "name", "") == "xl":
            return self.costs.xl_overhead_ms
        return self.costs.chaos_overhead_ms

    def pause(self, domain: Domain):
        """Generator: freeze the guest.

        The paused guest stops burning CPU (its idle weight and runnable
        slot are released) but keeps its memory reservation.
        """
        yield self.sim.timeout(self._overhead_ms())
        self.hypervisor.domctl_pause(domain)
        # On the XenStore plane a frozen guest also stops its ambient
        # xenbus chatter.
        weight = domain.notes.pop("xenstore_client", None)
        if weight and self.toolstack.xenstore is not None:
            self.toolstack.xenstore.unregister_client(weight)
            domain.notes["paused_xenstore_weight"] = weight
        yield self.sim.timeout(self.costs.hypercall_ms)

    def reboot(self, domain: Domain):
        """Generator: reboot in place — shutdown, reload, boot.

        Unlike destroy+create, the domain (id, memory reservation,
        devices) survives; only the guest kernel restarts.  Returns the
        fresh BootReport.
        """
        from ..guests.boot import boot_guest
        from ..hypervisor.domain import DomainState, ShutdownReason
        image = domain.image
        if image is None:
            raise RuntimeError("domain %d has no image to reboot into"
                               % domain.domid)
        yield self.sim.timeout(self._overhead_ms())
        self.hypervisor.domctl_shutdown(domain, ShutdownReason.REBOOT)
        weight = domain.notes.pop("xenstore_client", None)
        if weight and self.toolstack.xenstore is not None:
            self.toolstack.xenstore.unregister_client(weight)
        if self.toolstack.xenstore is not None:
            # The dying kernel's xenbus watches disappear with it.
            self.toolstack.xenstore.watches.remove_for_domain(
                domain.domid)
        # Reload the kernel image into the existing reservation.
        yield self.sim.timeout(image.kernel_size_kb / 1000.0)
        domain.state = DomainState.CREATED
        domain.shutdown_reason = None  # the guest is coming back up
        self.hypervisor.domctl_unpause(domain)
        report = yield from boot_guest(
            self.sim, self.hypervisor, domain, image,
            xenstore=self.toolstack.xenstore)
        return report

    def unpause(self, domain: Domain):
        """Generator: thaw the guest (no boot — it continues instantly)."""
        yield self.sim.timeout(self._overhead_ms())
        self.hypervisor.domctl_unpause(domain)
        weight = domain.notes.pop("paused_xenstore_weight", None)
        if weight and self.toolstack.xenstore is not None:
            self.toolstack.xenstore.register_client(weight)
            domain.notes["xenstore_client"] = weight
        if domain.image is not None and domain.image.idle_cpu_weight:
            self.hypervisor.scheduler.set_idle_load(
                domain, domain.image.idle_cpu_weight)
        yield self.sim.timeout(self.costs.hypercall_ms)
