"""The split toolstack: the chaos daemon and its pool of VM shells.

§5.2 / Figure 8: "The prepare phase is responsible for functionality
common to all VMs such as having the hypervisor generate an ID and other
management information and allocating CPU resources to the VM.  We offload
this functionality to the chaos daemon, which generates a number of VM
shells and places them in a pool.  The daemon ensures that there is always
a certain (configurable) number of shells available in the system."

A shell is a real (hypervisor-registered) domain in the SHELL state with
its memory reserved and prepared, its device page allocated (noxs mode) or
its XenStore skeleton written (XS mode), and its devices pre-created.  The
execute phase (:meth:`ChaosToolstack.create_vm`) claims a shell, finalizes
it for the concrete config, loads the image and boots.
"""

from __future__ import annotations

import dataclasses
import typing

from ..faults.plan import NULL_INJECTOR, TransientHypercallError
from ..faults.retry import RetryPolicy, retry_call
from ..hypervisor.devicepage import DEV_VIF
from ..hypervisor.domain import Domain, DomainState
from ..hypervisor.hypervisor import DOM0_ID, Hypervisor
from ..noxs.module import NoxsModule
from ..sim.resources import Store
from ..trace.tracer import tracer_of
from ..xenstore.client import XsClient
from ..xenstore.daemon import XenStoreDaemon

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator
    from .config import VMConfig


@dataclasses.dataclass
class ShellPoolCosts:
    """Prepare-phase cost constants (ms unless noted)."""

    #: Hypervisor reservation + compute allocation for one shell.
    hypervisor_fixed_ms: float = 1.0
    #: Memory reservation + preparation, µs per MiB.
    mem_prep_us_per_mb: float = 2200.0
    #: Pause between pool top-up checks when the pool is full.
    poll_interval_ms: float = 50.0


@dataclasses.dataclass
class Shell:
    """One pre-created VM shell waiting in the pool."""

    domain: Domain
    #: Pre-created device entries (noxs mode: DeviceEntry objects ready to
    #: be written into the device page at execute time).
    prepared_devices: typing.List[object] = dataclasses.field(
        default_factory=list)


class ChaosDaemon:
    """Background daemon keeping the shell pool topped up."""

    def __init__(self, sim: "Simulator", hypervisor: Hypervisor,
                 noxs: typing.Optional[NoxsModule] = None,
                 xenstore: typing.Optional[XenStoreDaemon] = None,
                 pool_target: int = 8,
                 shell_memory_kb: int = 4096,
                 shell_vifs: int = 1,
                 costs: typing.Optional[ShellPoolCosts] = None,
                 faults=None, rng=None,
                 retry_policy: typing.Optional[RetryPolicy] = None):
        if (xenstore is None) == (noxs is None):
            raise ValueError("the daemon prepares shells for exactly one "
                             "control plane")
        if pool_target < 1:
            raise ValueError("pool_target must be >= 1")
        self.sim = sim
        self.hypervisor = hypervisor
        self.noxs = noxs
        self.xenstore = xenstore
        #: Dom0 connection handle (None on the noxs control plane).
        self.xs = XsClient(xenstore, DOM0_ID) if xenstore is not None \
            else None
        self.pool_target = pool_target
        self.shell_memory_kb = shell_memory_kb
        self.shell_vifs = shell_vifs
        self.costs = costs or ShellPoolCosts()
        #: Injector for the ``shellpool.shell`` crash point.
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.rng = rng
        self.retry_policy = retry_policy or RetryPolicy()
        self.pool: Store = Store(sim)
        self.shells_prepared = 0
        #: Shells that crashed right after prepare (injected) and were
        #: torn down + replaced.
        self.shells_crashed = 0
        self._replenish_signal = None
        self._running = False

    # ------------------------------------------------------------------
    # Daemon lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the background replenishment process."""
        if self._running:
            return
        self._running = True
        # A perpetual service: mark it daemon so the end-of-run deadlock
        # sanitizer (repro.analysis.sanitize) does not flag it as stalled.
        self.sim.process(self._replenisher()).daemon = True

    def _replenisher(self):
        while self._running:
            if len(self.pool) < self.pool_target:
                shell = yield from self.prepare_shell()
                if shell is not None:  # None = crashed and torn down
                    self.pool.put(shell)
            else:
                self._replenish_signal = self.sim.event()
                yield self.sim.any_of([
                    self._replenish_signal,
                    self.sim.timeout(self.costs.poll_interval_ms)])
                self._replenish_signal = None

    def _kick(self) -> None:
        if self._replenish_signal is not None and \
                not self._replenish_signal.triggered:
            self._replenish_signal.succeed()

    def stop(self) -> None:
        """Stop replenishing (existing shells remain usable)."""
        self._running = False
        self._kick()

    # ------------------------------------------------------------------
    # Prepare phase
    # ------------------------------------------------------------------
    def prepare_shell(self):
        """Generator: run the prepare phase for one shell.

        Transient DOMCTL_createdomain failures are retried.  If the
        freshly-prepared shell crashes (the ``shellpool.shell`` fault
        point), it is torn down completely and ``None`` is returned — the
        replenisher simply prepares another.
        """
        with tracer_of(self.sim).span("shellpool.prepare") as span:
            domain = yield from retry_call(
                self.sim, self.retry_policy, self.rng,
                lambda: self.hypervisor.domctl_create(
                    memory_kb=self.shell_memory_kb, shell=True),
                (TransientHypercallError,))
            span.set(domid=domain.domid)
            yield self.sim.timeout(self.costs.hypervisor_fixed_ms)
            yield self.sim.timeout(self.shell_memory_kb / 1024.0
                                   * self.costs.mem_prep_us_per_mb / 1000.0)
            shell = Shell(domain=domain)
            if self.noxs is not None:
                self.hypervisor.devpage_create(domain)
                for _ in range(self.shell_vifs):
                    entry = yield from self.noxs.ioctl_create_device(
                        domain, DEV_VIF)
                    shell.prepared_devices.append(entry)
            else:
                yield from self._prepare_xenstore_skeleton(domain)
            self.shells_prepared += 1
            rule = self.faults.fires("shellpool.shell")
            if rule is not None:
                self.shells_crashed += 1
                span.set(crashed=True)
                if rule.delay_ms:
                    yield self.sim.timeout(rule.delay_ms)
                yield from self._teardown_shell(shell)
                return None
            return shell

    def _prepare_xenstore_skeleton(self, domain: Domain):
        """Generator: pre-write the per-domain XenStore state, including
        the device handshake, so the execute phase only finalizes."""
        base = "/local/domain/%d" % domain.domid
        # The whole skeleton is one coalesced message on a batching
        # daemon (~2 + 5*vifs writes otherwise — the prepare phase is
        # the chattiest stretch of the split toolstack).
        with self.xs.batch() as batch:
            batch.write(base + "/shell", "1")
            for index in range(self.shell_vifs):
                front_base = "%s/device/vif/%d" % (base, index)
                back_base = "/local/domain/%d/backend/vif/%d/%d" % (
                    DOM0_ID, domain.domid, index)
                batch.write(front_base + "/backend", back_base)
                batch.write(front_base + "/state", "initialising")
                # Back-end pre-allocation (event channel + grant),
                # published where the guest's front-end will look for it.
                port = self.hypervisor.event_channels.alloc_unbound(
                    DOM0_ID, domain.domid)
                frame = 0x900000 + (domain.domid << 8) + index
                ref = self.hypervisor.grants.grant_access(
                    DOM0_ID, domain.domid, frame)
                batch.write(back_base + "/event-channel", str(port))
                batch.write(back_base + "/grant-ref", str(ref))
                batch.write(back_base + "/state", "initialised")
            yield from batch.commit()

    def _teardown_shell(self, shell: Shell):
        """Generator: release everything a prepared shell holds — its
        noxs devices or XenStore skeleton (ports, grants, nodes) and its
        hypervisor reservation."""
        domain = shell.domain
        tracer_of(self.sim).instant("shellpool.teardown",
                                    domid=domain.domid)
        if self.noxs is not None:
            for entry in shell.prepared_devices:
                try:
                    yield from self.noxs.ioctl_destroy_device(domain, entry)
                except Exception:
                    pass
            shell.prepared_devices = []
        else:
            base = "/local/domain/%d" % domain.domid
            tree = self.xenstore.tree
            for index in range(self.shell_vifs):
                back_base = "/local/domain/%d/backend/vif/%d/%d" % (
                    DOM0_ID, domain.domid, index)
                try:
                    port = int(tree.read(back_base + "/event-channel"))
                    self.hypervisor.event_channels.close(DOM0_ID, port)
                except Exception:
                    pass
                try:
                    ref = int(tree.read(back_base + "/grant-ref"))
                    entry = self.hypervisor.grants.entry(DOM0_ID, ref)
                    entry.mapped_by = None
                    self.hypervisor.grants.end_access(DOM0_ID, ref)
                except Exception:
                    pass
                yield from self.xs.rm(back_base)
            from .devices import _rm_backend_parent
            yield from _rm_backend_parent(self.sim, self.xs, "vif",
                                          domain.domid, self.rng)
            yield from self.xs.rm(base)
        try:
            self.hypervisor.domctl_destroy(domain)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Execute-phase interface
    # ------------------------------------------------------------------
    def get_shell(self, config: "VMConfig"):
        """Generator: claim a shell (waits if the pool is momentarily
        empty, e.g. during a boot storm faster than the prepare rate).
        A shell that died while pooled is discarded and another claimed."""
        with tracer_of(self.sim).span(
                "shellpool.claim",
                config=getattr(config, "name", None)) as span:
            while True:
                self._kick()
                shell = yield self.pool.get()
                self._kick()
                domain = shell.domain
                if domain.domid in self.hypervisor.domains and \
                        domain.state is DomainState.SHELL:
                    span.set(domid=domain.domid)
                    return shell
                # Stale shell (e.g. torn down behind our back): skip it.
