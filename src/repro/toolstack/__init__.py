"""Virtualization toolstacks: the standard xl/libxl and LightVM's chaos.

* :class:`XlToolstack` — nine-step creation over the XenStore (Fig 8 left).
* :class:`ChaosToolstack` — lean toolstack over the XenStore or noxs.
* :class:`ChaosDaemon` — the split toolstack's prepare phase + shell pool.
* :class:`Checkpointer` / :func:`migrate` — save/restore and migration.
* :class:`BashHotplug` / :class:`Xendevd` — user-space device plumbing.

All of them survive injected control-plane faults (:mod:`repro.faults`)
via pluggable retry policies and clean rollback of failed operations.
"""

from .chaos import ChaosCosts, ChaosToolstack
from .config import ConfigError, VMConfig, parse_config_text
from .devices import (DeviceSetupError, MAX_TX_RETRIES, TX_RETRY_POLICY,
                      XsDeviceManager, run_transaction)
from .hotplug import (BashHotplug, HotplugCosts, HotplugError, NullBridge,
                      Xendevd)
from .migration import Checkpointer, MigrationCosts, SavedImage, migrate
from .phases import PHASES, CreationRecord, PhaseRecorder
from .power import PowerCosts, PowerManager
from .shellpool import ChaosDaemon, Shell, ShellPoolCosts
from .xl import ToolstackError, XlCosts, XlToolstack

__all__ = [
    "BashHotplug",
    "ChaosCosts",
    "ChaosDaemon",
    "ChaosToolstack",
    "Checkpointer",
    "ConfigError",
    "CreationRecord",
    "DeviceSetupError",
    "HotplugCosts",
    "HotplugError",
    "MAX_TX_RETRIES",
    "MigrationCosts",
    "NullBridge",
    "PHASES",
    "PhaseRecorder",
    "PowerCosts",
    "PowerManager",
    "SavedImage",
    "Shell",
    "ShellPoolCosts",
    "TX_RETRY_POLICY",
    "ToolstackError",
    "VMConfig",
    "XlCosts",
    "XlToolstack",
    "XsDeviceManager",
    "Xendevd",
    "migrate",
    "parse_config_text",
    "run_transaction",
]
