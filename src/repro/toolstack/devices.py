"""Virtual device creation — the XenStore path (Figure 7a).

The three-step dance the paper describes:

1. the toolstack writes an entry into the back-end's XenStore directory,
   "essentially announcing the existence of a new VM in need of a network
   device";
2. the back-end — which had a watch on that directory — assigns an event
   channel and grant references and writes them back to the XenStore;
3. the guest, when it boots, reads that information from the XenStore
   (that part lives in :func:`repro.guests.boot.boot_guest`).

The toolstack's entries are written inside a transaction (retried on
conflict with exponential backoff + seeded jitter, so competing clients
de-synchronize); the back-end's response runs as its own simulation
process, so its writes genuinely contend with whatever the toolstack does
next.  Because the announcement watch can be dropped under fault
injection (``xenstore.watch``), the toolstack waits on the response with
a deadline and re-announces; because the back-end's allocation can fail
(``hypervisor.grant_map``), the respond process retries and — if the
request was abandoned meanwhile — rolls its allocations back.
"""

from __future__ import annotations

import typing
import warnings

from ..faults.plan import GrantMapFailure
from ..faults.retry import RetryExhausted, RetryPolicy, ROLLBACK_POLICY
from ..hypervisor.domain import Domain
from ..hypervisor.hypervisor import DOM0_ID, Hypervisor
from ..trace.tracer import tracer_of
from ..xenstore.client import (MAX_TX_RETRIES, TX_RETRY_POLICY,  # noqa: F401
                               XsClient)
from ..xenstore.daemon import XenStoreDaemon
from ..xenstore.permissions import NodePerms, PERM_BOTH, PERM_READ
from ..xenstore.transaction import TransactionConflict

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


class DeviceSetupError(RuntimeError):
    """Device creation failed permanently (retries exhausted)."""


def run_transaction(sim, xenstore, body, policy: RetryPolicy = TX_RETRY_POLICY,
                    rng=None, domid: int = DOM0_ID):
    """Deprecated: use :meth:`repro.xenstore.client.XsClient.transaction`.

    Generator: run ``body(tx)`` (a generator taking a **raw**
    :class:`~repro.xenstore.transaction.Transaction` — the pre-redesign
    body signature) inside a transaction, retrying conflicts with
    exponential backoff + jitter.  Returns the number of retries;
    raises :class:`RetryExhausted` past the policy's budget.
    """
    warnings.warn(
        "run_transaction is deprecated; use XsClient.transaction",
        DeprecationWarning, stacklevel=2)
    retries = 0
    started = sim.now
    scale = xenstore.costs.conflict_backoff_ms / 1.0
    with tracer_of(sim).span("xenstore.txn", domid=domid) as txn_span:
        while True:
            tx = yield from xenstore.transaction_start(domid)
            try:
                yield from body(tx)
                yield from xenstore.transaction_commit(tx)
                if retries:
                    txn_span.set(retries=retries)
                return retries
            except TransactionConflict as exc:
                retries += 1
                if policy.give_up(retries, started, sim.now):
                    txn_span.set(retries=retries)
                    raise RetryExhausted(
                        "transaction retries exhausted (%d)"
                        % retries) from exc
                yield sim.timeout(scale * policy.backoff_ms(retries, rng))


class XsDeviceManager:
    """Creates and destroys split-driver devices through the XenStore."""

    def __init__(self, sim: "Simulator", hypervisor: Hypervisor,
                 xenstore: XenStoreDaemon, hotplug,
                 frontend_entries: int = 4, backend_entries: int = 5,
                 retry_policy: typing.Optional[RetryPolicy] = None,
                 rng=None,
                 response_timeout_ms: float = 250.0,
                 response_retries: int = 8):
        self.sim = sim
        self.hypervisor = hypervisor
        self.xenstore = xenstore
        #: Dom0 connection handle — all toolstack-side store traffic.
        self.xs = XsClient(xenstore, DOM0_ID)
        self.hotplug = hotplug
        #: How many nodes the toolstack writes per device on each side;
        #: xl writes more than chaos (part of chaos's §5 streamlining).
        self.frontend_entries = frontend_entries
        self.backend_entries = backend_entries
        #: Conflict-retry schedule (exponential backoff + jitter).
        self.retry_policy = retry_policy or TX_RETRY_POLICY
        #: Jitter stream for retry backoff (None = no jitter).
        self.rng = rng
        #: How long to wait for the back-end's response before assuming
        #: the announcement watch was dropped and re-announcing.
        self.response_timeout_ms = response_timeout_ms
        self.response_retries = response_retries
        self.retries_total = 0
        self.respond_failures = 0
        self._backend_watch_installed = False
        #: (domid, kind, index) -> event fired when back-end has responded.
        self._pending: typing.Dict[tuple, object] = {}
        #: Keys with a respond process currently scheduled (dedupe).
        self._responding: typing.Set[tuple] = set()

    # ------------------------------------------------------------------
    # Back-end side
    # ------------------------------------------------------------------
    def install_backend_watch(self):
        """Generator: netback/blkback place their directory watch (once)."""
        if self._backend_watch_installed:
            return
        self._backend_watch_installed = True
        yield from self.xs.watch(
            "/local/domain/%d/backend" % DOM0_ID, "backend",
            self._on_backend_event)

    def _on_backend_event(self, path: str, _token: str) -> None:
        # Fires for every write under the backend tree; react only to the
        # announcement node ("...///<index>/frontend") that step 1 writes.
        parts = path.strip("/").split("/")
        if len(parts) != 8 or parts[-1] != "frontend":
            return
        kind, domid_text, index_text = parts[4], parts[5], parts[6]
        key = (int(domid_text), kind, int(index_text))
        if key in self._pending and not self._pending[key].triggered \
                and key not in self._responding:
            self._responding.add(key)
            self.sim.process(self._backend_respond(key))

    def _backend_respond(self, key: tuple):
        """Process: step 2 — the back-end allocates and publishes.

        Hardened against faults: grant-map failures are retried with
        backoff; if the toolstack abandons the request mid-flight (the
        key left ``_pending``) the allocations are rolled back; any
        terminal error is swallowed (counted in ``respond_failures``) —
        the toolstack side times out and re-announces or gives up.
        """
        domid, kind, index = key
        port = None
        ref = None
        try:
            port = self.hypervisor.event_channels.alloc_unbound(DOM0_ID,
                                                                domid)
            retry = 0
            frame = 0x800000 + (domid << 8) + index
            while True:
                try:
                    ref = self.hypervisor.grants.grant_access(DOM0_ID, domid,
                                                              frame)
                    break
                except GrantMapFailure:
                    retry += 1
                    if self.retry_policy.give_up(retry, self.sim.now,
                                                 self.sim.now):
                        raise
                    yield self.sim.timeout(
                        self.retry_policy.backoff_ms(retry, self.rng))
            base = "/local/domain/%d/backend/%s/%d/%d" % (DOM0_ID, kind,
                                                          domid, index)
            for leaf, value in (("/event-channel", str(port)),
                                ("/grant-ref", str(ref)),
                                ("/state", "initialised")):
                if key not in self._pending:
                    # The toolstack gave up and tore the entries down;
                    # publishing now would recreate removed nodes.
                    self._rollback_respond(port, ref)
                    return
                # Sequential on purpose (not a batch): the abandonment
                # check between writes is what lets a mid-flight teardown
                # stop the publication.
                yield from self.xs.write(base + leaf, value)
            event = self._pending.get(key)
            if event is not None and not event.triggered:
                event.succeed((port, ref))
            elif event is None:
                self._rollback_respond(port, ref)
        except Exception:
            # A respond process must never crash the simulation: release
            # what it allocated and let the requester's deadline handle it.
            self.respond_failures += 1
            self._rollback_respond(port, ref)
        finally:
            self._responding.discard(key)

    def _rollback_respond(self, port, ref) -> None:
        if ref is not None:
            try:
                entry = self.hypervisor.grants.entry(DOM0_ID, ref)
                entry.mapped_by = None
                self.hypervisor.grants.end_access(DOM0_ID, ref)
            except Exception:
                pass
        if port is not None:
            try:
                self.hypervisor.event_channels.close(DOM0_ID, port)
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Toolstack side
    # ------------------------------------------------------------------
    def create_device(self, domain: Domain, kind: str, index: int,
                      params: typing.Optional[dict] = None):
        """Generator: steps 1-2 plus hotplug; returns (port, grant_ref)."""
        with tracer_of(self.sim).span("device.create", kind=kind,
                                      domid=domain.domid, index=index):
            result = yield from self._create_device(domain, kind, index,
                                                    params)
        return result

    def _create_device(self, domain: Domain, kind: str, index: int,
                       params: typing.Optional[dict] = None):
        yield from self.install_backend_watch()
        params = params or {}
        key = (domain.domid, kind, index)
        response = self.sim.event()
        self._pending[key] = response

        front_base = "/local/domain/%d/device/%s/%d" % (domain.domid, kind,
                                                        index)
        back_base = "/local/domain/%d/backend/%s/%d/%d" % (
            DOM0_ID, kind, domain.domid, index)

        def announce(txn):
            # Step 1: announce front+back entries in one transaction.
            yield from txn.write(front_base + "/backend", back_base)
            yield from txn.write(front_base + "/backend-id", str(DOM0_ID))
            yield from txn.write(front_base + "/state", "initialising")
            for extra in range(max(0, self.frontend_entries - 3)):
                yield from txn.write(front_base + "/feature-%d" % extra, "1")
            yield from txn.write(back_base + "/frontend", front_base)
            yield from txn.write(back_base + "/frontend-id",
                                 str(domain.domid))
            yield from txn.write(back_base + "/online", "1")
            if kind == "vif" and "mac" in params:
                yield from txn.write(back_base + "/mac", params["mac"])
            for extra in range(max(0, self.backend_entries - 4)):
                yield from txn.write(back_base + "/param-%d" % extra, "x")

        try:
            self.retries_total += yield from self.xs.transaction(
                announce, policy=self.retry_policy, rng=self.rng)
        except RetryExhausted as exc:
            yield from self._cleanup_failed_create(domain, kind, index)
            raise DeviceSetupError(
                "device %s/%d for domain %d: transaction retries "
                "exhausted" % (kind, index, domain.domid)) from exc

        # The front-end domain needs read access to its back-end
        # directory (to fetch the connection details at boot) and full
        # access to its own front-end directory (to drive its state).
        back_perms = NodePerms.owned_by(DOM0_ID).grant(domain.domid,
                                                       PERM_READ)
        yield from self.xs.set_perms(back_base, back_perms)
        front_perms = NodePerms.owned_by(DOM0_ID).grant(domain.domid,
                                                        PERM_BOTH)
        yield from self.xs.set_perms(front_base, front_perms)

        # The commit's watch firing triggered _backend_respond; if that
        # delivery was dropped (or the respond process died), wait with a
        # deadline and re-announce by rewriting the "frontend" node the
        # back-end keys on.
        attempt = 0
        while not response.triggered:
            attempt += 1
            if attempt > self.response_retries:
                yield from self._cleanup_failed_create(domain, kind, index)
                raise DeviceSetupError(
                    "device %s/%d for domain %d: back-end never responded"
                    % (kind, index, domain.domid))
            yield self.sim.any_of(
                [response, self.sim.timeout(self.response_timeout_ms)])
            if response.triggered:
                break
            yield from self.xs.write(back_base + "/frontend", front_base)
        result = response.value
        self._pending.pop(key, None)

        # User-space plumbing (bridge attach) via the hotplug mechanism.
        if kind == "vif":
            devname = "vif%d.%d" % (domain.domid, index)
            yield from self.hotplug.attach(domain.domid, devname)
        return result

    def _cleanup_failed_create(self, domain: Domain, kind: str, index: int):
        """Generator: undo a half-finished :meth:`create_device`.

        Pops the pending request (so a late respond rolls itself back),
        releases anything the back-end already published, and patiently
        removes both subtrees — cleanup must outlast a fault window, so it
        uses the rollback policy's larger budget.
        """
        key = (domain.domid, kind, index)
        event = self._pending.pop(key, None)
        if event is not None and event.triggered:
            port, ref = event.value
            self._rollback_respond(port, ref)
        front_base = "/local/domain/%d/device/%s/%d" % (domain.domid, kind,
                                                        index)
        back_base = "/local/domain/%d/backend/%s/%d/%d" % (
            DOM0_ID, kind, domain.domid, index)
        for path in (front_base, back_base):
            yield from _patient_rm(self.sim, self.xs, path, self.rng)
        yield from _rm_backend_parent(self.sim, self.xs, kind,
                                      domain.domid, self.rng)

    def destroy_device(self, domain: Domain, kind: str, index: int):
        """Generator: release back-end resources, remove front/back
        entries, and detach the user-space plumbing."""
        with tracer_of(self.sim).span("device.destroy", kind=kind,
                                      domid=domain.domid, index=index):
            yield from self._destroy_device(domain, kind, index)

    def _destroy_device(self, domain: Domain, kind: str, index: int):
        front_base = "/local/domain/%d/device/%s/%d" % (domain.domid, kind,
                                                        index)
        back_base = "/local/domain/%d/backend/%s/%d/%d" % (
            DOM0_ID, kind, domain.domid, index)
        # Drop any in-flight request so a late respond backs out instead
        # of recreating the nodes we are about to remove.
        self._pending.pop((domain.domid, kind, index), None)
        # Back-end teardown: close its event channel and revoke the grant
        # it published (force-unmapping if the guest is still attached).
        tree = self.xenstore.tree
        try:
            port = int(tree.read(back_base + "/event-channel"))
            self.hypervisor.event_channels.close(DOM0_ID, port)
        except Exception:
            pass  # never connected, or already closed by the guest side
        try:
            ref = int(tree.read(back_base + "/grant-ref"))
            entry = self.hypervisor.grants.entry(DOM0_ID, ref)
            entry.mapped_by = None
            self.hypervisor.grants.end_access(DOM0_ID, ref)
        except Exception:
            pass
        with self.xs.batch() as batch:
            batch.rm(front_base)
            batch.rm(back_base)
            yield from batch.commit()
        yield from _rm_backend_parent(self.sim, self.xs, kind,
                                      domain.domid, self.rng)
        if kind == "vif":
            devname = "vif%d.%d" % (domain.domid, index)
            yield from self.hotplug.detach(domain.domid, devname)


def _rm_backend_parent(sim, xs: XsClient, kind: str, domid: int, rng=None):
    """Generator: drop ``/local/domain/0/backend/<kind>/<domid>`` once its
    last device directory is gone — empty per-domain backend dirs outlive
    the domain otherwise (the invariant checker flags them as leaks)."""
    parent = "/local/domain/%d/backend/%s/%d" % (DOM0_ID, kind, domid)
    tree = xs.tree
    if tree.exists(parent) and not tree.directory(parent):
        yield from _patient_rm(sim, xs, parent, rng)


def _patient_rm(sim, xs: XsClient, path: str, rng=None):
    """Generator: remove ``path`` with the patient rollback policy —
    cleanup that gives up under a fault storm would leak state."""
    from ..faults.plan import DaemonRestarted, MessageTimeout, Overloaded
    from ..faults.retry import retry_generator

    def attempt():
        yield from xs.rm(path)

    # Daemon restarts and shed requests are retried like lost acks:
    # cleanup must survive the very crashes it is cleaning up after.
    retryable = (MessageTimeout, DaemonRestarted, Overloaded)
    try:
        yield from retry_generator(sim, ROLLBACK_POLICY, rng, attempt,
                                   retryable)
    except retryable:
        pass  # the invariant checker will report the leak loudly
