"""Virtual device creation — the XenStore path (Figure 7a).

The three-step dance the paper describes:

1. the toolstack writes an entry into the back-end's XenStore directory,
   "essentially announcing the existence of a new VM in need of a network
   device";
2. the back-end — which had a watch on that directory — assigns an event
   channel and grant references and writes them back to the XenStore;
3. the guest, when it boots, reads that information from the XenStore
   (that part lives in :func:`repro.guests.boot.boot_guest`).

The toolstack's entries are written inside a transaction (retried on
conflict, with back-off); the back-end's response runs as its own
simulation process, so its writes genuinely contend with whatever the
toolstack does next.
"""

from __future__ import annotations

import typing

from ..hypervisor.domain import Domain
from ..hypervisor.hypervisor import DOM0_ID, Hypervisor
from ..xenstore.daemon import XenStoreDaemon
from ..xenstore.permissions import NodePerms, PERM_BOTH, PERM_READ
from ..xenstore.transaction import TransactionConflict

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


class DeviceSetupError(RuntimeError):
    """Device creation failed permanently (retries exhausted)."""


#: Transaction retry budget; xenstored clients retry EAGAIN indefinitely,
#: but a bound keeps broken models loud instead of livelocked.  With the
#: conflict-probability ceiling of 0.75 the chance of a legitimate run
#: exhausting 50 retries is ~1e-6.
MAX_TX_RETRIES = 50


class XsDeviceManager:
    """Creates and destroys split-driver devices through the XenStore."""

    def __init__(self, sim: "Simulator", hypervisor: Hypervisor,
                 xenstore: XenStoreDaemon, hotplug,
                 frontend_entries: int = 4, backend_entries: int = 5):
        self.sim = sim
        self.hypervisor = hypervisor
        self.xenstore = xenstore
        self.hotplug = hotplug
        #: How many nodes the toolstack writes per device on each side;
        #: xl writes more than chaos (part of chaos's §5 streamlining).
        self.frontend_entries = frontend_entries
        self.backend_entries = backend_entries
        self.retries_total = 0
        self._backend_watch_installed = False
        #: (domid, kind, index) -> event fired when back-end has responded.
        self._pending: typing.Dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Back-end side
    # ------------------------------------------------------------------
    def install_backend_watch(self):
        """Generator: netback/blkback place their directory watch (once)."""
        if self._backend_watch_installed:
            return
        self._backend_watch_installed = True
        yield from self.xenstore.op_watch(
            DOM0_ID, "/local/domain/%d/backend" % DOM0_ID, "backend",
            self._on_backend_event)

    def _on_backend_event(self, path: str, _token: str) -> None:
        # Fires for every write under the backend tree; react only to the
        # announcement node ("...///<index>/frontend") that step 1 writes.
        parts = path.strip("/").split("/")
        if len(parts) != 8 or parts[-1] != "frontend":
            return
        kind, domid_text, index_text = parts[4], parts[5], parts[6]
        key = (int(domid_text), kind, int(index_text))
        if key in self._pending and not self._pending[key].triggered:
            self.sim.process(self._backend_respond(key))

    def _backend_respond(self, key: tuple):
        """Process: step 2 — the back-end allocates and publishes."""
        domid, kind, index = key
        port = self.hypervisor.event_channels.alloc_unbound(DOM0_ID, domid)
        frame = 0x800000 + (domid << 8) + index
        ref = self.hypervisor.grants.grant_access(DOM0_ID, domid, frame)
        base = "/local/domain/%d/backend/%s/%d/%d" % (DOM0_ID, kind, domid,
                                                      index)
        yield from self.xenstore.op_write(DOM0_ID, base + "/event-channel",
                                          str(port))
        yield from self.xenstore.op_write(DOM0_ID, base + "/grant-ref",
                                          str(ref))
        yield from self.xenstore.op_write(DOM0_ID, base + "/state",
                                          "initialised")
        event = self._pending.get(key)
        if event is not None and not event.triggered:
            event.succeed((port, ref))

    # ------------------------------------------------------------------
    # Toolstack side
    # ------------------------------------------------------------------
    def create_device(self, domain: Domain, kind: str, index: int,
                      params: typing.Optional[dict] = None):
        """Generator: steps 1-2 plus hotplug; returns (port, grant_ref)."""
        yield from self.install_backend_watch()
        params = params or {}
        key = (domain.domid, kind, index)
        response = self.sim.event()
        self._pending[key] = response

        front_base = "/local/domain/%d/device/%s/%d" % (domain.domid, kind,
                                                        index)
        back_base = "/local/domain/%d/backend/%s/%d/%d" % (
            DOM0_ID, kind, domain.domid, index)

        # Step 1: announce front+back entries in one transaction.
        retries = 0
        while True:
            tx = yield from self.xenstore.transaction_start(DOM0_ID)
            try:
                yield from self.xenstore.tx_write(
                    tx, front_base + "/backend", back_base)
                yield from self.xenstore.tx_write(
                    tx, front_base + "/backend-id", str(DOM0_ID))
                yield from self.xenstore.tx_write(
                    tx, front_base + "/state", "initialising")
                for extra in range(max(0, self.frontend_entries - 3)):
                    yield from self.xenstore.tx_write(
                        tx, front_base + "/feature-%d" % extra, "1")
                yield from self.xenstore.tx_write(
                    tx, back_base + "/frontend", front_base)
                yield from self.xenstore.tx_write(
                    tx, back_base + "/frontend-id", str(domain.domid))
                yield from self.xenstore.tx_write(
                    tx, back_base + "/online", "1")
                if kind == "vif" and "mac" in params:
                    yield from self.xenstore.tx_write(
                        tx, back_base + "/mac", params["mac"])
                for extra in range(max(0, self.backend_entries - 4)):
                    yield from self.xenstore.tx_write(
                        tx, back_base + "/param-%d" % extra, "x")
                yield from self.xenstore.transaction_commit(tx)
                break
            except TransactionConflict:
                retries += 1
                self.retries_total += 1
                if retries > MAX_TX_RETRIES:
                    raise DeviceSetupError(
                        "device %s/%d for domain %d: transaction retries "
                        "exhausted" % (kind, index, domain.domid))
                yield self.sim.timeout(
                    self.xenstore.costs.conflict_backoff_ms * retries)

        # The front-end domain needs read access to its back-end
        # directory (to fetch the connection details at boot) and full
        # access to its own front-end directory (to drive its state).
        back_perms = NodePerms.owned_by(DOM0_ID).grant(domain.domid,
                                                       PERM_READ)
        yield from self.xenstore.op_set_perms(DOM0_ID, back_base,
                                              back_perms)
        front_perms = NodePerms.owned_by(DOM0_ID).grant(domain.domid,
                                                        PERM_BOTH)
        yield from self.xenstore.op_set_perms(DOM0_ID, front_base,
                                              front_perms)

        # The commit's watch firing triggered _backend_respond; note that
        # the "frontend" announcement node is what the back-end keys on.
        result = yield response
        self._pending.pop(key, None)

        # User-space plumbing (bridge attach) via the hotplug mechanism.
        if kind == "vif":
            devname = "vif%d.%d" % (domain.domid, index)
            yield from self.hotplug.attach(domain.domid, devname)
        return result

    def destroy_device(self, domain: Domain, kind: str, index: int):
        """Generator: release back-end resources, remove front/back
        entries, and detach the user-space plumbing."""
        front_base = "/local/domain/%d/device/%s/%d" % (domain.domid, kind,
                                                        index)
        back_base = "/local/domain/%d/backend/%s/%d/%d" % (
            DOM0_ID, kind, domain.domid, index)
        # Back-end teardown: close its event channel and revoke the grant
        # it published (force-unmapping if the guest is still attached).
        tree = self.xenstore.tree
        try:
            port = int(tree.read(back_base + "/event-channel"))
            self.hypervisor.event_channels.close(DOM0_ID, port)
        except Exception:
            pass  # never connected, or already closed by the guest side
        try:
            ref = int(tree.read(back_base + "/grant-ref"))
            entry = self.hypervisor.grants.entry(DOM0_ID, ref)
            entry.mapped_by = None
            self.hypervisor.grants.end_access(DOM0_ID, ref)
        except Exception:
            pass
        yield from self.xenstore.op_rm(DOM0_ID, front_base)
        yield from self.xenstore.op_rm(DOM0_ID, back_base)
        if kind == "vif":
            devname = "vif%d.%d" % (domain.domid, index)
            yield from self.hotplug.detach(domain.domid, devname)
