"""The standard Xen toolstack: ``xl`` / ``libxl`` / ``libxc``.

Implements the nine-step creation process of Figure 8 on the XenStore
control plane, with per-phase accounting matching Figure 5's categories.
This is the baseline LightVM is measured against: creation cost grows with
the number of running guests because every XenStore interaction gets more
expensive (watch scans, ambient load, name checks, transaction retries).
"""

from __future__ import annotations

import dataclasses
import typing

from ..faults.plan import ToolstackCrashed, TransientHypercallError
from ..faults.retry import RetryExhausted, RetryPolicy, retry_call
from ..guests.boot import boot_guest
from ..recovery.intents import crash_check
from ..hypervisor.domain import Domain, DomainState, ShutdownReason
from ..hypervisor.hypervisor import DOM0_ID, Hypervisor
from ..trace.tracer import tracer_of
from ..xenstore.client import XsClient
from ..xenstore.daemon import XenStoreDaemon
from .config import VMConfig
from .devices import XsDeviceManager, _patient_rm
from .hotplug import BashHotplug
from .phases import CreationRecord, PhaseRecorder

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


@dataclasses.dataclass
class XlCosts:
    """Cost constants for xl/libxl (ms unless noted)."""

    #: Config file parsing: fixed + per line.
    parse_fixed_ms: float = 0.6
    parse_per_line_ms: float = 0.08
    #: xl process start + libxl context init + internal state keeping.
    toolstack_fixed_ms: float = 21.0
    #: libxl bookkeeping that grows mildly with existing domains (µs).
    toolstack_per_domain_us: float = 2.0
    #: Hypervisor interaction: domain creation, vCPU setup.
    hypervisor_fixed_ms: float = 5.5
    #: Preparing (scrubbing/mapping) guest memory, µs per MiB.
    mem_prep_us_per_mb: float = 2200.0
    #: Parsing + loading the kernel image into guest memory, µs per KiB
    #: (≈1 ms/MB — the slope of Figure 2).
    image_load_us_per_kb: float = 1.0
    image_load_fixed_ms: float = 0.4
    #: Base XenStore entries every xl guest gets (console, memory target,
    #: vm-path, features...).
    base_entries: int = 55
    #: Entries under /vm/<uuid> and the /libxl mirror tree.
    vm_entries: int = 20
    #: Entries removed/written during teardown.
    teardown_entries: int = 6


class ToolstackError(RuntimeError):
    """A toolstack operation failed."""


class XlToolstack:
    """The xl command + libxl library against a XenStore control plane."""

    name = "xl"

    def __init__(self, sim: "Simulator", hypervisor: Hypervisor,
                 xenstore: XenStoreDaemon,
                 hotplug=None,
                 costs: typing.Optional[XlCosts] = None,
                 rng=None,
                 retry_policy: typing.Optional[RetryPolicy] = None):
        self.sim = sim
        self.hypervisor = hypervisor
        self.xenstore = xenstore
        #: Dom0 connection handle — all toolstack-side store traffic.
        self.xs = XsClient(xenstore, DOM0_ID)
        self.costs = costs or XlCosts()
        self.hotplug = hotplug or BashHotplug(sim)
        #: Jitter stream + schedule for control-plane retries.
        self.rng = rng
        self.retry_policy = retry_policy or RetryPolicy()
        self.devices = XsDeviceManager(sim, hypervisor, xenstore,
                                       self.hotplug,
                                       frontend_entries=5,
                                       backend_entries=6,
                                       rng=rng)
        #: CreationRecords in creation order.
        self.created: typing.List[CreationRecord] = []
        #: Creations that failed and were rolled back.
        self.rollbacks = 0
        #: Intent log + crash injector (attached by the recovery layer;
        #: None = no toolstack crash model, ``toolstack.*`` fault points
        #: never consulted).
        self.intents = None
        self._crash_faults = None

    def attach_intents(self, intents, faults=None) -> None:
        """Attach per-phase intent records and the injector whose
        ``toolstack.create`` / ``toolstack.destroy`` crash points they
        consult (see :mod:`repro.recovery.intents`)."""
        self.intents = intents
        self._crash_faults = faults

    # ------------------------------------------------------------------
    # VM creation (Figure 8, standard toolstack column)
    # ------------------------------------------------------------------
    def create_vm(self, config: VMConfig, boot: bool = True):
        """Generator: create (and optionally boot) a VM.

        Returns a :class:`CreationRecord`; ``record.boot_ms`` is filled in
        when ``boot=True``.
        """
        recorder = PhaseRecorder(self.sim)
        image = config.image
        start = self.sim.now
        tracer = tracer_of(self.sim)
        intent = (self.intents.open("create", toolstack=self, config=config)
                  if self.intents is not None else None)

        with tracer.span("xl.create_vm", config=config.name) as create_span:
            # 6. CONFIGURATION PARSING (order per Figure 5's
            # instrumentation: xl parses before anything else).
            recorder.start("config")
            lines = max(1, config.text.count("\n"))
            yield self.sim.timeout(self.costs.parse_fixed_ms
                                   + lines * self.costs.parse_per_line_ms)

            # Internal toolstack bookkeeping.
            recorder.start("toolstack")
            domain_count = self.hypervisor.domain_count()
            yield self.sim.timeout(
                self.costs.toolstack_fixed_ms
                + domain_count * self.costs.toolstack_per_domain_us
                / 1000.0)

            # 1-4. HYPERVISOR RESERVATION / COMPUTE / MEMORY.  Transient
            # DOMCTL_createdomain failures are retried with backoff.
            recorder.start("hypervisor")
            domain = yield from retry_call(
                self.sim, self.retry_policy, self.rng,
                lambda: self.hypervisor.domctl_create(
                    name=config.name, memory_kb=config.memory_kb,
                    vcpus=config.vcpus),
                (TransientHypercallError,))
            create_span.set(domid=domain.domid)
            yield self.sim.timeout(self.costs.hypervisor_fixed_ms)
            yield self.sim.timeout(config.memory_kb / 1024.0
                                   * self.costs.mem_prep_us_per_mb / 1000.0)
            if intent is not None:
                intent.domain = domain
            crash_check(self._crash_faults, intent, "hypervisor")

            try:
                # XenStore registration: name check + base entries +
                # /vm tree.
                recorder.start("xenstore")
                retries = yield from self._write_domain_entries(domain,
                                                                config)
                crash_check(self._crash_faults, intent, "xenstore")

                # 5+7. DEVICE PRE-CREATION / INITIALIZATION.
                recorder.start("devices")
                for index, vif in enumerate(config.vifs):
                    yield from self.devices.create_device(domain, "vif",
                                                          index, params=vif)
                for index, _vbd in enumerate(config.vbds):
                    yield from self.devices.create_device(domain, "vbd",
                                                          index)
                crash_check(self._crash_faults, intent, "devices")

                # 8. IMAGE BUILD: parse the kernel image, load it into
                # memory.
                recorder.start("load")
                yield self.sim.timeout(
                    self.costs.image_load_fixed_ms
                    + image.toolstack_build_ms
                    + image.kernel_size_kb * self.costs.image_load_us_per_kb
                    / 1000.0)
                domain.image = image
                crash_check(self._crash_faults, intent, "load")
                recorder.stop()
            except ToolstackCrashed:
                # The toolstack process is gone: no inline rollback runs.
                # The open intent hands the half-built domain to the
                # orphan reaper.
                raise
            except Exception:
                # A failed creation must not leak the half-built domain:
                # tear down whatever was already registered, then re-raise.
                yield from self._rollback_create(domain, config)
                if intent is not None:
                    intent.close()  # rolled back inline: nothing to reap
                raise

            record = CreationRecord(
                domain=domain, config_name=config.name,
                phases=dict(recorder.totals),
                create_ms=self.sim.now - start,
                xenstore_retries=retries + self.devices.retries_total)
            self.created.append(record)
            if intent is not None:
                intent.close()

        # 9. VIRTUAL MACHINE BOOT.
        if boot:
            boot_start = self.sim.now
            with tracer.span("xl.boot", config=config.name,
                             domid=domain.domid):
                self.hypervisor.domctl_unpause(domain)
                report = yield from boot_guest(self.sim, self.hypervisor,
                                               domain, image,
                                               xenstore=self.xenstore)
            record.boot_ms = self.sim.now - boot_start
            domain.notes["boot_report"] = report
        return record

    def _write_domain_entries(self, domain: Domain, config: VMConfig):
        """Generator: the domain's XenStore registration (with retries)."""
        yield from self.xs.check_unique_name(config.name)
        entry_count = (self.costs.base_entries + self.costs.vm_entries
                       + config.image.extra_xenstore_entries)
        base = "/local/domain/%d" % domain.domid
        vm_base = "/vm/%d" % domain.domid

        def register(txn):
            yield from txn.write(base + "/name", config.name)
            yield from txn.write(base + "/memory/target",
                                 str(config.memory_kb))
            yield from txn.write(base + "/vm", vm_base)
            yield from txn.write(vm_base + "/name", config.name)
            for index in range(max(0, entry_count - 4)):
                yield from txn.write(base + "/data/%d" % index, "x")

        try:
            return (yield from self.xs.transaction(register, rng=self.rng))
        except RetryExhausted as exc:
            raise ToolstackError(
                "domain registration for %r: retries exhausted"
                % config.name) from exc

    def _rollback_create(self, domain: Domain, config: VMConfig):
        """Generator: best-effort teardown of a failed creation.

        Every step is independent and tolerant of not-yet-created state,
        so however far creation got, nothing it allocated survives: device
        entries (plus their ports/grants/bridge ports), the domain's
        XenStore subtrees, its watches and its hypervisor resources.
        """
        self.rollbacks += 1
        tracer_of(self.sim).instant("xl.rollback", config=config.name,
                                    domid=domain.domid)
        for index in range(len(config.vifs)):
            try:
                yield from self.devices.destroy_device(domain, "vif", index)
            except Exception:
                pass
        for index in range(len(config.vbds)):
            try:
                yield from self.devices.destroy_device(domain, "vbd", index)
            except Exception:
                pass
        yield from _patient_rm(self.sim, self.xs,
                               "/local/domain/%d" % domain.domid, self.rng)
        yield from _patient_rm(self.sim, self.xs,
                               "/vm/%d" % domain.domid, self.rng)
        self.xenstore.watches.remove_for_domain(domain.domid)
        weight = domain.notes.pop("xenstore_client", None)
        if weight:
            self.xenstore.unregister_client(weight)
        try:
            self.hypervisor.domctl_destroy(domain)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Destruction
    # ------------------------------------------------------------------
    def destroy_vm(self, domain: Domain):
        """Generator: tear down devices, XenStore state and the domain."""
        intent = (self.intents.open("destroy", toolstack=self,
                                    domain=domain)
                  if self.intents is not None else None)
        with tracer_of(self.sim).span("xl.destroy_vm",
                                      domid=domain.domid):
            if domain.state == DomainState.RUNNING:
                self.hypervisor.domctl_pause(domain)
            crash_check(self._crash_faults, intent, "paused")
            image = domain.image
            if image is not None:
                for index in range(image.vifs):
                    yield from self.devices.destroy_device(domain, "vif",
                                                           index)
                for index in range(image.vbds):
                    yield from self.devices.destroy_device(domain, "vbd",
                                                           index)
            crash_check(self._crash_faults, intent, "devices")
            with self.xs.batch() as batch:
                batch.rm("/local/domain/%d" % domain.domid)
                batch.rm("/vm/%d" % domain.domid)
                yield from batch.commit()
            crash_check(self._crash_faults, intent, "xenstore")
            self.xenstore.watches.remove_for_domain(domain.domid)
            weight = domain.notes.pop("xenstore_client", None)
            if weight:
                self.xenstore.unregister_client(weight)
            self.hypervisor.domctl_destroy(domain)
            if intent is not None:
                intent.close()

    # ------------------------------------------------------------------
    # Shutdown helper used by save/migrate
    # ------------------------------------------------------------------
    def suspend_guest(self, domain: Domain):
        """Generator: ask the guest to suspend via the XenStore control
        node, then wait for it to acknowledge (the pre-noxs way)."""
        with tracer_of(self.sim).span("xl.suspend", domid=domain.domid):
            control = "/local/domain/%d/control/shutdown" % domain.domid
            yield from self.xs.write(control, "suspend")
            # Guest-side: reads the node, quiesces, saves state.
            yield self.sim.timeout(3.0)
            weight = domain.notes.pop("xenstore_client", None)
            if weight:
                self.xenstore.unregister_client(weight)
            self.hypervisor.domctl_shutdown(domain,
                                            ShutdownReason.SUSPEND)
