"""VM configuration: the xl.cfg model and parser.

Xen's ``xl`` reads an ``xl.cfg``-style file (``key = value`` lines); parsing
it is the first of the nine creation steps in Figure 8 and one of the six
cost categories of Figure 5.  We implement a real parser for the subset of
the format the experiments need, so the "config" phase cost is driven by
actual config text.
"""

from __future__ import annotations

import ast
import dataclasses
import typing

from ..guests.catalog import lookup
from ..guests.images import GuestImage


class ConfigError(ValueError):
    """Malformed VM configuration."""


@dataclasses.dataclass
class VMConfig:
    """A parsed virtual machine configuration."""

    name: str
    image: GuestImage
    memory_kb: int
    vcpus: int = 1
    #: One entry per virtual network interface, e.g. {"mac": "...",
    #: "bridge": "xenbr0"}.
    vifs: typing.List[dict] = dataclasses.field(default_factory=list)
    #: One entry per virtual block device, e.g. {"target": "..."}.
    vbds: typing.List[dict] = dataclasses.field(default_factory=list)
    #: Raw config text (its length drives the parse-phase cost).
    text: str = ""

    @classmethod
    def for_image(cls, image: GuestImage, name: str,
                  memory_kb: typing.Optional[int] = None) -> "VMConfig":
        """Build the canonical config for a catalogue image."""
        vifs = [{"mac": _default_mac(index), "bridge": "xenbr0"}
                for index in range(image.vifs)]
        vbds = [{"target": "/dev/xvd%c" % chr(ord("a") + index)}
                for index in range(image.vbds)]
        config = cls(name=name, image=image,
                     memory_kb=memory_kb or image.memory_kb,
                     vifs=vifs, vbds=vbds)
        config.text = config.render()
        return config

    def render(self) -> str:
        """Serialize to xl.cfg text."""
        lines = [
            'name = "%s"' % self.name,
            'kernel = "/images/%s.img"' % self.image.name,
            "memory = %d" % max(1, self.memory_kb // 1024),
            "vcpus = %d" % self.vcpus,
        ]
        if self.vifs:
            rendered = ", ".join(
                "'%s'" % ",".join("%s=%s" % kv for kv in sorted(v.items()))
                for v in self.vifs)
            lines.append("vif = [ %s ]" % rendered)
        if self.vbds:
            rendered = ", ".join("'%s'" % v.get("target", "")
                                 for v in self.vbds)
            lines.append("disk = [ %s ]" % rendered)
        return "\n".join(lines) + "\n"


def _default_mac(index: int) -> str:
    # Xen's OUI is 00:16:3e.
    return "00:16:3e:00:%02x:%02x" % ((index >> 8) & 0xFF, index & 0xFF)


def parse_config_text(text: str) -> VMConfig:
    """Parse xl.cfg text into a :class:`VMConfig`.

    Supported keys: ``name``, ``kernel`` (mapped back to a catalogue image
    by basename), ``memory`` (MiB), ``vcpus``, ``vif``, ``disk``.
    """
    values: typing.Dict[str, object] = {}
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ConfigError("line %d: expected 'key = value': %r"
                              % (lineno, raw_line))
        key, _sep, value_text = line.partition("=")
        key = key.strip()
        value_text = value_text.strip()
        try:
            values[key] = ast.literal_eval(value_text)
        except (SyntaxError, ValueError):
            raise ConfigError("line %d: cannot parse value %r"
                              % (lineno, value_text)) from None

    if "name" not in values:
        raise ConfigError("config must set 'name'")
    if "kernel" not in values:
        raise ConfigError("config must set 'kernel'")

    kernel_path = str(values["kernel"])
    image_name = kernel_path.rsplit("/", 1)[-1]
    if image_name.endswith(".img"):
        image_name = image_name[:-4]
    try:
        image = lookup(image_name)
    except KeyError as exc:
        raise ConfigError(str(exc)) from None

    vifs = []
    for spec in _as_list(values.get("vif", [])):
        vif = {}
        for part in str(spec).split(","):
            if not part:
                continue
            k, _sep, v = part.partition("=")
            vif[k.strip()] = v.strip()
        vifs.append(vif)
    vbds = [{"target": str(spec)} for spec in _as_list(values.get("disk",
                                                                  []))]

    memory_mb = int(values.get("memory", max(1, image.memory_kb // 1024)))
    return VMConfig(
        name=str(values["name"]),
        image=image,
        memory_kb=memory_mb * 1024,
        vcpus=int(values.get("vcpus", 1)),
        vifs=vifs,
        vbds=vbds,
        text=text,
    )


def _as_list(value: object) -> typing.List[object]:
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]
