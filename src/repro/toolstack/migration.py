"""Checkpointing (save/restore) and live migration (§5.1, §6.2).

Two families of implementations share this module:

* the **xl path**: suspend via the XenStore control node, serialize with
  libxc, and re-create the domain — including full XenStore device setup
  with bash hotplug — on restore.  Restore is the expensive direction
  (Fig 12b: ~550 ms) and both directions degrade as the XenStore loads up.
* the **LightVM path**: suspend through the noxs sysctl device, serialize
  with libxc, and re-create through chaos's noxs path.  Save ≈ 30 ms and
  restore ≈ 20 ms, flat in the number of running guests (Fig 12).

Migration (Fig 13) composes the two: chaos "open[s] a TCP connection to a
migration daemon running on the remote host and ... send[s] the guest's
configuration so that the daemon pre-creates the domain and creates the
devices", then suspends the guest and streams its memory.
"""

from __future__ import annotations

import dataclasses
import typing

from ..faults.plan import NULL_INJECTOR, MigrationAborted, ToolstackCrashed
from ..hypervisor.domain import Domain
from ..net.links import Link
from ..trace.tracer import tracer_of
from .config import VMConfig

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


@dataclasses.dataclass
class MigrationCosts:
    """Cost constants for checkpoint/migration (ms unless noted)."""

    #: libxc memory serialization rate to/from the ramdisk, MB per ms
    #: (0.125 MB/ms = 125 MB/s; calibrated so a 3.6 MB daytime guest saves
    #: in ≈30 ms including control-plane work).
    ramdisk_mb_per_ms: float = 0.14
    #: Reading a checkpoint back is faster than writing one (sequential
    #: ramdisk read + batched mapping), MB per ms.
    restore_mb_per_ms: float = 0.24
    #: Fixed libxc setup per save/restore (context, fd plumbing).
    libxc_fixed_ms: float = 1.5
    #: xl's extra toolstack overhead around save (QEMU state, XS records).
    xl_save_overhead_ms: float = 50.0
    #: xl's extra toolstack overhead around restore: QEMU device-model
    #: restore, front/back-end reconnection waits, console re-plumbing.
    #: Restore is xl's slowest direction (Fig 12b: ≈550 ms vs 128 ms).
    xl_restore_overhead_ms: float = 390.0
    #: chaos's overhead around save/restore (lean binary).
    chaos_overhead_ms: float = 1.0


@dataclasses.dataclass
class SavedImage:
    """A checkpoint on disk (or in flight during migration)."""

    config: VMConfig
    memory_kb: int
    #: Simulated time the save finished.
    saved_at: float = 0.0


class Checkpointer:
    """save/restore on top of a toolstack instance."""

    def __init__(self, toolstack,
                 costs: typing.Optional[MigrationCosts] = None):
        self.toolstack = toolstack
        self.sim: "Simulator" = toolstack.sim
        self.costs = costs or MigrationCosts()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _is_xl(self) -> bool:
        return getattr(self.toolstack, "name", "") == "xl"

    def _uses_noxs(self) -> bool:
        return getattr(self.toolstack, "uses_noxs", False)

    def _dump_ms(self, memory_kb: int) -> float:
        return (self.costs.libxc_fixed_ms
                + memory_kb / 1024.0 / self.costs.ramdisk_mb_per_ms)

    def _load_ms(self, memory_kb: int) -> float:
        return (self.costs.libxc_fixed_ms
                + memory_kb / 1024.0 / self.costs.restore_mb_per_ms)

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save(self, domain: Domain, config: VMConfig):
        """Generator: checkpoint ``domain`` and destroy it.

        Returns a :class:`SavedImage`.
        """
        with tracer_of(self.sim).span("migration.save",
                                      domid=domain.domid,
                                      config=config.name):
            saved = yield from self._save(domain, config)
        return saved

    def _save(self, domain: Domain, config: VMConfig):
        ts = self.toolstack
        if self._is_xl():
            yield self.sim.timeout(self.costs.xl_save_overhead_ms)
            yield from ts.suspend_guest(domain)
        elif self._uses_noxs():
            yield self.sim.timeout(self.costs.chaos_overhead_ms)
            yield from ts.sysctl.request_suspend(domain)
        else:
            # chaos on the XenStore plane: control-node suspend, but with
            # chaos's lean tooling around it.
            yield self.sim.timeout(self.costs.chaos_overhead_ms)
            yield from ts.xs.write(
                "/local/domain/%d/control/shutdown" % domain.domid,
                "suspend")
            yield self.sim.timeout(3.0)
            weight = domain.notes.pop("xenstore_client", None)
            if weight:
                ts.xenstore.unregister_client(weight)
            from ..hypervisor.domain import ShutdownReason
            ts.hypervisor.domctl_shutdown(domain, ShutdownReason.SUSPEND)

        # libxc: stream guest memory to the ramdisk.
        memory_kb = domain.memory_kb
        yield self.sim.timeout(self._dump_ms(memory_kb))
        if self._uses_noxs() and not self._is_xl():
            # The checkpoint is durable now; noxs back-end device
            # destruction (the unoptimized path) proceeds asynchronously
            # so it does not inflate the reported save time.  Migration,
            # by contrast, waits for it (Fig 13's low-N crossover).
            entries = list(domain.notes.get("noxs_devices", []))
            from ..noxs.sysctl import SysctlBackend
            sysctl_entry = domain.notes.get(SysctlBackend.NOTE_KEY)
            ts = self.toolstack
            ts.hypervisor.domctl_destroy(domain)
            self.sim.process(self._async_noxs_teardown(domain, entries,
                                                       sysctl_entry))
        else:
            yield from self._teardown_saved(domain)
        return SavedImage(config=config, memory_kb=memory_kb,
                          saved_at=self.sim.now)

    def _async_noxs_teardown(self, domain: Domain, entries, sysctl_entry):
        """Process: back-end device destruction after an async save."""
        ts = self.toolstack
        for _index, entry in entries:
            yield from ts.noxs.ioctl_destroy_device(domain, entry)
        if sysctl_entry is not None:
            yield from ts.noxs.ioctl_destroy_device(domain, sysctl_entry)

    def _teardown_saved(self, domain: Domain):
        """Generator: release the suspended domain's local resources."""
        ts = self.toolstack
        if self._is_xl() or not self._uses_noxs():
            # XenStore cleanup (device dirs, domain dir).
            if domain.image is not None:
                for index in range(domain.image.vifs):
                    yield from ts.devices.destroy_device(domain, "vif",
                                                         index)
                for index in range(domain.image.vbds):
                    yield from ts.devices.destroy_device(domain, "vbd",
                                                         index)
            yield from ts.xs.rm("/local/domain/%d" % domain.domid)
            ts.xenstore.watches.remove_for_domain(domain.domid)
        else:
            for _index, entry in domain.notes.get("noxs_devices", []):
                yield from ts.noxs.ioctl_destroy_device(domain, entry)
            from ..noxs.sysctl import SysctlBackend
            sysctl_entry = domain.notes.get(SysctlBackend.NOTE_KEY)
            if sysctl_entry is not None:
                yield from ts.noxs.ioctl_destroy_device(domain,
                                                        sysctl_entry)
        ts.hypervisor.domctl_destroy(domain)

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def restore(self, saved: SavedImage):
        """Generator: bring a checkpoint back; returns the new Domain.

        Restores re-run domain and device creation (which is why xl's
        restore is its slowest operation), then load memory and resume —
        no guest kernel boot.
        """
        with tracer_of(self.sim).span("migration.restore",
                                      config=saved.config.name):
            domain = yield from self._restore(saved)
        return domain

    def _restore(self, saved: SavedImage):
        ts = self.toolstack
        if self._is_xl():
            yield self.sim.timeout(self.costs.xl_restore_overhead_ms)
        else:
            yield self.sim.timeout(self.costs.chaos_overhead_ms)
        record = yield from ts.create_vm(saved.config, boot=False)
        domain = record.domain
        # libxc: load the memory image back.
        yield self.sim.timeout(self._load_ms(saved.memory_kb))
        domain.image = saved.config.image
        # Resume (no kernel boot: the guest continues where it stopped).
        if self._uses_noxs():
            yield from ts.sysctl.complete_resume(domain)
        else:
            ts.hypervisor.domctl_unpause(domain)
            yield self.sim.timeout(1.0)  # guest-side reconnect
            ts.xenstore.register_client(saved.config.image.ambient_weight)
            domain.notes["xenstore_client"] = \
                saved.config.image.ambient_weight
        return domain


def migrate(source: Checkpointer, destination: Checkpointer,
            domain: Domain, config: VMConfig, link: Link, faults=None,
            intents=None):
    """Generator: live-migrate ``domain`` from source to destination host.

    Follows §5.1's flow: connect to the remote migration daemon, send the
    configuration so the remote side pre-creates the domain and devices,
    suspend the guest, stream its memory, and resume remotely.  Returns
    the new Domain on the destination.

    Failure semantics: if the destination cannot create the domain (e.g.
    it is out of memory), or the link dies mid-copy (the
    ``migration.link`` fault point), the migration raises
    :class:`MigrationAborted` with the source guest resumed and running
    and nothing leaked on the destination.

    With an :class:`~repro.recovery.intents.IntentLog` attached
    (``intents``), the ``toolstack.migrate`` crash point can additionally
    kill the migrating process mid-memory-copy: no inline abort runs —
    the open intent leaves recovery (resume source, reap destination) to
    the orphan reaper.
    """
    sim = source.sim
    start = sim.now
    faults = faults if faults is not None else NULL_INJECTOR

    with tracer_of(sim).span("migration.migrate", config=config.name,
                             domid=domain.domid):
        remote_domain = yield from _migrate(source, destination, domain,
                                            config, link, faults, intents)
    remote_domain.notes["migrated_in_ms"] = sim.now - start
    return remote_domain


def _migrate(source: Checkpointer, destination: Checkpointer,
             domain: Domain, config: VMConfig, link: Link, faults,
             intents=None):
    sim = source.sim
    intent = (intents.open("migrate", toolstack=source.toolstack,
                           domain=domain, config=config, source=source,
                           destination=destination, remote_domain=None)
              if intents is not None else None)

    # TCP connection + configuration exchange.
    yield from link.round_trip()
    yield from link.transfer(max(1, len(config.text) // 1024))

    # Remote pre-creation of the domain and its devices.  The source
    # guest has not been touched yet, so a failure here aborts cleanly
    # (the destination toolstack already rolled its half back).
    try:
        record = yield from destination.toolstack.create_vm(config,
                                                            boot=False)
    except Exception as exc:
        if intent is not None:
            intent.close()  # aborted cleanly: nothing for the reaper
        raise MigrationAborted(
            "destination could not pre-create %r: %s"
            % (config.name, exc)) from exc
    remote_domain = record.domain
    if intent is not None:
        intent.notes["remote_domain"] = remote_domain
        intent.advance("pre_created")

    # Suspend the source guest.
    ts = source.toolstack
    if source._is_xl():
        yield from ts.suspend_guest(domain)
    elif source._uses_noxs():
        yield from ts.sysctl.request_suspend(domain)
    else:
        yield from ts.xs.write(
            "/local/domain/%d/control/shutdown" % domain.domid,
            "suspend")
        yield sim.timeout(3.0)
        weight = domain.notes.pop("xenstore_client", None)
        if weight:
            ts.xenstore.unregister_client(weight)
        from ..hypervisor.domain import ShutdownReason
        ts.hypervisor.domctl_shutdown(domain, ShutdownReason.SUSPEND)

    # Stream the guest memory over the wire (libxc send path).
    memory_kb = domain.memory_kb
    yield sim.timeout(source.costs.libxc_fixed_ms)
    if intent is not None and \
            faults.fires("toolstack.migrate") is not None:
        # The migrating chaos/xl process dies mid-copy: the source guest
        # stays suspended, the destination keeps its empty pre-created
        # domain, and half the memory crossed the wire for nothing.  No
        # inline abort — the reaper owns recovery via the open intent.
        intent.advance("memory_copy")
        intent.crashed = True
        yield from link.transfer(max(1, memory_kb // 2))
        raise ToolstackCrashed(
            "migration toolstack died streaming %r" % config.name)
    if faults.fires("migration.link") is not None:
        # The TCP connection died mid-copy: half the memory crossed the
        # wire for nothing.  Resume the source, roll back the remote.
        yield from link.transfer(max(1, memory_kb // 2))
        yield from _abort_migration(source, destination, domain, config,
                                    remote_domain)
        if intent is not None:
            intent.close()  # aborted inline: nothing for the reaper
        raise MigrationAborted(
            "link interrupted while streaming %r; source resumed"
            % config.name)
    yield from link.transfer(memory_kb)

    # Tear down on the source, resume on the destination.
    yield from source._teardown_saved(domain)
    yield sim.timeout(destination.costs.libxc_fixed_ms)
    if destination._uses_noxs():
        yield from destination.toolstack.sysctl.complete_resume(
            remote_domain)
    else:
        destination.toolstack.hypervisor.domctl_unpause(remote_domain)
        yield sim.timeout(1.0)  # guest-side reconnect
        # The resumed guest's xenbus is live on the destination daemon:
        # register its ambient traffic there (mirrors _restore; without
        # this the migrated-in guest ran load-free forever and the
        # ambient-weight invariant had a hole).
        weight = config.image.ambient_weight
        destination.toolstack.xenstore.register_client(weight)
        remote_domain.notes["xenstore_client"] = weight
    if intent is not None:
        intent.close()
    return remote_domain


def _abort_migration(source: Checkpointer, destination: Checkpointer,
                     domain: Domain, config: VMConfig,
                     remote_domain: Domain):
    """Generator: undo a half-done migration — resume the suspended
    source guest and destroy the pre-created destination domain."""
    sim = source.sim
    ts = source.toolstack
    if source._uses_noxs():
        yield from ts.sysctl.complete_resume(domain)
    else:
        ts.hypervisor.domctl_unpause(domain)
        yield sim.timeout(1.0)  # guest-side reconnect
        weight = config.image.ambient_weight
        ts.xenstore.register_client(weight)
        domain.notes["xenstore_client"] = weight
    try:
        yield from destination.toolstack.destroy_vm(remote_domain)
    except Exception:
        pass
