"""Per-phase timing of VM creation (the Figure 5 categories).

The paper instruments ``xl``/``libxl`` and buckets creation work into six
categories: config parsing, hypervisor interaction, XenStore writes,
device creation, kernel image parsing/loading, and toolstack-internal
bookkeeping.  :class:`PhaseRecorder` reproduces that instrumentation for
our simulated toolstacks.
"""

from __future__ import annotations

import dataclasses
import typing

from ..trace.tracer import tracer_of

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hypervisor.domain import Domain
    from ..sim.engine import Simulator

#: The Figure 5 categories, in the paper's plot order.
PHASES = ("toolstack", "load", "devices", "xenstore", "hypervisor", "config")


class PhaseRecorder:
    """Accumulates simulated time per creation phase."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.totals: typing.Dict[str, float] = {phase: 0.0
                                                for phase in PHASES}
        self._open: typing.Optional[typing.Tuple[str, float]] = None
        self._span = None

    def start(self, phase: str) -> None:
        """Begin attributing time to ``phase`` (closing any open phase)."""
        if phase not in self.totals:
            raise ValueError("unknown phase %r; expected one of %s"
                             % (phase, ", ".join(PHASES)))
        self.stop()
        self._open = (phase, self.sim.now)
        # Mirror the accounting as a span so the Figure 5 breakdown can
        # be regenerated from trace data alone.  Begin/end land at the
        # same ``sim.now`` samples as the totals, so span-derived phase
        # sums equal ``totals`` exactly (same floats, same order).
        tracer = tracer_of(self.sim)
        if tracer.enabled:
            span = tracer.span("phase." + phase)
            tracer._begin(span)
            self._span = span

    def stop(self) -> None:
        """Close the currently open phase, if any."""
        if self._open is not None:
            phase, started = self._open
            self.totals[phase] += self.sim.now - started
            self._open = None
            if self._span is not None:
                self._span.tracer._end(self._span)
                self._span = None

    @property
    def total_ms(self) -> float:
        """Sum over all phases."""
        return sum(self.totals.values())


@dataclasses.dataclass
class CreationRecord:
    """The outcome of one VM creation: timings plus the domain."""

    domain: "Domain"
    config_name: str
    #: Phase name -> ms (Figure 5 breakdown) for the create step.
    phases: typing.Dict[str, float]
    #: Toolstack-side creation latency, ms (Figure 4 "Create").
    create_ms: float
    #: Guest boot latency, ms (Figure 4 "Boot"); 0 until boot completes.
    boot_ms: float = 0.0
    #: XenStore transaction retries incurred.
    xenstore_retries: int = 0

    @property
    def total_ms(self) -> float:
        """Creation plus boot."""
        return self.create_ms + self.boot_ms
