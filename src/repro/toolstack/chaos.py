"""The chaos/libchaos toolstack — LightVM's replacement for xl/libxl.

§5.1: "we begin by replacing libxl and the corresponding xl command with a
streamlined, thin library and command called libchaos and chaos".  chaos
can drive either control plane:

* **chaos [XS]** — still uses the XenStore, but writes far fewer entries
  and uses ``xendevd`` instead of bash hotplug scripts;
* **chaos [noxs]** — no XenStore at all: devices go through the noxs
  module's ioctls and the hypervisor device page; power operations go
  through the sysctl split device.

Combined with the split toolstack (:mod:`repro.toolstack.shellpool`) the
full LightVM configuration takes a pre-created shell from the chaos daemon
and only runs the execute phase: parse config, finalize devices, load the
image, boot.
"""

from __future__ import annotations

import dataclasses
import typing

from ..faults.plan import ToolstackCrashed, TransientHypercallError
from ..faults.retry import RetryExhausted, RetryPolicy, retry_call
from ..guests.boot import boot_guest
from ..hypervisor.devicepage import DEV_VBD, DEV_VIF
from ..hypervisor.domain import Domain, DomainState
from ..hypervisor.hypervisor import DOM0_ID, Hypervisor
from ..noxs.module import NoxsModule
from ..noxs.sysctl import SysctlBackend
from ..recovery.intents import crash_check
from ..trace.tracer import tracer_of
from ..xenstore.client import XsClient
from ..xenstore.daemon import XenStoreDaemon
from .config import VMConfig
from .devices import XsDeviceManager, _patient_rm
from .hotplug import Xendevd
from .phases import CreationRecord, PhaseRecorder

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator
    from .shellpool import ChaosDaemon


@dataclasses.dataclass
class ChaosCosts:
    """Cost constants for chaos/libchaos (ms unless noted)."""

    #: chaos's config format is trivial to parse.
    parse_fixed_ms: float = 0.06
    parse_per_line_ms: float = 0.004
    #: Lean binary, persistent state, no libxl context dance.
    toolstack_fixed_ms: float = 0.6
    #: Hypervisor interaction for domain creation.
    hypervisor_fixed_ms: float = 1.0
    #: Memory preparation, µs per MiB (batched mappings).
    mem_prep_us_per_mb: float = 2200.0
    #: Kernel image parse+load, µs per KiB (same storage path as xl).
    image_load_us_per_kb: float = 1.0
    image_load_fixed_ms: float = 0.08
    #: XenStore entries chaos writes per guest (XS mode only; no /vm tree,
    #: no name registration).
    base_entries: int = 3
    #: Entries written at execute time for a split-prepared device.
    split_device_entries: int = 1
    #: Claiming a shell from the daemon's pool (unix socket round trip).
    shell_claim_ms: float = 0.1


class ChaosToolstack:
    """The chaos command against either control plane."""

    def __init__(self, sim: "Simulator", hypervisor: Hypervisor,
                 xenstore: typing.Optional[XenStoreDaemon] = None,
                 noxs: typing.Optional[NoxsModule] = None,
                 sysctl: typing.Optional[SysctlBackend] = None,
                 daemon: typing.Optional["ChaosDaemon"] = None,
                 hotplug=None,
                 costs: typing.Optional[ChaosCosts] = None,
                 rng=None,
                 retry_policy: typing.Optional[RetryPolicy] = None):
        if (xenstore is None) == (noxs is None):
            raise ValueError("chaos needs exactly one control plane: "
                             "either a XenStore or a noxs module")
        if noxs is not None and sysctl is None:
            raise ValueError("the noxs control plane requires a sysctl "
                             "backend for power operations")
        self.sim = sim
        self.hypervisor = hypervisor
        self.xenstore = xenstore
        #: Dom0 connection handle (None on the noxs control plane).
        self.xs = XsClient(xenstore, DOM0_ID) if xenstore is not None \
            else None
        self.noxs = noxs
        self.sysctl = sysctl
        self.daemon = daemon
        self.costs = costs or ChaosCosts()
        self.hotplug = hotplug or Xendevd(sim)
        #: Jitter stream + schedule for control-plane retries.
        self.rng = rng
        self.retry_policy = retry_policy or RetryPolicy()
        self.devices = (XsDeviceManager(sim, hypervisor, xenstore,
                                        self.hotplug,
                                        frontend_entries=2,
                                        backend_entries=3,
                                        rng=rng)
                        if xenstore is not None else None)
        self.created: typing.List[CreationRecord] = []
        #: Creations that failed and were rolled back.
        self.rollbacks = 0
        #: Intent log + crash injector (attached by the recovery layer;
        #: None = no toolstack crash model, ``toolstack.*`` fault points
        #: never consulted).
        self.intents = None
        self._crash_faults = None

    def attach_intents(self, intents, faults=None) -> None:
        """Attach per-phase intent records and the injector whose
        ``toolstack.create`` / ``toolstack.destroy`` crash points they
        consult (see :mod:`repro.recovery.intents`)."""
        self.intents = intents
        self._crash_faults = faults

    @property
    def name(self) -> str:
        parts = ["chaos"]
        parts.append("noxs" if self.noxs is not None else "xs")
        if self.daemon is not None:
            parts.append("split")
        return "+".join(parts)

    @property
    def uses_noxs(self) -> bool:
        return self.noxs is not None

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    def create_vm(self, config: VMConfig, boot: bool = True):
        """Generator: create (and optionally boot) a VM; returns the
        :class:`CreationRecord`."""
        tracer = tracer_of(self.sim)
        with tracer.span("chaos.create_vm", config=config.name,
                         split=self.daemon is not None) as span:
            record = yield from self._create_vm(config, span)
        if boot:
            domain = record.domain
            boot_start = self.sim.now
            with tracer.span("chaos.boot", config=config.name,
                             domid=domain.domid):
                self.hypervisor.domctl_unpause(domain)
                report = yield from boot_guest(self.sim, self.hypervisor,
                                               domain, config.image,
                                               xenstore=self.xenstore)
            record.boot_ms = self.sim.now - boot_start
            domain.notes["boot_report"] = report
        return record

    def _create_vm(self, config: VMConfig, span):
        recorder = PhaseRecorder(self.sim)
        image = config.image
        start = self.sim.now

        recorder.start("config")
        lines = max(1, config.text.count("\n"))
        yield self.sim.timeout(self.costs.parse_fixed_ms
                               + lines * self.costs.parse_per_line_ms)

        recorder.start("toolstack")
        yield self.sim.timeout(self.costs.toolstack_fixed_ms)

        shell = None
        domain = None
        intent = (self.intents.open("create", toolstack=self, config=config)
                  if self.intents is not None else None)
        retries_before = (self.devices.retries_total
                          if self.devices is not None else 0)
        try:
            if self.daemon is not None:
                # Execute phase: take a pre-created shell from the pool.
                shell = yield from self.daemon.get_shell(config)
                domain = shell.domain
                span.set(domid=domain.domid, shell=True)
                yield self.sim.timeout(self.costs.shell_claim_ms)
                recorder.start("hypervisor")
                if domain.memory_kb != config.memory_kb:
                    self.hypervisor.domctl_resize_shell(domain,
                                                        config.memory_kb)
                    yield self.sim.timeout(
                        abs(config.memory_kb - domain.memory_kb) / 1024.0
                        * self.costs.mem_prep_us_per_mb / 1000.0)
                self.hypervisor.domctl_claim_shell(domain, name=config.name)
            else:
                # Transient DOMCTL_createdomain failures retry w/ backoff.
                recorder.start("hypervisor")
                domain = yield from retry_call(
                    self.sim, self.retry_policy, self.rng,
                    lambda: self.hypervisor.domctl_create(
                        name=config.name, memory_kb=config.memory_kb,
                        vcpus=config.vcpus),
                    (TransientHypercallError,))
                span.set(domid=domain.domid)
                yield self.sim.timeout(self.costs.hypervisor_fixed_ms)
                yield self.sim.timeout(
                    config.memory_kb / 1024.0
                    * self.costs.mem_prep_us_per_mb / 1000.0)
                if self.uses_noxs:
                    self.hypervisor.devpage_create(domain)
            if intent is not None:
                intent.domain = domain
            crash_check(self._crash_faults, intent, "hypervisor")

            if self.uses_noxs:
                recorder.start("devices")
                yield from self._setup_noxs_devices(domain, config, shell)
            else:
                recorder.start("xenstore")
                yield from self._write_domain_entries(domain, config, shell)
                crash_check(self._crash_faults, intent, "xenstore")
                recorder.start("devices")
                yield from self._setup_xs_devices(domain, config, shell)
            crash_check(self._crash_faults, intent, "devices")
            retries = ((self.devices.retries_total - retries_before)
                       if self.devices is not None else 0)

            recorder.start("load")
            yield self.sim.timeout(
                self.costs.image_load_fixed_ms + image.toolstack_build_ms
                + image.kernel_size_kb * self.costs.image_load_us_per_kb
                / 1000.0)
            domain.image = image
            crash_check(self._crash_faults, intent, "load")
            recorder.stop()
        except ToolstackCrashed:
            # The toolstack process is gone: no inline rollback runs.
            # The open intent hands the half-built domain to the orphan
            # reaper.
            raise
        except Exception:
            # Never leak a half-built domain — even a claimed shell is
            # destroyed (the daemon's replenisher refills the pool).
            if domain is not None:
                yield from self._rollback_create(domain, config)
            if intent is not None:
                intent.close()  # rolled back inline: nothing to reap
            raise

        record = CreationRecord(
            domain=domain, config_name=config.name,
            phases=dict(recorder.totals),
            create_ms=self.sim.now - start,
            xenstore_retries=retries)
        self.created.append(record)
        if intent is not None:
            intent.close()
        return record

    # ------------------------------------------------------------------
    # noxs device path
    # ------------------------------------------------------------------
    def _setup_noxs_devices(self, domain: Domain, config: VMConfig, shell):
        """Generator: ioctl-created devices recorded in the device page."""
        prepared = list(shell.prepared_devices) if shell is not None else []
        # Recorded incrementally so a mid-setup failure can roll back the
        # devices that already exist.
        entries = domain.notes.setdefault("noxs_devices", [])
        for index, vif in enumerate(config.vifs):
            if prepared:
                entry = prepared.pop(0)
            else:
                mac = _parse_mac(vif.get("mac"))
                entry = yield from self.noxs.ioctl_create_device(
                    domain, DEV_VIF, mac=mac)
            index_on_page = yield from self.noxs.write_devpage(domain,
                                                               entry)
            entries.append((index_on_page, entry))
            devname = "vif%d.%d" % (domain.domid, index)
            yield from self.hotplug.attach(domain.domid, devname)
        for _index in range(len(config.vbds)):
            if prepared:
                entry = prepared.pop(0)
            else:
                entry = yield from self.noxs.ioctl_create_device(
                    domain, DEV_VBD)
            index_on_page = yield from self.noxs.write_devpage(domain,
                                                               entry)
            entries.append((index_on_page, entry))
        # Power operations need the sysctl pseudo-device.
        yield from self.sysctl.attach(domain)

    # ------------------------------------------------------------------
    # XenStore device path
    # ------------------------------------------------------------------
    def _write_domain_entries(self, domain: Domain, config: VMConfig,
                              shell):
        """Generator: chaos's lean XenStore registration."""
        base = "/local/domain/%d" % domain.domid
        entry_count = self.costs.base_entries
        if shell is not None:
            # The prepare phase already wrote the skeleton; only the
            # VM-specific leaves remain.
            entry_count = 2

        def register(txn):
            yield from txn.write(base + "/memory/target",
                                 str(config.memory_kb))
            for index in range(max(0, entry_count - 1)):
                yield from txn.write(base + "/chaos/%d" % index, "x")

        try:
            yield from self.xs.transaction(register, rng=self.rng)
        except RetryExhausted as exc:
            raise RuntimeError("chaos registration for %r: retries "
                               "exhausted" % config.name) from exc

    def _setup_xs_devices(self, domain: Domain, config: VMConfig, shell):
        """Generator: device setup via XenStore, optionally pre-created."""
        if shell is not None:
            # Devices were pre-created in the prepare phase; just finalize
            # the VM-specific leaves and plumb the interface.
            for index, vif in enumerate(config.vifs):
                back_base = "/local/domain/%d/backend/vif/%d/%d" % (
                    DOM0_ID, domain.domid, index)
                with self.xs.batch() as batch:
                    if "mac" in vif:
                        batch.write(back_base + "/mac", vif["mac"])
                    for extra in range(self.costs.split_device_entries - 1):
                        batch.write(back_base + "/final-%d" % extra, "x")
                    yield from batch.commit()
                devname = "vif%d.%d" % (domain.domid, index)
                yield from self.hotplug.attach(domain.domid, devname)
            return
        for index, vif in enumerate(config.vifs):
            yield from self.devices.create_device(domain, "vif", index,
                                                  params=vif)
        for index, _vbd in enumerate(config.vbds):
            yield from self.devices.create_device(domain, "vbd", index)

    def _rollback_create(self, domain: Domain, config: VMConfig):
        """Generator: best-effort teardown of a failed creation on
        whichever control plane (tolerant of not-yet-created state)."""
        self.rollbacks += 1
        tracer_of(self.sim).instant("chaos.rollback", config=config.name,
                                    domid=domain.domid)
        if self.uses_noxs:
            for _index, entry in list(domain.notes.get("noxs_devices", [])):
                try:
                    yield from self.noxs.ioctl_destroy_device(domain, entry)
                except Exception:
                    pass
            sysctl_entry = domain.notes.pop(SysctlBackend.NOTE_KEY, None)
            if sysctl_entry is not None:
                try:
                    yield from self.noxs.ioctl_destroy_device(domain,
                                                              sysctl_entry)
                except Exception:
                    pass
        else:
            for kind, count in (("vif", len(config.vifs)),
                                ("vbd", len(config.vbds))):
                for index in range(count):
                    try:
                        yield from self.devices.destroy_device(domain, kind,
                                                               index)
                    except Exception:
                        pass
            yield from _patient_rm(self.sim, self.xs,
                                   "/local/domain/%d" % domain.domid,
                                   self.rng)
            self.xenstore.watches.remove_for_domain(domain.domid)
            weight = domain.notes.pop("xenstore_client", None)
            if weight:
                self.xenstore.unregister_client(weight)
        try:
            self.hypervisor.domctl_destroy(domain)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Destruction
    # ------------------------------------------------------------------
    def destroy_vm(self, domain: Domain):
        """Generator: tear the VM down on whichever control plane."""
        with tracer_of(self.sim).span("chaos.destroy_vm",
                                      domid=domain.domid):
            yield from self._destroy_vm(domain)

    def _destroy_vm(self, domain: Domain):
        intent = (self.intents.open("destroy", toolstack=self,
                                    domain=domain)
                  if self.intents is not None else None)
        if domain.state == DomainState.RUNNING:
            self.hypervisor.domctl_pause(domain)
        crash_check(self._crash_faults, intent, "paused")
        if self.uses_noxs:
            for _index, entry in domain.notes.get("noxs_devices", []):
                yield from self.noxs.ioctl_destroy_device(domain, entry)
            sysctl_entry = domain.notes.get(SysctlBackend.NOTE_KEY)
            if sysctl_entry is not None:
                yield from self.noxs.ioctl_destroy_device(domain,
                                                          sysctl_entry)
        else:
            image = domain.image
            if image is not None:
                for index in range(image.vifs):
                    yield from self.devices.destroy_device(domain, "vif",
                                                           index)
                for index in range(image.vbds):
                    yield from self.devices.destroy_device(domain, "vbd",
                                                           index)
            crash_check(self._crash_faults, intent, "devices")
            yield from self.xs.rm("/local/domain/%d" % domain.domid)
            crash_check(self._crash_faults, intent, "xenstore")
            self.xenstore.watches.remove_for_domain(domain.domid)
            weight = domain.notes.pop("xenstore_client", None)
            if weight:
                self.xenstore.unregister_client(weight)
        self.hypervisor.domctl_destroy(domain)
        if intent is not None:
            intent.close()


def _parse_mac(text: typing.Optional[str]) -> bytes:
    """Parse 'aa:bb:cc:dd:ee:ff' into 6 bytes (zeros when absent)."""
    if not text:
        return b"\x00" * 6
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError("malformed MAC address %r" % text)
    return bytes(int(part, 16) for part in parts)
