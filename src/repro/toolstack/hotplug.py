"""Hotplug: plumbing a new virtual interface into the software switch.

§5.3: with standard Xen, device setup in user space happens through bash
hotplug scripts launched by ``xl`` or ``udevd`` — "launching and executing
bash scripts is a slow process taking tens of milliseconds".  LightVM
replaces them with ``xendevd``, a pre-started binary daemon that listens
for udev events and "executes a pre-defined setup without forking or bash
scripts".

Both handlers survive injected script failures (the paper's motivating
flakiness): the ``hotplug.script`` / ``hotplug.xendevd`` fault points make
a run fail after charging its latency (plus any hang modeled by the rule's
``delay_ms``), and the handler relaunches per its retry policy, raising
:class:`HotplugError` once the budget is spent.
"""

from __future__ import annotations

import dataclasses
import typing

from ..faults.plan import NULL_INJECTOR
from ..faults.retry import RetryBudgetExhausted, RetryPolicy

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


class HotplugError(RuntimeError):
    """A hotplug handler kept failing past its retry budget."""


@dataclasses.dataclass
class HotplugCosts:
    """Latency constants (ms)."""

    #: udev event propagation to the handler.
    udev_event_ms: float = 4.0
    #: fork+exec of bash plus the script body (brctl/ip invocations).
    bash_script_ms: float = 38.0
    #: xendevd handling: pre-resolved setup, no fork.
    xendevd_ms: float = 0.25


class Bridge(typing.Protocol):
    """What hotplug handlers need from a software switch."""

    def attach(self, domid: int, devname: str) -> None: ...  # noqa: E704

    def detach(self, domid: int, devname: str) -> None: ...  # noqa: E704


class NullBridge:
    """A stand-in bridge that only records port membership."""

    def __init__(self):
        self.ports: typing.Dict[str, int] = {}

    def attach(self, domid: int, devname: str) -> None:
        self.ports[devname] = domid

    def detach(self, domid: int, devname: str) -> None:
        self.ports.pop(devname, None)


class _FaultTolerantHandler:
    """Shared retry loop for both hotplug handler styles."""

    #: Fault point consulted per script run; set by subclasses.
    fault_point = ""

    def __init__(self, sim: "Simulator", bridge=None,
                 costs: typing.Optional[HotplugCosts] = None,
                 faults=None, rng=None,
                 retry_policy: typing.Optional[RetryPolicy] = None):
        self.sim = sim
        self.bridge = bridge or NullBridge()
        self.costs = costs or HotplugCosts()
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.rng = rng
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=8, base_ms=1.0, multiplier=2.0, cap_ms=50.0)
        self.invocations = 0
        #: Script runs that failed (and were relaunched).
        self.failures = 0

    def _run_cost_ms(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def _run(self, apply: typing.Callable[[], None]):
        """Generator: run the handler, relaunching on injected failures."""
        retry = 0
        started = self.sim.now
        slept = 0.0
        while True:
            yield self.sim.timeout(self._run_cost_ms())
            self.invocations += 1
            rule = self.faults.fires(self.fault_point)
            if rule is None:
                apply()
                return
            self.failures += 1
            if rule.delay_ms:  # a hung script sits until its watchdog fires
                yield self.sim.timeout(rule.delay_ms)
            retry += 1
            if self.retry_policy.give_up(retry, started, self.sim.now):
                raise HotplugError(
                    "%s handler failed %d times" % (self.fault_point, retry))
            delay = self.retry_policy.backoff_ms(retry, self.rng)
            if self.retry_policy.over_budget(slept, delay):
                raise RetryBudgetExhausted(
                    "%s handler spent its %.1f ms backoff budget"
                    % (self.fault_point, self.retry_policy.budget_ms))
            slept += delay
            yield self.sim.timeout(delay)


class BashHotplug(_FaultTolerantHandler):
    """Standard Xen: udev event -> bash hotplug script."""

    fault_point = "hotplug.script"

    def _run_cost_ms(self) -> float:
        return self.costs.bash_script_ms

    def attach(self, domid: int, devname: str):
        """Generator: run the vif-bridge script for a new device."""
        yield self.sim.timeout(self.costs.udev_event_ms)
        yield from self._run(lambda: self.bridge.attach(domid, devname))

    def detach(self, domid: int, devname: str):
        """Generator: run the teardown script."""
        yield self.sim.timeout(self.costs.udev_event_ms)
        yield from self._run(lambda: self.bridge.detach(domid, devname))


class Xendevd(_FaultTolerantHandler):
    """LightVM: resident daemon handling udev events without forking."""

    fault_point = "hotplug.xendevd"

    def _run_cost_ms(self) -> float:
        return self.costs.xendevd_ms

    def attach(self, domid: int, devname: str):
        """Generator: fast-path attach."""
        yield from self._run(lambda: self.bridge.attach(domid, devname))

    def detach(self, domid: int, devname: str):
        """Generator: fast-path detach."""
        yield from self._run(lambda: self.bridge.detach(domid, devname))
