"""Hotplug: plumbing a new virtual interface into the software switch.

§5.3: with standard Xen, device setup in user space happens through bash
hotplug scripts launched by ``xl`` or ``udevd`` — "launching and executing
bash scripts is a slow process taking tens of milliseconds".  LightVM
replaces them with ``xendevd``, a pre-started binary daemon that listens
for udev events and "executes a pre-defined setup without forking or bash
scripts".
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator


@dataclasses.dataclass
class HotplugCosts:
    """Latency constants (ms)."""

    #: udev event propagation to the handler.
    udev_event_ms: float = 4.0
    #: fork+exec of bash plus the script body (brctl/ip invocations).
    bash_script_ms: float = 38.0
    #: xendevd handling: pre-resolved setup, no fork.
    xendevd_ms: float = 0.25


class Bridge(typing.Protocol):
    """What hotplug handlers need from a software switch."""

    def attach(self, domid: int, devname: str) -> None: ...  # noqa: E704

    def detach(self, domid: int, devname: str) -> None: ...  # noqa: E704


class NullBridge:
    """A stand-in bridge that only records port membership."""

    def __init__(self):
        self.ports: typing.Dict[str, int] = {}

    def attach(self, domid: int, devname: str) -> None:
        self.ports[devname] = domid

    def detach(self, domid: int, devname: str) -> None:
        self.ports.pop(devname, None)


class BashHotplug:
    """Standard Xen: udev event -> bash hotplug script."""

    def __init__(self, sim: "Simulator", bridge=None,
                 costs: typing.Optional[HotplugCosts] = None):
        self.sim = sim
        self.bridge = bridge or NullBridge()
        self.costs = costs or HotplugCosts()
        self.invocations = 0

    def attach(self, domid: int, devname: str):
        """Generator: run the vif-bridge script for a new device."""
        yield self.sim.timeout(self.costs.udev_event_ms)
        yield self.sim.timeout(self.costs.bash_script_ms)
        self.bridge.attach(domid, devname)
        self.invocations += 1

    def detach(self, domid: int, devname: str):
        """Generator: run the teardown script."""
        yield self.sim.timeout(self.costs.udev_event_ms)
        yield self.sim.timeout(self.costs.bash_script_ms)
        self.bridge.detach(domid, devname)
        self.invocations += 1


class Xendevd:
    """LightVM: resident daemon handling udev events without forking."""

    def __init__(self, sim: "Simulator", bridge=None,
                 costs: typing.Optional[HotplugCosts] = None):
        self.sim = sim
        self.bridge = bridge or NullBridge()
        self.costs = costs or HotplugCosts()
        self.invocations = 0

    def attach(self, domid: int, devname: str):
        """Generator: fast-path attach."""
        yield self.sim.timeout(self.costs.xendevd_ms)
        self.bridge.attach(domid, devname)
        self.invocations += 1

    def detach(self, domid: int, devname: str):
        """Generator: fast-path detach."""
        yield self.sim.timeout(self.costs.xendevd_ms)
        self.bridge.detach(domid, devname)
        self.invocations += 1
