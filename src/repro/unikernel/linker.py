"""Symbol resolution and dead-code elimination for unikernel linking.

The linker starts from the application's undefined symbols and pulls in
library objects transitively, archive-style: an object is included only
if something reachable references one of its symbols.  That reachability
pruning is exactly why unikernel images are hundreds of KB instead of
tens of MB.
"""

from __future__ import annotations

import dataclasses
import typing

from .objects import APPLICATIONS, LIBRARY_OBJECTS, AppSource, \
    LibraryObject


class LinkError(RuntimeError):
    """Unresolved or multiply-defined symbols."""


@dataclasses.dataclass
class LinkResult:
    """Outcome of a link: the included objects and size accounting."""

    app: AppSource
    objects: typing.List[LibraryObject]
    #: Undefined-symbol resolution order (for diagnostics).
    resolution_order: typing.List[str]

    #: ELF headers, section alignment, build-id... (KiB).
    ELF_OVERHEAD_KB = 6

    @property
    def image_kb(self) -> int:
        """Uncompressed on-disk image size."""
        return (self.app.size_kb
                + sum(obj.size_kb for obj in self.objects)
                + self.ELF_OVERHEAD_KB)

    @property
    def runtime_kb(self) -> int:
        """Minimum memory to run: image + per-object runtime + app heap +
        page tables/rounding."""
        runtime = sum(obj.runtime_kb for obj in self.objects)
        total = self.image_kb + runtime + self.app.heap_kb + 256
        return ((total + 511) // 512) * 512  # 512 KiB granularity

    def includes(self, object_name: str) -> bool:
        return any(obj.name == object_name for obj in self.objects)


def _provider_map(universe: typing.Dict[str, LibraryObject]
                  ) -> typing.Dict[str, LibraryObject]:
    providers: typing.Dict[str, LibraryObject] = {}
    for obj in universe.values():
        for symbol in obj.provides:
            if symbol in providers:
                raise LinkError(
                    "symbol %r defined by both %s and %s"
                    % (symbol, providers[symbol].name, obj.name))
            providers[symbol] = obj
    return providers


def link(app: typing.Union[str, AppSource],
         universe: typing.Optional[typing.Dict[str, LibraryObject]] = None
         ) -> LinkResult:
    """Link ``app`` against the library universe; returns a LinkResult.

    Raises :class:`LinkError` for undefined symbols.
    """
    if isinstance(app, str):
        try:
            app = APPLICATIONS[app]
        except KeyError:
            raise LinkError("unknown application %r; known: %s"
                            % (app, ", ".join(sorted(APPLICATIONS)))) \
                from None
    universe = universe or LIBRARY_OBJECTS
    providers = _provider_map(universe)

    included: typing.Dict[str, LibraryObject] = {}
    resolution: typing.List[str] = []
    worklist = list(app.needs)
    satisfied: typing.Set[str] = set()
    while worklist:
        symbol = worklist.pop(0)
        if symbol in satisfied:
            continue
        try:
            provider = providers[symbol]
        except KeyError:
            raise LinkError("undefined symbol %r (needed by %s)"
                            % (symbol, app.name)) from None
        satisfied.add(symbol)
        resolution.append(symbol)
        if provider.name not in included:
            included[provider.name] = provider
            worklist.extend(provider.needs)
    ordered = sorted(included.values(), key=lambda o: o.name)
    return LinkResult(app=app, objects=ordered,
                      resolution_order=resolution)
