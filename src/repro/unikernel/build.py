"""From a link result to a bootable GuestImage.

Boot CPU work scales with image size (more sections to initialize) plus
per-subsystem init costs; the calibration anchors are the catalogue's
paper-quoted values (daytime: 480 KB, 3.6 MB RAM, ~3 ms boot).
"""

from __future__ import annotations

import dataclasses
import typing

from ..guests.images import GuestImage, GuestKind
from .linker import LinkResult, link

#: Base boot CPU cost for a Mini-OS guest (ms) plus per-KB of image.
BOOT_BASE_MS = 0.55
BOOT_US_PER_KB = 1.6
#: Extra boot work per subsystem that needs initialization (ms).
SUBSYSTEM_BOOT_MS = {
    "lwip": 0.55,
    "axtls": 0.7,
    "micropython-core": 0.6,
    "click-router": 2.4,
    "minios-blkfront": 0.3,
}


@dataclasses.dataclass
class UnikernelBuild:
    """A built unikernel: the image plus its link map."""

    image: GuestImage
    link_result: LinkResult


def build(app_name: str) -> UnikernelBuild:
    """Link ``app_name`` and wrap it as a bootable GuestImage."""
    result = link(app_name)
    boot_cpu = (BOOT_BASE_MS
                + result.image_kb * BOOT_US_PER_KB / 1000.0
                + sum(ms for name, ms in SUBSYSTEM_BOOT_MS.items()
                      if result.includes(name)))
    vifs = 1 if result.includes("minios-netfront") else 0
    vbds = 1 if result.includes("minios-blkfront") else 0
    image = GuestImage(
        name="unikernel-%s" % app_name,
        kind=GuestKind.UNIKERNEL,
        kernel_size_kb=result.image_kb,
        rootfs_size_kb=0,
        memory_kb=result.runtime_kb,
        boot_cpu_ms=round(boot_cpu, 3),
        boot_fixed_ms=0.2,
        vifs=vifs,
        vbds=vbds,
        xenbus_watches=3 if (vifs or vbds) else 0,
    )
    return UnikernelBuild(image=image, link_result=result)


def size_report(builds: typing.Iterable[UnikernelBuild]) -> str:
    """A table of image/runtime sizes, like the paper's §3.1 numbers."""
    lines = ["%-24s %10s %12s %8s" % ("unikernel", "image", "runtime",
                                      "objects")]
    for item in builds:
        lines.append("%-24s %8d KB %9d KB %8d"
                     % (item.image.name, item.link_result.image_kb,
                        item.link_result.runtime_kb,
                        len(item.link_result.objects)))
    return "\n".join(lines)
