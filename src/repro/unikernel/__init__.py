"""Unikernel build system (§3.1): Mini-OS + libraries + app, linked with
symbol resolution and dead-code elimination."""

from .build import UnikernelBuild, build, size_report
from .linker import LinkError, LinkResult, link
from .objects import (APPLICATIONS, LIBRARY_OBJECTS, AppSource,
                      LibraryObject)

__all__ = [
    "APPLICATIONS",
    "AppSource",
    "LIBRARY_OBJECTS",
    "LibraryObject",
    "LinkError",
    "LinkResult",
    "UnikernelBuild",
    "build",
    "link",
    "size_report",
]
