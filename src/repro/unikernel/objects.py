"""The Mini-OS library universe for unikernel linking (§3.1).

"If one needs to create a new unikernel, the simplest is to rely on
Mini-OS, a toy guest operating system distributed with Xen ... For
instance, only 50 LoC are needed to implement a TCP server over Mini-OS
that returns the current time whenever it receives a connection (we also
linked the lwip networking stack).  The resulting VM image ... is only
480KB (uncompressed), and can run in as little as 3.6MB of RAM."

A unikernel is the transitive closure of library objects reachable from
the application through undefined-symbol resolution.  Each object here
carries the symbols it provides and needs, plus its contribution to the
image; the linker (:mod:`repro.unikernel.linker`) computes the closure.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class LibraryObject:
    """One linkable object/archive member."""

    name: str
    #: Compiled size contribution, KiB.
    size_kb: int
    #: Symbols this object defines.
    provides: typing.Tuple[str, ...] = ()
    #: Undefined symbols this object references.
    needs: typing.Tuple[str, ...] = ()
    #: Static + runtime memory beyond the image (stacks, heaps, rings),
    #: KiB.
    runtime_kb: int = 0


#: The modelled Mini-OS world.
LIBRARY_OBJECTS: typing.Dict[str, LibraryObject] = {
    obj.name: obj for obj in [
        # The Mini-OS kernel proper.
        LibraryObject(
            "minios-core", 112,
            provides=("minios_entry", "console_print", "thread_create",
                      "mm_alloc", "events_bind", "gnttab_map",
                      "hypercall"),
            needs=(),
            runtime_kb=1024),
        LibraryObject(
            "minios-netfront", 28,
            provides=("netfront_init", "netfront_xmit", "netfront_rx"),
            needs=("events_bind", "gnttab_map", "mm_alloc"),
            runtime_kb=512),
        LibraryObject(
            "minios-blkfront", 24,
            provides=("blkfront_init", "blkfront_io"),
            needs=("events_bind", "gnttab_map", "mm_alloc")),
        LibraryObject(
            "minios-noxs-front", 9,
            provides=("noxs_map_devpage", "noxs_parse"),
            needs=("hypercall", "mm_alloc")),
        # C runtime slices.
        LibraryObject(
            "newlib-mini", 118,
            provides=("malloc", "free", "memcpy", "printf", "strcmp",
                      "snprintf"),
            needs=("mm_alloc", "console_print"),
            runtime_kb=256),
        LibraryObject(
            "libm-mini", 64,
            provides=("sin", "cos", "pow", "sqrt", "fmod"),
            needs=("memcpy",)),
        # Networking.
        LibraryObject(
            "lwip", 190,
            provides=("tcp_listen", "tcp_write", "udp_send", "ip_init",
                      "dns_query"),
            needs=("netfront_init", "netfront_xmit", "netfront_rx",
                   "malloc", "memcpy"),
            runtime_kb=768),
        # Crypto/TLS.
        LibraryObject(
            "axtls", 380,
            provides=("tls_accept", "tls_read", "tls_write", "rsa_sign"),
            needs=("tcp_listen", "tcp_write", "malloc", "memcpy",
                   "pow"),
            runtime_kb=2048),
        # Language runtimes.
        LibraryObject(
            "micropython-core", 560,
            provides=("mp_exec", "mp_compile", "mp_gc"),
            needs=("malloc", "free", "printf", "strcmp", "snprintf",
                   "sin", "pow"),
            runtime_kb=3072),
        # Click modular router.
        LibraryObject(
            "click-router", 1400,
            provides=("click_run", "click_element_classify",
                      "click_element_filter"),
            needs=("netfront_init", "netfront_xmit", "netfront_rx",
                   "malloc", "memcpy", "thread_create"),
            runtime_kb=2048),
    ]
}


@dataclasses.dataclass(frozen=True)
class AppSource:
    """An application to be linked into a unikernel.

    Following the paper's sizing, application code contributes roughly
    ``loc * bytes_per_loc`` to the image; the daytime server is 50 LoC.
    """

    name: str
    loc: int
    #: Symbols the application references.
    needs: typing.Tuple[str, ...]
    #: Extra heap the application wants at runtime, KiB.
    heap_kb: int = 512

    BYTES_PER_LOC = 38

    @property
    def size_kb(self) -> int:
        return max(1, self.loc * self.BYTES_PER_LOC // 1024)


#: The paper's applications.
APPLICATIONS = {
    app.name: app for app in [
        # "only 50 LoC ... returns the current time".
        AppSource("daytime", 50,
                  needs=("minios_entry", "tcp_listen", "tcp_write",
                         "printf")),
        AppSource("noop", 10, needs=("minios_entry", "console_print"),
                  heap_kb=64),
        AppSource("minipython", 1400,
                  needs=("minios_entry", "mp_exec", "mp_compile",
                         "tcp_listen"),
                  heap_kb=3072),
        AppSource("tls-proxy", 900,
                  needs=("minios_entry", "tls_accept", "tls_read",
                         "tls_write", "tcp_listen"),
                  heap_kb=4096),
        AppSource("clickos-firewall", 420,
                  needs=("minios_entry", "click_run",
                         "click_element_classify",
                         "click_element_filter"),
                  heap_kb=2048),
    ]
}
