"""Docker engine model (the paper's container baseline, Docker 1.13).

Docker is not the paper's contribution — it is the yardstick — so this is
an honest behavioural model of what the paper *measures* about it:

* starts take ~150 ms with no dependence on how many other containers are
  already running at low counts, ramping to ~1 s by the 3000th container
  (Fig 4, Fig 10);
* memory use is low (≈5 GB for 1000 Micropython containers, Fig 14)
  because containers share the kernel and image layers;
* the Fig 10 curve shows latency spikes that "coincide with large jumps in
  memory consumption", and at about 3000 containers "the next large memory
  allocation consumes all available memory and the system becomes
  unresponsive" — modeled as geometrically growing engine arena
  allocations that eventually exhaust host memory.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator
    from ..sim.rng import RngStream


class DockerOOMError(MemoryError):
    """The engine's next large allocation exceeded host memory."""


@dataclasses.dataclass
class DockerCosts:
    """Calibrated Docker 1.13 behaviour."""

    #: Base container start latency (ms): image layers, namespaces,
    #: cgroups, veth plumbing.
    base_start_ms: float = 145.0
    #: Linear latency growth per existing container (ms).
    linear_ms: float = 0.028
    #: Quadratic latency growth (daemon bookkeeping), ms per container².
    quadratic_ms: float = 8e-5
    #: Start-time jitter (lognormal sigma).
    jitter_sigma: float = 0.08
    #: Engine daemon resident memory (MB).
    engine_base_mb: float = 300.0
    #: Per-container unique memory (MB): writable layer + process RSS.
    per_container_mb: float = 4.8
    #: The engine grabs a large arena every ``arena_period`` containers;
    #: each is ``arena_ratio`` times bigger than the last, starting at
    #: ``arena_initial_mb``.  These are the Fig 10 spikes and, eventually,
    #: the fatal allocation.
    arena_initial_mb: float = 256.0
    arena_ratio: float = 3.0
    arena_period: int = 500
    #: Latency penalty per GB of arena allocated (page faults, zeroing).
    arena_ms_per_gb: float = 110.0
    #: Stop latency.
    stop_ms: float = 45.0
    #: Pause/unpause (cgroup freezer) latency.
    pause_ms: float = 12.0


@dataclasses.dataclass
class Container:
    """One running container."""

    container_id: int
    image: str
    started_at: float
    paused: bool = False


class DockerEngine:
    """The Docker daemon on one host."""

    def __init__(self, sim: "Simulator", rng: "RngStream",
                 host_memory_mb: float,
                 costs: typing.Optional[DockerCosts] = None):
        self.sim = sim
        self.rng = rng
        self.host_memory_mb = host_memory_mb
        self.costs = costs or DockerCosts()
        self.containers: typing.Dict[int, Container] = {}
        self._next_id = 1
        self._started_total = 0
        self._arena_mb_total = 0.0
        self._next_arena_mb = self.costs.arena_initial_mb
        self.dead = False

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def running(self) -> int:
        return len(self.containers)

    def memory_usage_mb(self) -> float:
        """Engine + containers + arenas, MB."""
        return (self.costs.engine_base_mb
                + self.running * self.costs.per_container_mb
                + self._arena_mb_total)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _start_latency_ms(self) -> float:
        n = self._started_total
        latency = (self.costs.base_start_ms + n * self.costs.linear_ms
                   + n * n * self.costs.quadratic_ms)
        jitter = self.rng.lognormvariate(0.0, self.costs.jitter_sigma)
        return latency * jitter

    def start_container(self, image: str = "micropython"):
        """Generator: ``docker run``; returns the Container.

        Raises :class:`DockerOOMError` when the engine's next large
        allocation would exhaust host memory (after which the engine is
        unusable, matching the paper's "system becomes unresponsive").
        """
        if self.dead:
            raise DockerOOMError("docker engine is dead (earlier OOM)")
        latency = self._start_latency_ms()

        # Periodic large arena allocation (the Fig 10 spikes).
        if self._started_total and \
                self._started_total % self.costs.arena_period == 0:
            needed = self._next_arena_mb
            if self.memory_usage_mb() + needed > self.host_memory_mb:
                self.dead = True
                raise DockerOOMError(
                    "arena allocation of %.0f MB exceeds host memory "
                    "(%.0f MB used of %.0f MB)"
                    % (needed, self.memory_usage_mb(), self.host_memory_mb))
            self._arena_mb_total += needed
            self._next_arena_mb *= self.costs.arena_ratio
            latency += needed / 1024.0 * self.costs.arena_ms_per_gb

        if self.memory_usage_mb() + self.costs.per_container_mb \
                > self.host_memory_mb:
            self.dead = True
            raise DockerOOMError("per-container memory exhausted host RAM")

        yield self.sim.timeout(latency)
        container = Container(self._next_id, image, self.sim.now)
        self.containers[container.container_id] = container
        self._next_id += 1
        self._started_total += 1
        return container

    def stop_container(self, container: Container):
        """Generator: ``docker stop``."""
        yield self.sim.timeout(self.costs.stop_ms)
        self.containers.pop(container.container_id, None)

    def pause(self, container: Container):
        """Generator: ``docker pause`` (cgroup freezer)."""
        yield self.sim.timeout(self.costs.pause_ms)
        container.paused = True

    def unpause(self, container: Container):
        """Generator: ``docker unpause``."""
        yield self.sim.timeout(self.costs.pause_ms)
        container.paused = False
