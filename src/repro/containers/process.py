"""Plain Linux processes: the fork/exec baseline.

§4.2 / Fig 4: "a process is created and launched (using fork/exec) in
3.5ms on average (9ms at the 90% percentile)", independent of how many
processes already exist.  §1 quotes ~1 ms for fork/exec alone (no exec of
a new binary); both are exposed here.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator
    from ..sim.rng import RngStream


@dataclasses.dataclass
class ProcessCosts:
    """fork/exec latency and memory constants."""

    #: Median fork+exec+launch latency (ms); lognormal jitter around it.
    forkexec_median_ms: float = 3.0
    forkexec_sigma: float = 0.8
    #: Bare fork latency (ms) — the §1 "comparable to fork/exec (1ms)".
    fork_ms: float = 1.0
    #: Unique RSS per process (MB).
    unique_mb: float = 1.1
    #: Shared text/libraries mapped once (MB).
    shared_mb: float = 6.0


@dataclasses.dataclass
class OsProcess:
    """One spawned process."""

    pid: int
    command: str
    started_at: float


class ProcessSpawner:
    """fork/exec on the host OS."""

    def __init__(self, sim: "Simulator", rng: "RngStream",
                 costs: typing.Optional[ProcessCosts] = None):
        self.sim = sim
        self.rng = rng
        self.costs = costs or ProcessCosts()
        self.processes: typing.Dict[int, OsProcess] = {}
        self._next_pid = 1000

    @property
    def running(self) -> int:
        return len(self.processes)

    def memory_usage_mb(self) -> float:
        """Shared mappings once + unique RSS per process."""
        if not self.processes:
            return 0.0
        return (self.costs.shared_mb
                + self.running * self.costs.unique_mb)

    def spawn(self, command: str = "micropython"):
        """Generator: fork/exec a process; returns the OsProcess."""
        latency = (self.costs.forkexec_median_ms
                   * self.rng.lognormvariate(0.0, self.costs.forkexec_sigma))
        yield self.sim.timeout(latency)
        process = OsProcess(self._next_pid, command, self.sim.now)
        self.processes[process.pid] = process
        self._next_pid += 1
        return process

    def fork(self):
        """Generator: bare fork (the 1 ms headline comparison)."""
        yield self.sim.timeout(self.costs.fork_ms)
        process = OsProcess(self._next_pid, "(fork)", self.sim.now)
        self.processes[process.pid] = process
        self._next_pid += 1
        return process

    def kill(self, process: OsProcess) -> None:
        """Terminate a process (instantaneous for our purposes)."""
        self.processes.pop(process.pid, None)
