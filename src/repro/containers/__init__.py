"""OS-level virtualization baselines: Docker containers and processes."""

from .docker import Container, DockerCosts, DockerEngine, DockerOOMError
from .process import OsProcess, ProcessCosts, ProcessSpawner

__all__ = [
    "Container",
    "DockerCosts",
    "DockerEngine",
    "DockerOOMError",
    "OsProcess",
    "ProcessCosts",
    "ProcessSpawner",
]
