"""A virtualization host: hypervisor + Dom0 + a chosen toolstack variant.

:class:`Host` assembles the full platform for one of the five toolstack
configurations the paper compares in Figure 9:

========================  ====================================================
variant                   components
========================  ====================================================
``xl``                    XenStore + xl/libxl + bash hotplug scripts
``chaos+xs``              XenStore + chaos + xendevd
``chaos+xs+split``        XenStore + chaos + xendevd + shell-pool daemon
``chaos+noxs``            noxs device pages + sysctl + chaos + xendevd
``lightvm``               chaos + noxs + split toolstack + xendevd (all on)
========================  ====================================================
"""

from __future__ import annotations

import typing

from ..faults.plan import FaultInjector, FaultPlan
from ..guests.images import GuestImage
from ..hypervisor.domain import Domain
from ..hypervisor.hypervisor import Hypervisor
from ..noxs.module import NoxsModule
from ..noxs.sysctl import SysctlBackend
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..toolstack.chaos import ChaosToolstack
from ..toolstack.config import VMConfig
from ..toolstack.hotplug import BashHotplug, Xendevd
from ..toolstack.migration import Checkpointer, MigrationCosts
from ..toolstack.phases import CreationRecord
from ..toolstack.power import PowerManager
from ..toolstack.shellpool import ChaosDaemon
from ..toolstack.xl import XlToolstack
from ..xenstore.daemon import XenStoreDaemon
from .hostspec import HostSpec, XEON_E5_1630

#: The Figure 9 configuration names.
VARIANTS = ("xl", "chaos+xs", "chaos+xs+split", "chaos+noxs", "lightvm")


class Host:
    """One physical machine running a complete virtualization stack."""

    def __init__(self, spec: HostSpec = XEON_E5_1630,
                 variant: str = "lightvm",
                 seed: int = 0,
                 sim: typing.Optional[Simulator] = None,
                 bridge=None,
                 xenstore_impl: str = "oxenstored",
                 xenstore_log: bool = True,
                 xenstore_workers: int = 1,
                 xenstore_batch: bool = False,
                 pool_target: int = 8,
                 shell_memory_kb: typing.Optional[int] = None,
                 shell_vifs: int = 1,
                 fault_plan: typing.Optional[FaultPlan] = None,
                 xenstore_queue_cap: typing.Optional[int] = None,
                 recovery: bool = False,
                 host_id: typing.Optional[int] = None):
        if variant not in VARIANTS:
            raise ValueError("unknown variant %r; expected one of %s"
                             % (variant, ", ".join(VARIANTS)))
        self.spec = spec
        self.variant = variant
        #: Cluster-wide address of this host, or ``None`` for the classic
        #: single-host setups.  ``repro.cluster`` assigns the host index
        #: here so migration endpoints and placement commands address the
        #: machine by a stable id rather than an object reference.
        self.host_id = host_id
        self.sim = sim or Simulator()
        self.rng = RngRegistry(seed)
        #: Deterministic fault injector shared by every control-plane
        #: layer; with ``fault_plan=None`` it never fires and the host
        #: behaves exactly like a fault-free one.
        self.fault_plan = fault_plan
        self.faults = FaultInjector(fault_plan, rng=self.rng)
        self.hypervisor = Hypervisor(
            self.sim, memory_kb=spec.memory_kb, total_cores=spec.cores,
            dom0_cores=spec.dom0_cores,
            dom0_memory_kb=spec.dom0_memory_kb,
            faults=self.faults)
        self.bridge = bridge

        self.xenstore: typing.Optional[XenStoreDaemon] = None
        self.noxs: typing.Optional[NoxsModule] = None
        self.sysctl: typing.Optional[SysctlBackend] = None
        self.daemon: typing.Optional[ChaosDaemon] = None

        uses_xenstore = variant in ("xl", "chaos+xs", "chaos+xs+split")
        uses_split = variant in ("chaos+xs+split", "lightvm")

        if uses_xenstore:
            # workers=1 / batch off is the paper-faithful oxenstored;
            # the ablation benchmark turns the knobs to model a
            # concurrent/batched daemon (ROADMAP: async/batched control
            # plane).
            self.xenstore = XenStoreDaemon(
                self.sim, implementation=xenstore_impl,
                log_enabled=xenstore_log,
                rng=self.rng.stream("xenstore"),
                faults=self.faults,
                workers=xenstore_workers,
                batch_ops=xenstore_batch,
                queue_cap=xenstore_queue_cap)
        else:
            self.noxs = NoxsModule(self.sim, self.hypervisor,
                                   rng=self.rng.stream("retry/noxs"))
            self.sysctl = SysctlBackend(self.sim, self.hypervisor,
                                        self.noxs)

        hotplug_rng = self.rng.stream("hotplug")
        if variant == "xl":
            self.toolstack = XlToolstack(
                self.sim, self.hypervisor, self.xenstore,
                hotplug=BashHotplug(self.sim, bridge=bridge,
                                    faults=self.faults, rng=hotplug_rng),
                rng=self.rng.stream("retry/xl"))
        else:
            if uses_split:
                self.daemon = ChaosDaemon(
                    self.sim, self.hypervisor, noxs=self.noxs,
                    xenstore=self.xenstore, pool_target=pool_target,
                    shell_memory_kb=shell_memory_kb or 4096,
                    shell_vifs=shell_vifs,
                    faults=self.faults,
                    rng=self.rng.stream("retry/shellpool"))
                self.daemon.start()
            self.toolstack = ChaosToolstack(
                self.sim, self.hypervisor, xenstore=self.xenstore,
                noxs=self.noxs, sysctl=self.sysctl, daemon=self.daemon,
                hotplug=Xendevd(self.sim, bridge=bridge,
                                faults=self.faults, rng=hotplug_rng),
                rng=self.rng.stream("retry/chaos"))

        self.checkpointer = Checkpointer(self.toolstack)
        self.power = PowerManager(self.toolstack)
        self._vm_counter = 0

        #: Crash/restart layer (``recovery=True``): op journal + watchdog
        #: on the daemon, intent records on the toolstack, orphan reaper.
        #: None = the recovery fault points are never consulted and the
        #: host's timelines match pre-recovery builds exactly.
        self.recovery = None
        if recovery:
            from ..recovery import RecoveryManager
            self.recovery = RecoveryManager(self)

    # ------------------------------------------------------------------
    # Convenience synchronous API (drives the simulator)
    # ------------------------------------------------------------------
    def warmup(self, duration_ms: float = 500.0) -> None:
        """Let background daemons settle (e.g. the shell pool pre-fill)."""
        self.sim.run(until=self.sim.now + duration_ms)

    def next_name(self, prefix: str = "vm") -> str:
        self._vm_counter += 1
        return "%s%d" % (prefix, self._vm_counter)

    def config_for(self, image: GuestImage,
                   name: typing.Optional[str] = None,
                   memory_kb: typing.Optional[int] = None) -> VMConfig:
        """Build the canonical config for ``image`` on this host."""
        return VMConfig.for_image(image, name or self.next_name(),
                                  memory_kb=memory_kb)

    def create_vm(self, image_or_config, name: typing.Optional[str] = None,
                  boot: bool = True) -> CreationRecord:
        """Create (and boot) a VM, running the simulator until done."""
        if isinstance(image_or_config, GuestImage):
            config = self.config_for(image_or_config, name=name)
        else:
            config = image_or_config
        proc = self.sim.process(self.toolstack.create_vm(config, boot=boot))
        return self.sim.run(until=proc)

    def destroy_vm(self, domain: Domain) -> None:
        """Destroy a VM, running the simulator until done."""
        proc = self.sim.process(self.toolstack.destroy_vm(domain))
        self.sim.run(until=proc)

    def save_vm(self, domain: Domain, config: VMConfig):
        """Checkpoint a VM; returns the SavedImage."""
        proc = self.sim.process(self.checkpointer.save(domain, config))
        return self.sim.run(until=proc)

    def restore_vm(self, saved) -> Domain:
        """Restore a checkpoint; returns the new Domain."""
        proc = self.sim.process(self.checkpointer.restore(saved))
        return self.sim.run(until=proc)

    def pause_vm(self, domain: Domain) -> None:
        """Freeze a running guest (keeps memory, releases CPU)."""
        proc = self.sim.process(self.power.pause(domain))
        self.sim.run(until=proc)

    def recover(self) -> None:
        """Run one recovery pass: reap crashed toolstack operations and
        sweep the store for orphans (requires ``recovery=True``)."""
        if self.recovery is None:
            raise RuntimeError(
                "host was built without recovery=True; nothing to recover")
        proc = self.sim.process(self.recovery.recover())
        self.sim.run(until=proc)

    def unpause_vm(self, domain: Domain) -> None:
        """Thaw a paused guest (no reboot)."""
        proc = self.sim.process(self.power.unpause(domain))
        self.sim.run(until=proc)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def running_guests(self) -> int:
        """Guest domains, excluding Dom0 and pooled (SHELL) domains."""
        from ..hypervisor.domain import DomainState
        return sum(1 for d in self.hypervisor.domains.values()
                   if d.domid != 0 and d.state is not DomainState.SHELL)

    def guest_memory_kb(self) -> int:
        """KiB reserved by guests (excludes Dom0)."""
        return self.hypervisor.memory.used_kb - self.spec.dom0_memory_kb

    def cpu_utilization(self) -> float:
        """Instantaneous mean utilization over all cores, in [0, 1]."""
        return self.hypervisor.scheduler.utilization()

    def fault_metrics(self) -> typing.Dict[str, typing.Dict[str, int]]:
        """Per-fault-point counters: occurrences seen, faults injected."""
        return self.faults.metrics()

    def check_invariants(self) -> typing.List[str]:
        """Audit the host for leaked control-plane state; returns
        violation descriptions (empty = clean).  Drain the simulator
        first (async teardowns legitimately hold resources briefly)."""
        from ..faults.invariants import check_host
        return check_host(self)

    def set_migration_costs(self, costs: MigrationCosts) -> None:
        self.checkpointer.costs = costs
