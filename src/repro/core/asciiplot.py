"""Terminal plots for benchmark series — no plotting dependency needed.

Renders multi-series scatter/line charts as text, with optional log-y
(most of the paper's figures are log-scale).  Used by the examples and
the CLI to show the regenerated curves directly in the console.
"""

from __future__ import annotations

import math
import typing

#: Per-series glyphs, in assignment order.
GLYPHS = "*+ox#%@&"


def _nice_number(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return "%.0f" % value
    if abs(value) >= 10:
        return "%.1f" % value
    return "%.2f" % value


def render(xs: typing.Sequence[float],
           series: typing.Dict[str, typing.Sequence[float]],
           width: int = 64, height: int = 16,
           logy: bool = False,
           title: str = "",
           y_label: str = "ms") -> str:
    """Render ``series`` (name -> y values over ``xs``) as an ASCII chart.

    All series must have ``len(xs)`` points.  With ``logy`` the y axis is
    log10 (zero/negative values are clamped to the smallest positive
    point).
    """
    if not xs:
        raise ValueError("need at least one x value")
    if not series:
        raise ValueError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError("series %r has %d points for %d xs"
                             % (name, len(ys), len(xs)))
    if width < 16 or height < 4:
        raise ValueError("plot area too small")

    all_ys = [y for ys in series.values() for y in ys]
    positive = [y for y in all_ys if y > 0]
    floor = min(positive) if positive else 1.0

    def transform(y: float) -> float:
        if logy:
            return math.log10(max(y, floor))
        return y

    t_min = min(transform(y) for y in all_ys)
    t_max = max(transform(y) for y in all_ys)
    if t_max == t_min:
        t_max = t_min + 1.0
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in zip(xs, ys):
            column = int((x - x_min) / x_span * (width - 1))
            rank = (transform(y) - t_min) / (t_max - t_min)
            row = height - 1 - int(rank * (height - 1))
            grid[row][column] = glyph

    top = 10 ** t_max if logy else t_max
    bottom = 10 ** t_min if logy else t_min
    lines = []
    if title:
        lines.append(title)
    axis_width = max(len(_nice_number(top)), len(_nice_number(bottom)))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = _nice_number(top)
        elif row_index == height - 1:
            label = _nice_number(bottom)
        else:
            label = ""
        lines.append("%*s |%s" % (axis_width, label, "".join(row)))
    lines.append("%*s +%s" % (axis_width, "", "-" * width))
    lines.append("%*s  %-8s%*s" % (axis_width, "",
                                   _nice_number(x_min),
                                   width - 8, _nice_number(x_max)))
    legend = "   ".join("%s %s" % (GLYPHS[i % len(GLYPHS)], name)
                        for i, name in enumerate(series))
    lines.append("(%s, y in %s%s)" % (legend, y_label,
                                      ", log scale" if logy else ""))
    return "\n".join(lines)
