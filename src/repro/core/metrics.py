"""Measurement helpers: percentiles, CDFs, series formatting.

Small, dependency-free statistics used by the benchmarks to print the
same rows/series the paper's figures report.
"""

from __future__ import annotations

import bisect
import math
import typing


def percentile(values: typing.Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def median(values: typing.Sequence[float]) -> float:
    """The 50th percentile."""
    return percentile(values, 50)


def mean(values: typing.Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def cdf_points(values: typing.Sequence[float],
               points: int = 50) -> typing.List[typing.Tuple[float, float]]:
    """(value, cumulative fraction) pairs suitable for plotting a CDF.

    Semantics: every pair ``(v, f)`` satisfies ``f == P(X <= v)`` over the
    input sample, the ``v`` are strictly increasing, and the series always
    terminates at ``(max(values), 1.0)``.
    """
    if not values:
        raise ValueError("cdf of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    step = max(1, n // points)
    out: typing.List[typing.Tuple[float, float]] = []
    for index in range(0, n, step):
        value = ordered[index]
        if out and out[-1][0] == value:
            continue  # a duplicate maps to the same (v, f) pair
        # The subsample may land on any copy of a duplicated value, so the
        # sampled index's own rank under-reports the fraction; the CDF at
        # v is the rank of v's *last* occurrence.
        out.append((value, bisect.bisect_right(ordered, value) / n))
    # Terminate at (max value, 1.0) even when the subsampling step
    # skipped the tail entirely.
    if out[-1] != (ordered[-1], 1.0):
        out.append((ordered[-1], 1.0))
    return out


def sample_indices(total: int, samples: int) -> typing.List[int]:
    """Evenly spaced indices, including first and last when ``samples``
    allows (a single sample pins to index 0)."""
    if total <= 0:
        raise ValueError("total must be positive")
    if samples <= 0:
        raise ValueError("samples must be positive")
    if samples >= total:
        return list(range(total))
    if samples == 1:
        # The even-spacing formula below divides by (samples - 1); with a
        # single sample there is no spacing to compute — pin to the start.
        return [0]
    step = (total - 1) / (samples - 1)
    return sorted({round(i * step) for i in range(samples)})


def format_series(title: str, xs: typing.Sequence[float],
                  series: typing.Dict[str, typing.Sequence[float]],
                  x_label: str = "x", unit: str = "ms") -> str:
    """Render aligned columns: one row per x, one column per series."""
    names = list(series)
    header = "%-10s" % x_label + "".join("%18s" % n for n in names)
    lines = [title, header]
    for row_index, x in enumerate(xs):
        cells = "".join("%18.3f" % series[name][row_index]
                        for name in names)
        lines.append("%-10g" % x + cells)
    lines.append("(values in %s)" % unit)
    return "\n".join(lines)
