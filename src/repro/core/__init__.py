"""LightVM core: host assembly, specs, metrics, workload drivers and the
§7 use cases."""

from .host import Host, VARIANTS
from .hostspec import (AMD_OPTERON_64, HostSpec, XEON_E5_1630,
                       XEON_E5_1630_2DOM0, XEON_E5_2690)
from .stats import HostStats, snapshot
from .workloads import (CheckpointSweepResult, PauseDensityResult,
                        StormResult, boot_storm, checkpoint_sweep,
                        pause_density)

__all__ = [
    "AMD_OPTERON_64",
    "CheckpointSweepResult",
    "Host",
    "HostSpec",
    "HostStats",
    "snapshot",
    "PauseDensityResult",
    "StormResult",
    "VARIANTS",
    "XEON_E5_1630",
    "XEON_E5_1630_2DOM0",
    "XEON_E5_2690",
    "boot_storm",
    "checkpoint_sweep",
    "pause_density",
]
