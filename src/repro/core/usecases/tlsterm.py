"""§7.3 — High-density TLS termination (Fig 16c).

N apachebench clients request an empty file over HTTPS from N isolated
TLS proxies (one per CDN customer).  Three server kinds: bare-metal Linux
processes, Tinyx VMs (axtls), and the lwip-based TLS unikernel.
"""

from __future__ import annotations

import dataclasses
import typing

from ...guests.catalog import TINYX_TLS, TLS_UNIKERNEL
from ...net.tls import TlsResult, tls_throughput
from ..host import Host
from ..hostspec import XEON_E5_2690, HostSpec


@dataclasses.dataclass
class TlsUseCase:
    """Results for the TLS termination experiment."""

    #: Boot times for one instance of each kind (paper: 6 ms / 190 ms).
    unikernel_boot_ms: float
    tinyx_boot_ms: float
    #: kind -> list of TlsResult per instance-count point.
    series: typing.Dict[str, typing.List[TlsResult]]


def run_tls_termination(
        instance_counts: typing.Sequence[int] = (1, 100, 250, 500, 750,
                                                 1000),
        spec: HostSpec = XEON_E5_2690) -> TlsUseCase:
    """Boot a sample of each proxy kind, then sweep the load points."""
    host = Host(spec=spec, variant="lightvm", pool_target=8,
                shell_memory_kb=TLS_UNIKERNEL.memory_kb)
    host.warmup(1000)
    unikernel_boot = host.create_vm(TLS_UNIKERNEL).boot_ms
    tinyx_boot = host.create_vm(TINYX_TLS).boot_ms

    series: typing.Dict[str, typing.List[TlsResult]] = {}
    for kind in ("bare-metal", "tinyx", "unikernel"):
        series[kind] = [tls_throughput(kind, count, spec.guest_cores)
                        for count in instance_counts]
    return TlsUseCase(unikernel_boot_ms=unikernel_boot,
                      tinyx_boot_ms=tinyx_boot,
                      series=series)
