"""The four §7 use cases of the paper."""

from .compute import ComputeServiceResult, run_compute_service
from .firewall import (FirewallUseCase, estimate_migration_ms,
                       run_personal_firewalls)
from .jit import JitResult, run_jit_service
from .tlsterm import TlsUseCase, run_tls_termination

__all__ = [
    "ComputeServiceResult",
    "FirewallUseCase",
    "JitResult",
    "TlsUseCase",
    "estimate_migration_ms",
    "run_compute_service",
    "run_jit_service",
    "run_personal_firewalls",
    "run_tls_termination",
]
