"""§7.2 — Just-in-time service instantiation (Fig 16b).

A dummy MEC service boots a VM whenever a packet from a new client
arrives and tears it down after two seconds of inactivity.  Clients each
send a single ping; the client-perceived latency is VM creation + boot +
ARP resolution through the Dom0 bridge + the ping round trip.  At high
arrival rates the Linux bridge overloads and drops ARP, producing ping
timeouts and the long tail of the 10 ms inter-arrival curve.
"""

from __future__ import annotations

import dataclasses
import typing

from ...guests.catalog import DAYTIME_UNIKERNEL
from ...net.switch import SoftwareBridge
from ...sim.resources import Resource
from ..host import Host
from ..hostspec import XEON_E5_2690, HostSpec

#: ARP retransmit interval when a request is dropped (Linux default 1 s).
ARP_RETRY_MS = 1000.0
#: Client <-> MEC network RTT (the paper's clients sit behind the cell).
CLIENT_RTT_MS = 8.0
#: Idle timeout after which the service VM is torn down (§7.4 uses 2 s).
IDLE_TEARDOWN_MS = 2000.0


@dataclasses.dataclass
class JitResult:
    """Outcome of one arrival-rate run."""

    inter_arrival_ms: float
    #: Client-perceived ping RTTs (ms), including ARP retry penalties.
    rtts: typing.List[float]
    #: Pings that needed at least one ARP retry.
    retried: int
    #: Bridge drop counter.
    bridge_drops: int


def run_jit_service(inter_arrival_ms: float, clients: int = 400,
                    seed: int = 0,
                    spec: HostSpec = XEON_E5_2690,
                    bridge_capacity_events_per_ms: float = 0.15
                    ) -> JitResult:
    """Open-loop client arrivals, one freshly booted VM per client."""
    from ...sim.engine import Simulator
    from ...sim.rng import RngRegistry
    sim = Simulator()
    bridge = SoftwareBridge(sim, RngRegistry(seed).stream("bridge"),
                            capacity_events_per_ms=(
                                bridge_capacity_events_per_ms))
    # The bridge is wired into the host so every vif hotplug floods it.
    host = Host(spec=spec, variant="lightvm", seed=seed, sim=sim,
                bridge=bridge, pool_target=32,
                shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
    # The service daemon handles one instantiation at a time.
    spawner = Resource(sim, capacity=1, name="jit.spawner")
    host.warmup(2000)

    rtts: typing.List[float] = []
    retried = [0]
    net_rng = host.rng.stream("jit-net")

    def client(index: int):
        yield sim.timeout(index * inter_arrival_ms)
        start = sim.now
        # Per-client cellular RTT jitter around the nominal path.
        client_rtt = CLIENT_RTT_MS * net_rng.lognormvariate(0.0, 0.3)
        # First packet reaches the MEC and triggers instantiation.
        yield sim.timeout(client_rtt / 2)
        with spawner.request() as slot:
            yield slot
            record = yield from host.toolstack.create_vm(
                host.config_for(DAYTIME_UNIKERNEL))
        # The reply needs the guest's MAC resolved through the bridge.
        attempts = 0
        while not bridge.arp_resolve():
            attempts += 1
            yield sim.timeout(ARP_RETRY_MS)
        if attempts:
            retried[0] += 1
        yield sim.timeout(client_rtt / 2)
        rtts.append(sim.now - start)
        # Tear the VM down after the inactivity window.
        yield sim.timeout(IDLE_TEARDOWN_MS)
        yield from host.toolstack.destroy_vm(record.domain)

    processes = [sim.process(client(i)) for i in range(clients)]
    sim.run(until=sim.all_of(processes))
    return JitResult(inter_arrival_ms=inter_arrival_ms, rtts=rtts,
                     retried=retried[0], bridge_drops=bridge.drops)
