"""§7.1 — Personal firewalls on the mobile edge (Fig 16a).

Thousands of per-user ClickOS firewall VMs on one MEC machine: boot one
VM per user, forward each user's traffic (capped at 10 Mb/s to mimic 4G),
and measure cumulative throughput plus the scheduler-induced RTT.
"""

from __future__ import annotations

import dataclasses
import typing

from ...guests.catalog import CLICKOS_FIREWALL
from ...net.flows import ForwardingCosts, ForwardingResult, \
    run_forwarding_fleet
from ...net.links import Link
from ..host import Host
from ..hostspec import XEON_E5_2690, HostSpec


@dataclasses.dataclass
class FirewallUseCase:
    """Results of the personal-firewall experiment."""

    #: Boot time of one firewall VM on the loaded host (paper: ~10 ms).
    boot_sample_ms: float
    #: VMs actually booted for the density check.
    booted: int
    #: Steady-state fleet behaviour per client-count point.
    points: typing.List[ForwardingResult]
    #: Migration estimate over the §7.1 link (paper: ~150 ms).
    migration_ms: float


def estimate_migration_ms(link: Link) -> float:
    """§7.1: migrating a ClickOS VM over a 1 Gb/s, 10 ms link ≈ 150 ms.

    Config exchange (2 RTT) + suspend + 8 MB of memory + resume.
    """
    suspend_resume_ms = 4.0
    return (4 * link.latency_ms
            + link.transfer_ms(CLICKOS_FIREWALL.memory_kb)
            + suspend_resume_ms)


def run_personal_firewalls(
        client_counts: typing.Sequence[int] = (1, 100, 250, 500, 750,
                                               1000),
        spec: HostSpec = XEON_E5_2690,
        boot_fleet: int = 1000,
        per_client_cap_mbps: float = 10.0,
        costs: ForwardingCosts = ForwardingCosts()) -> FirewallUseCase:
    """Boot the firewall fleet on LightVM and evaluate each load point."""
    host = Host(spec=spec, variant="lightvm", pool_target=64,
                shell_memory_kb=CLICKOS_FIREWALL.memory_kb)
    host.warmup(2000)
    boot_sample_ms = 0.0
    for index in range(boot_fleet):
        record = host.create_vm(CLICKOS_FIREWALL)
        if index == boot_fleet // 2:
            boot_sample_ms = record.total_ms
    points = [run_forwarding_fleet(count, spec.guest_cores,
                                   per_client_cap_mbps=per_client_cap_mbps,
                                   costs=costs)
              for count in client_counts]
    link = Link(host.sim, latency_ms=10.0, bandwidth_mbps=1000.0)
    return FirewallUseCase(boot_sample_ms=boot_sample_ms,
                           booted=host.running_guests,
                           points=points,
                           migration_ms=estimate_migration_ms(link))
