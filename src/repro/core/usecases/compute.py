"""§7.4 — Lightweight compute service (Figs 17 and 18).

A Dom0 daemon receives compute requests (Python programs), spawns a
Minipython unikernel per request, runs the computation (≈0.8 s of CPU to
approximate e), and destroys the VM when it finishes.  Requests arrive
open-loop every 250 ms — faster than the three guest cores can absorb
(0.8 s / 3 cores = 266 ms is the full-utilisation point the paper quotes)
— so the system slowly accumulates backlog, and control-plane overhead
determines how far completion times drift.
"""

from __future__ import annotations

import dataclasses
import typing

from ...guests.catalog import MINIPYTHON_UNIKERNEL
from ...sim.resources import Resource
from ..host import Host
from ..hostspec import XEON_E5_1630, HostSpec


@dataclasses.dataclass
class ComputeServiceResult:
    """Everything Figs 17/18 need."""

    variant: str
    #: Per-request service time (request arrival -> VM destroyed), ms,
    #: indexed by request number (Fig 17).
    service_ms: typing.List[float]
    #: Toolstack creation time per request, ms.
    create_ms: typing.List[float]
    #: (time_s, concurrent VMs) samples (Fig 18).
    concurrency: typing.List[typing.Tuple[float, int]]


def run_compute_service(variant: str = "lightvm",
                        requests: int = 1000,
                        inter_arrival_ms: float = 250.0,
                        work_ms: float = 800.0,
                        seed: int = 0,
                        spec: HostSpec = XEON_E5_1630,
                        sample_every_ms: float = 1000.0
                        ) -> ComputeServiceResult:
    """Run the compute service under the given toolstack variant."""
    host = Host(spec=spec, variant=variant, seed=seed, pool_target=48,
                shell_memory_kb=MINIPYTHON_UNIKERNEL.memory_kb)
    sim = host.sim
    host.warmup(3000)

    service_ms: typing.List[float] = [0.0] * requests
    create_ms: typing.List[float] = [0.0] * requests
    concurrency: typing.List[typing.Tuple[float, int]] = []
    active = [0]
    #: The Dom0 daemon spawns one VM at a time.
    spawner = Resource(sim, capacity=1, name="compute.spawner")
    t_origin = sim.now

    def handle(index: int):
        yield sim.timeout(index * inter_arrival_ms)
        start = sim.now
        with spawner.request() as slot:
            yield slot
            record = yield from host.toolstack.create_vm(
                host.config_for(MINIPYTHON_UNIKERNEL))
        create_ms[index] = record.create_ms
        active[0] += 1
        domain = record.domain
        # The computation itself: 0.8 s of CPU, sharing the guest cores
        # with every other backlogged VM.
        done = host.hypervisor.scheduler.run_on_domain(domain, work_ms)
        yield done
        # "When the program finishes the VM shuts down."
        yield from host.toolstack.destroy_vm(domain)
        active[0] -= 1
        service_ms[index] = sim.now - start

    def sampler():
        while active[0] or sim.now - t_origin < requests * \
                inter_arrival_ms:
            concurrency.append(((sim.now - t_origin) / 1000.0, active[0]))
            yield sim.timeout(sample_every_ms)

    handlers = [sim.process(handle(i)) for i in range(requests)]
    sim.process(sampler())
    sim.run(until=sim.all_of(handlers))
    concurrency.append(((sim.now - t_origin) / 1000.0, active[0]))
    return ComputeServiceResult(variant=variant, service_ms=service_ms,
                                create_ms=create_ms,
                                concurrency=concurrency)
