"""Reusable experiment drivers.

The same few workload shapes recur across the paper's evaluation: boot a
storm of guests and watch per-creation latency; checkpoint a sample of a
running fleet; pause part of a fleet to free CPU.  These drivers wrap
them behind one call each so examples, the CLI and downstream scripts do
not re-implement the loops.
"""

from __future__ import annotations

import dataclasses
import typing

from ..guests.images import GuestImage
from .host import Host
from .hostspec import HostSpec, XEON_E5_1630


@dataclasses.dataclass
class StormResult:
    """Outcome of a boot storm."""

    variant: str
    image: str
    create_ms: typing.List[float]
    boot_ms: typing.List[float]
    host: Host

    @property
    def total_ms(self) -> typing.List[float]:
        return [c + b for c, b in zip(self.create_ms, self.boot_ms)]


def boot_storm(variant: str, image: GuestImage, count: int,
               spec: HostSpec = XEON_E5_1630, seed: int = 0,
               boot: bool = True,
               warmup_ms_per_shell: float = 20.0) -> StormResult:
    """Sequentially create ``count`` guests; returns per-VM timings.

    For split-toolstack variants the shell pool is sized to cover the
    storm and pre-filled during warmup (the paper's steady-state
    assumption); pass ``warmup_ms_per_shell=0`` to start cold.
    """
    host = Host(spec=spec, variant=variant, seed=seed,
                pool_target=count + 32, shell_memory_kb=image.memory_kb)
    if warmup_ms_per_shell:
        host.warmup(warmup_ms_per_shell * (count + 32))
    creates, boots = [], []
    for _ in range(count):
        record = host.create_vm(image, boot=boot)
        creates.append(record.create_ms)
        boots.append(record.boot_ms)
    return StormResult(variant=variant, image=image.name,
                       create_ms=creates, boot_ms=boots, host=host)


@dataclasses.dataclass
class CheckpointSweepResult:
    """Mean save/restore times at each fleet-size point."""

    variant: str
    points: typing.List[int]
    save_ms: typing.List[float]
    restore_ms: typing.List[float]


def checkpoint_sweep(variant: str, image: GuestImage,
                     points: typing.Sequence[int],
                     samples_per_point: int = 10,
                     spec: HostSpec = XEON_E5_1630,
                     seed: int = 0) -> CheckpointSweepResult:
    """Grow a fleet to each point and checkpoint a random sample (the
    Fig 12 procedure)."""
    host = Host(spec=spec, variant=variant, seed=seed,
                pool_target=max(points) + 32,
                shell_memory_kb=image.memory_kb)
    host.warmup(25.0 * (max(points) + 32))
    pick = host.rng.stream("checkpoint-sweep")
    fleet = []
    save_series, restore_series = [], []
    for target in points:
        while host.running_guests < target:
            config = host.config_for(image)
            fleet.append((host.create_vm(config).domain, config))
        saves, restores = [], []
        for _ in range(samples_per_point):
            domain, config = fleet.pop(pick.randrange(len(fleet)))
            t0 = host.sim.now
            saved = host.save_vm(domain, config)
            saves.append(host.sim.now - t0)
            t0 = host.sim.now
            fleet.append((host.restore_vm(saved), config))
            restores.append(host.sim.now - t0)
        save_series.append(sum(saves) / len(saves))
        restore_series.append(sum(restores) / len(restores))
    return CheckpointSweepResult(variant=variant, points=list(points),
                                 save_ms=save_series,
                                 restore_ms=restore_series)


@dataclasses.dataclass
class PauseDensityResult:
    """Effect of freezing part of a fleet (§2's pause requirement)."""

    fleet: int
    paused: int
    utilization_before: float
    utilization_after: float
    boot_before_ms: float
    boot_after_ms: float


def pause_density(image: GuestImage, fleet: int, pause_fraction: float,
                  spec: HostSpec = XEON_E5_1630,
                  seed: int = 0) -> PauseDensityResult:
    """Boot a fleet, freeze a fraction of it, and measure what that buys:
    lower host CPU utilization and faster boots for newcomers."""
    if not 0.0 <= pause_fraction <= 1.0:
        raise ValueError("pause_fraction must be in [0, 1]")
    host = Host(spec=spec, variant="lightvm", seed=seed,
                pool_target=fleet + 8, shell_memory_kb=image.memory_kb)
    host.warmup(20.0 * (fleet + 8))
    domains = [host.create_vm(image).domain for _ in range(fleet)]
    utilization_before = host.cpu_utilization()
    boot_before = host.create_vm(image).boot_ms

    to_pause = domains[:int(fleet * pause_fraction)]
    for domain in to_pause:
        host.pause_vm(domain)
    utilization_after = host.cpu_utilization()
    boot_after = host.create_vm(image).boot_ms
    return PauseDensityResult(fleet=fleet, paused=len(to_pause),
                              utilization_before=utilization_before,
                              utilization_after=utilization_after,
                              boot_before_ms=boot_before,
                              boot_after_ms=boot_after)
