"""Host-wide statistics snapshots (the xentop view).

One call gathers every counter the subsystems keep — domains by state,
memory, CPU, hypercall counts, XenStore traffic, noxs activity — into a
single comparable, printable snapshot.  Useful for examples, debugging
and regression checks.
"""

from __future__ import annotations

import dataclasses
import typing

from .host import Host


@dataclasses.dataclass
class HostStats:
    """A point-in-time summary of a host."""

    sim_time_ms: float
    domains_by_state: typing.Dict[str, int]
    guest_memory_mb: float
    free_memory_mb: float
    cpu_utilization_pct: float
    hypercalls: typing.Dict[str, int]
    xenstore_ops: int
    xenstore_conflicts: int
    xenstore_watches: int
    xenstore_nodes: int
    noxs_devices_created: int
    event_channels_dom0: int
    grants_dom0: int

    def render(self) -> str:
        """A human-readable summary block."""
        states = ", ".join("%s=%d" % (state, count) for state, count
                           in sorted(self.domains_by_state.items()))
        lines = [
            "t=%.1f ms" % self.sim_time_ms,
            "domains: %s" % (states or "none"),
            "memory: %.1f MB guests, %.1f MB free"
            % (self.guest_memory_mb, self.free_memory_mb),
            "cpu: %.2f%%" % self.cpu_utilization_pct,
            "hypercalls: %d total"
            % sum(self.hypercalls.values()),
        ]
        if self.xenstore_ops or self.xenstore_nodes:
            lines.append(
                "xenstore: %d ops, %d conflicts, %d watches, %d nodes"
                % (self.xenstore_ops, self.xenstore_conflicts,
                   self.xenstore_watches, self.xenstore_nodes))
        if self.noxs_devices_created:
            lines.append("noxs: %d devices created"
                         % self.noxs_devices_created)
        lines.append("dom0: %d event channels, %d grants"
                     % (self.event_channels_dom0, self.grants_dom0))
        return "\n".join(lines)


def snapshot(host: Host) -> HostStats:
    """Collect a :class:`HostStats` from a live host.

    The scraping itself lives in
    :func:`repro.trace.collect_host_metrics` (one walk shared with the
    ``repro metrics`` command); this folds the registry back into the
    flat dataclass older callers and the examples expect.
    """
    from ..trace import collect_host_metrics
    registry = collect_host_metrics(host)

    def value(name: str, default: float = 0.0) -> float:
        metric = registry.get(name)
        return metric.value if metric is not None else default

    by_state: typing.Dict[str, int] = {}
    hypercalls: typing.Dict[str, int] = {}
    for name in registry.names():
        if name.startswith("domains/"):
            by_state[name[len("domains/"):]] = int(value(name))
        elif name.startswith("hypervisor/hypercalls/"):
            hypercalls[name.rsplit("/", 1)[1]] = int(value(name))

    return HostStats(
        sim_time_ms=host.sim.now,
        domains_by_state=by_state,
        guest_memory_mb=value("memory/guest_kb") / 1024.0,
        free_memory_mb=value("memory/free_kb") / 1024.0,
        cpu_utilization_pct=value("cpu/utilization") * 100.0,
        hypercalls=hypercalls,
        xenstore_ops=int(value("xenstore/ops")),
        xenstore_conflicts=int(value("xenstore/conflicts")),
        xenstore_watches=int(value("xenstore/watches")),
        xenstore_nodes=int(value("xenstore/nodes")),
        noxs_devices_created=int(value("noxs/devices_created")),
        event_channels_dom0=int(value("hypervisor/event_channels/dom0")),
        grants_dom0=int(value("hypervisor/grants/dom0")),
    )
