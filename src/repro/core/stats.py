"""Host-wide statistics snapshots (the xentop view).

One call gathers every counter the subsystems keep — domains by state,
memory, CPU, hypercall counts, XenStore traffic, noxs activity — into a
single comparable, printable snapshot.  Useful for examples, debugging
and regression checks.
"""

from __future__ import annotations

import dataclasses
import typing

from ..hypervisor.domain import DomainState
from .host import Host


@dataclasses.dataclass
class HostStats:
    """A point-in-time summary of a host."""

    sim_time_ms: float
    domains_by_state: typing.Dict[str, int]
    guest_memory_mb: float
    free_memory_mb: float
    cpu_utilization_pct: float
    hypercalls: typing.Dict[str, int]
    xenstore_ops: int
    xenstore_conflicts: int
    xenstore_watches: int
    xenstore_nodes: int
    noxs_devices_created: int
    event_channels_dom0: int
    grants_dom0: int

    def render(self) -> str:
        """A human-readable summary block."""
        states = ", ".join("%s=%d" % (state, count) for state, count
                           in sorted(self.domains_by_state.items()))
        lines = [
            "t=%.1f ms" % self.sim_time_ms,
            "domains: %s" % (states or "none"),
            "memory: %.1f MB guests, %.1f MB free"
            % (self.guest_memory_mb, self.free_memory_mb),
            "cpu: %.2f%%" % self.cpu_utilization_pct,
            "hypercalls: %d total"
            % sum(self.hypercalls.values()),
        ]
        if self.xenstore_ops or self.xenstore_nodes:
            lines.append(
                "xenstore: %d ops, %d conflicts, %d watches, %d nodes"
                % (self.xenstore_ops, self.xenstore_conflicts,
                   self.xenstore_watches, self.xenstore_nodes))
        if self.noxs_devices_created:
            lines.append("noxs: %d devices created"
                         % self.noxs_devices_created)
        lines.append("dom0: %d event channels, %d grants"
                     % (self.event_channels_dom0, self.grants_dom0))
        return "\n".join(lines)


def snapshot(host: Host) -> HostStats:
    """Collect a :class:`HostStats` from a live host."""
    by_state: typing.Dict[str, int] = {}
    for domain in host.hypervisor.domains.values():
        if domain.domid == 0:
            continue
        key = domain.state.value
        by_state[key] = by_state.get(key, 0) + 1

    shell_kb = sum(d.memory_kb for d in host.hypervisor.domains.values()
                   if d.state is DomainState.SHELL)
    guest_kb = (host.hypervisor.memory.used_kb
                - host.spec.dom0_memory_kb - shell_kb)

    xs = host.xenstore
    return HostStats(
        sim_time_ms=host.sim.now,
        domains_by_state=by_state,
        guest_memory_mb=guest_kb / 1024.0,
        free_memory_mb=host.hypervisor.memory.free_kb / 1024.0,
        cpu_utilization_pct=host.cpu_utilization() * 100.0,
        hypercalls=dict(host.hypervisor.hypercall_counts),
        xenstore_ops=xs.stats["ops"] if xs else 0,
        xenstore_conflicts=xs.stats["conflicts"] if xs else 0,
        xenstore_watches=len(xs.watches) if xs else 0,
        xenstore_nodes=xs.tree.count_nodes() if xs else 0,
        noxs_devices_created=(host.noxs.stats["devices_created"]
                              if host.noxs else 0),
        event_channels_dom0=host.hypervisor.event_channels.count_for(0),
        grants_dom0=host.hypervisor.grants.count_for(0),
    )
