"""Host hardware specifications.

The paper uses three x86 servers (§6, §7); density and contention effects
depend on their core counts and RAM sizes, which these presets carry.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class HostSpec:
    """One physical machine."""

    name: str
    cores: int
    memory_gb: int
    #: Cores dedicated to Dom0 (the paper pins them explicitly).
    dom0_cores: int = 1
    #: Dom0's memory reservation, GiB.
    dom0_memory_gb: int = 1

    @property
    def memory_kb(self) -> int:
        return self.memory_gb * 1024 * 1024

    @property
    def dom0_memory_kb(self) -> int:
        return self.dom0_memory_gb * 1024 * 1024

    @property
    def guest_cores(self) -> int:
        return self.cores - self.dom0_cores


#: §6: "an Intel Xeon E5-1630 v3 CPU at 3.7 GHz (4 cores) and 128GB of
#: DDR4 RAM" — one core to Dom0, three to guests.
XEON_E5_1630 = HostSpec(name="xeon-e5-1630v3", cores=4, memory_gb=128,
                        dom0_cores=1)

#: §6: "four AMD Opteron 6376 CPUs at 2.3 GHz (with 16 cores each) and
#: 128GB of DDR3 RAM" — four cores to Dom0, sixty to guests (Fig 10).
AMD_OPTERON_64 = HostSpec(name="amd-opteron-6376x4", cores=64,
                          memory_gb=128, dom0_cores=4)

#: §7.1: "an Intel Xeon E5-2690 v4 2.6 GHz processor (14 cores) and 64GB
#: of RAM" for the use-case experiments.
XEON_E5_2690 = HostSpec(name="xeon-e5-2690v4", cores=14, memory_gb=64,
                        dom0_cores=1)

#: §6.2's checkpoint/migration setup: the 4-core machine with two cores
#: assigned to Dom0 and two to guests.
XEON_E5_1630_2DOM0 = HostSpec(name="xeon-e5-1630v3-2dom0", cores=4,
                              memory_gb=128, dom0_cores=2)
