"""Figure 9 — creation times for every LightVM mechanism combination.

1000 daytime unikernels on the 4-core machine under: stock xl,
chaos+XenStore, chaos+XenStore+split toolstack, chaos+noxs, and full
LightVM (chaos + noxs + split).  Paper anchors: xl ≈100 ms → just under
1 s; chaos[XS] 15→80 ms; +split ≤ ~25 ms; chaos[noxs] 8-15 ms flat;
LightVM ~4 ms flat (creation+boot), 2.3 ms floor for a no-device noop.
"""

from repro.core import VARIANTS
from repro.core.metrics import sample_indices
from repro.stdlib import run_scenario, storm_spec

from _support import (bench_main, fmt, paper_vs_measured, report,
                      run_once, scaled)

COUNT = scaled(1000, 500)

PAPER_ANCHORS = {
    "xl": (100, 950),
    "chaos+xs": (15, 80),
    "chaos+xs+split": (None, 25),
    "chaos+noxs": (10, 15),
    "lightvm": (4, 4.1),
}


def storm(variant, count=COUNT, image="daytime"):
    # Every toolstack variant is a stdlib host component at version 1,
    # all with the same pool/warmup discipline (pool_slack 64, 20 ms of
    # simulated pre-fill per shell).
    spec = storm_spec("fig09-%s" % variant, "%s@1" % variant,
                      "%s@1" % image, count)
    result = run_scenario(spec, seed=0)
    return result.series["create_ms"], result.series["total_ms"]


def run_experiment():
    results = {variant: storm(variant) for variant in VARIANTS}
    noop = storm("lightvm", count=10, image="noop")
    return results, noop


def test_fig09_toolstack_variants(benchmark):
    results, noop = run_once(benchmark, run_experiment)

    rows = []
    for variant in VARIANTS:
        creates, totals = results[variant]
        first_paper, last_paper = PAPER_ANCHORS[variant]
        rows.append(("%s first create (ms)" % variant,
                     first_paper or "-", fmt(creates[0])))
        rows.append(("%s %dth (ms)" % (variant, COUNT),
                     "%s @1000" % last_paper, fmt(creates[-1])))
    rows.append(("lightvm create+boot (ms)", "~4 flat",
                 fmt(results["lightvm"][1][-1])))
    rows.append(("noop floor create+boot (ms)", 2.3, fmt(noop[1][-1], 2)))

    samples = sample_indices(COUNT, 6)
    lines = ["n      " + "".join("%16s" % v for v in VARIANTS)]
    for index in samples:
        lines.append("%-6d" % (index + 1)
                     + "".join("%16.2f" % results[v][0][index]
                               for v in VARIANTS))
    report("FIG09 creation times across mechanisms",
           paper_vs_measured(rows) + "\n\n" + "\n".join(lines),
           data={
               "count": COUNT,
               "first_create_ms": {v: results[v][0][0] for v in VARIANTS},
               "last_create_ms": {v: results[v][0][-1] for v in VARIANTS},
               "lightvm_last_total_ms": results["lightvm"][1][-1],
               "noop_floor_total_ms": noop[1][-1],
               "create_samples": {
                   v: [[i + 1, results[v][0][i]] for i in samples]
                   for v in VARIANTS},
           })
    benchmark.extra_info["last_create"] = {
        v: results[v][0][-1] for v in VARIANTS}

    # Shape: strict ordering at the tail, and flatness of the noxs paths.
    tail = {v: results[v][0][-1] for v in VARIANTS}
    assert tail["xl"] > tail["chaos+xs"] > tail["chaos+xs+split"] \
        > tail["chaos+noxs"] > tail["lightvm"]
    for variant in ("chaos+noxs", "lightvm"):
        creates, _totals = results[variant]
        assert max(creates) < min(creates) * 1.6, variant  # flat
    assert tail["xl"] / tail["lightvm"] > 50
    assert noop[1][-1] < 3.0


if __name__ == "__main__":
    import sys

    sys.exit(bench_main(__file__))
