"""Ablations on the XenStore daemon itself.

Three design points the paper touches but does not plot:

* §4.2 footnote 3: the experiments "already use oxenstored, the faster of
  the two available implementations ... Results with cxenstored show much
  higher overheads."
* §4.2: disabling the access log "would remove the spikes [but] would not
  help in improving the overall creation times".
* The watch registry scan is the dominant superlinear term: guests with
  more xenbus watches degrade creation more.
"""

import dataclasses

from repro.core import Host
from repro.core.metrics import mean
from repro.guests import DAYTIME_UNIKERNEL

from _support import fmt, paper_vs_measured, report, run_once, scaled

COUNT = scaled(600, 300)


def storm(xenstore_impl="oxenstored", xenstore_log=True, watches=None):
    host = Host(variant="chaos+xs", xenstore_impl=xenstore_impl,
                xenstore_log=xenstore_log)
    image = DAYTIME_UNIKERNEL
    if watches is not None:
        image = dataclasses.replace(image, xenbus_watches=watches)
    return [host.create_vm(image).create_ms for _ in range(COUNT)]


def run_experiment():
    return {
        "oxenstored": storm(),
        "cxenstored": storm(xenstore_impl="cxenstored"),
        "no-log": storm(xenstore_log=False),
        "watchless-guests": storm(watches=0),
    }


def test_ablation_xenstore(benchmark):
    results = run_once(benchmark, run_experiment)

    base = results["oxenstored"]
    rows = [
        ("oxenstored %dth create (ms)" % COUNT, "baseline",
         fmt(base[-1])),
        ("cxenstored %dth (ms)" % COUNT, "much higher",
         fmt(results["cxenstored"][-1])),
        ("log disabled %dth (ms)" % COUNT, "~same (no spikes)",
         fmt(results["no-log"][-1])),
        ("watchless guests %dth (ms)" % COUNT, "much lower",
         fmt(results["watchless-guests"][-1])),
    ]
    report("ABLATION-XENSTORE daemon design points",
           paper_vs_measured(rows),
           data={
               "count": COUNT,
               "last_create_ms": {
                   name: series[-1] for name, series in results.items()},
               "mean_create_ms": {
                   name: mean(series)
                   for name, series in results.items()},
               "max_create_ms": {
                   name: max(series)
                   for name, series in results.items()},
           })

    # cxenstored: strictly worse, by a large factor at scale.
    assert results["cxenstored"][-1] > base[-1] * 1.8
    # Disabling logging removes spikes but not the trend (§4.2).  Spikes
    # only appear once enough ops have accumulated to rotate the logs
    # (13,215 lines), so at quick scale the curves coincide.
    assert abs(results["no-log"][-1] - base[-1]) / base[-1] < 0.25
    assert max(results["no-log"]) <= max(base)
    # Watch registry growth is the main superlinear term.
    assert results["watchless-guests"][-1] < base[-1] * 0.6


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
