"""Figure 10 — LightVM vs Docker at very high density (64-core host).

LightVM boots thousands of noop unikernels with near-constant latency up
to 8000 guests; Docker starts at ~150 ms, ramps to ~1 s by the 3000th
container, shows latency spikes coinciding with large memory-allocation
jumps, and dies when the next large allocation exhausts host memory.
"""

from repro.core.metrics import sample_indices
from repro.stdlib import run_scenario, storm_spec

from _support import (bench_main, fmt, paper_vs_measured, report,
                      run_once, scaled)

# Full paper scale even at quick CI: PR 5's indexed store + client API
# keep the 8000-guest storm inside the quick budget (a few seconds).
LIGHTVM_COUNT = scaled(8000, 8000)
DOCKER_LIMIT = scaled(8000, 4000)


def lightvm_storm():
    # The same experiment as examples/fig10_density.yaml;
    # tests/test_stdlib_runner.py pins the two digests identical.
    spec = storm_spec("fig10-density", "lightvm-64core@1", "noop@1",
                      LIGHTVM_COUNT)
    result = run_scenario(spec, seed=0, keep_host=True)
    return result.series["total_ms"], result.host


def docker_storm():
    spec = storm_spec("fig10-docker", "lightvm-64core@1", "docker@1",
                      DOCKER_LIMIT)
    result = run_scenario(spec, seed=0)
    died_at = int(result.stats["died_at"])
    return result.series["start_ms"], (None if died_at < 0 else died_at)


def test_fig10_density(benchmark):
    (lightvm, host), (docker, died_at) = run_once(
        benchmark, lambda: (lightvm_storm(), docker_storm()))

    rows = [
        ("lightvm guests booted", 8000, len(lightvm)),
        ("lightvm first boot (ms)", "~4", fmt(lightvm[0])),
        ("lightvm %dth boot (ms)" % len(lightvm), "~ms, flat",
         fmt(lightvm[-1])),
        ("docker first start (ms)", "~150", fmt(docker[0])),
        ("docker 3000th start (ms)", "~1000",
         fmt(docker[min(2999, len(docker) - 1)])),
        ("docker dies at", "~3000",
         died_at if died_at is not None else "survived"),
    ]
    samples = sample_indices(len(lightvm), 6)
    lines = ["n=%5d  lightvm=%8.2f ms" % (i + 1, lightvm[i])
             for i in samples]
    report("FIG10 density: LightVM vs Docker",
           paper_vs_measured(rows) + "\n\n" + "\n".join(lines),
           data={
               "lightvm_count": len(lightvm),
               # The paper-faithful control-plane configuration (the
               # bench-gate baseline pins this: full scale must not be
               # bought with the multi-worker ablation knobs).
               "xenstore_workers": 1,
               "lightvm_first_boot_ms": lightvm[0],
               "lightvm_last_boot_ms": lightvm[-1],
               "lightvm_max_boot_ms": max(lightvm),
               "lightvm_boot_samples": [
                   [i + 1, lightvm[i]] for i in samples],
               "docker_first_start_ms": docker[0],
               "docker_last_start_ms": docker[-1],
               "docker_died_at": died_at,
           })
    benchmark.extra_info["docker_died_at"] = died_at

    # Shape: LightVM flat into the thousands; Docker ramps and dies.
    assert max(lightvm) < 20.0
    assert max(lightvm) < min(lightvm) * 2.0
    assert host.running_guests == len(lightvm)
    assert died_at is not None
    assert 2500 <= died_at <= 4000
    assert docker[-1] > docker[0] * 2  # the ramp


if __name__ == "__main__":
    import sys

    sys.exit(bench_main(__file__))
