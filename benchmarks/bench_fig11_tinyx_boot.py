"""Figure 11 — boot times: Tinyx and unikernel guests vs Docker.

The unikernel boots fastest throughout.  Tinyx tracks Docker up to about
750 guests (≈250 per core on the 4-core machine) and then grows: idle
Tinyx guests run occasional background tasks, so CPU contention rises
with guests per core, while idle Docker containers and unikernels stay
truly idle and their curves remain flat.
"""

from repro.containers import DockerEngine
from repro.core import Host
from repro.core.metrics import sample_indices
from repro.guests import DAYTIME_UNIKERNEL, TINYX
from repro.sim import RngStream, Simulator

from _support import FULL, fmt, paper_vs_measured, report, run_once, \
    scaled

COUNT = scaled(1000, 800)


def boot_series(image):
    host = Host(variant="lightvm", pool_target=COUNT + 32,
                shell_memory_kb=image.memory_kb)
    host.warmup(25.0 * (COUNT + 32))
    boots = []
    for _ in range(COUNT):
        boots.append(host.create_vm(image).boot_ms)
    return boots


def docker_series():
    sim = Simulator()
    engine = DockerEngine(sim, RngStream(0, "docker"), 128 * 1024)
    times = []
    for _ in range(COUNT):
        before = sim.now

        def one():
            yield from engine.start_container()
        proc = sim.process(one())
        sim.run(until=proc)
        times.append(sim.now - before)
    return times


def test_fig11_boot_times(benchmark):
    tinyx, uni, docker = run_once(
        benchmark, lambda: (boot_series(TINYX),
                            boot_series(DAYTIME_UNIKERNEL),
                            docker_series()))

    crossover = next((i for i in range(len(tinyx))
                      if tinyx[i] > docker[i] * 1.5), None)
    rows = [
        ("tinyx first boot (ms)", 180, fmt(tinyx[0])),
        ("tinyx %dth boot (ms)" % COUNT, "~512+ @1000", fmt(tinyx[-1])),
        ("unikernel boot (ms, flat)", "~3", fmt(uni[-1])),
        ("docker start (ms, ~flat)", "150-250", fmt(docker[-1])),
        ("tinyx leaves docker band at n", "~750",
         crossover if crossover is not None else ">%d" % COUNT),
    ]
    samples = sample_indices(COUNT, 6)
    lines = ["n=%4d  tinyx=%8.1f  docker=%8.1f  unikernel=%6.2f"
             % (i + 1, tinyx[i], docker[i], uni[i]) for i in samples]
    report("FIG11 boot times: Tinyx vs Docker vs unikernel",
           paper_vs_measured(rows) + "\n\n" + "\n".join(lines),
           data={
               "count": COUNT,
               "crossover_n": crossover,
               "tinyx_boot_samples": [[i + 1, tinyx[i]] for i in samples],
               "docker_start_samples": [
                   [i + 1, docker[i]] for i in samples],
               "unikernel_boot_samples": [
                   [i + 1, uni[i]] for i in samples],
           })

    # Shape: unikernel fastest and flat; Tinyx grows with contention;
    # Docker and unikernels do not.
    assert max(uni) < min(tinyx)
    assert max(uni) < min(docker)
    assert tinyx[-1] > tinyx[0] * (1.8 if FULL else 1.4)
    assert max(uni) < min(uni) * 1.5
    # Tinyx starts in Docker's neighbourhood, then overtakes it.
    assert tinyx[0] < docker[0] * 2
    assert tinyx[-1] > docker[-1]


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
