"""Ablation: the §9 generality landscape plus the memory-dedup what-if.

Two discussion points the paper raises without plotting:

* Generality — "work such as ukvm provides a lean toolstack for KVM":
  where does a per-VM specialized monitor land between stock Xen and
  LightVM for unikernel instantiation?  (ukvm reports ~10 ms boots.)
* Memory sharing — "one avenue of optimization is to use memory
  de-duplication (as proposed by SnowFlock)": how much of Fig 14's
  footprint would page sharing recover?
"""

from repro.core import Host
from repro.core.metrics import mean
from repro.guests import DAYTIME_UNIKERNEL, MINIPYTHON_UNIKERNEL
from repro.hypervisor import MemoryAllocator, SharedImagePool
from repro.kvm import UkvmHost
from repro.sim import RngStream, Simulator

from _support import fmt, paper_vs_measured, report, run_once, scaled

COUNT = scaled(500, 200)
DEDUP_GUESTS = scaled(1000, 400)


def ukvm_storm():
    sim = Simulator()
    host = UkvmHost(sim, RngStream(0, "ukvm"))
    totals = []
    for _ in range(COUNT):
        def one():
            instance = yield from host.start(DAYTIME_UNIKERNEL)
            return instance
        proc = sim.process(one())
        instance = sim.run(until=proc)
        totals.append(instance.create_ms + instance.boot_ms)
    return totals


def xen_storm(variant):
    host = Host(variant=variant, pool_target=COUNT + 32,
                shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
    host.warmup(20.0 * (COUNT + 32))
    return [host.create_vm(DAYTIME_UNIKERNEL).total_ms
            for _ in range(COUNT)]


def dedup_what_if():
    plain = MemoryAllocator(512 * 1024 * 1024)
    deduped = MemoryAllocator(512 * 1024 * 1024)
    pool = SharedImagePool(deduped)
    for index in range(DEDUP_GUESTS):
        plain.allocate(("plain", index),
                       MINIPYTHON_UNIKERNEL.memory_kb)
        pool.allocate_instance("minipython", ("shared", index),
                               MINIPYTHON_UNIKERNEL.memory_kb)
    return plain.used_kb / 1024.0 / 1024.0, \
        deduped.used_kb / 1024.0 / 1024.0


def test_ablation_hypervisor_landscape(benchmark):
    ukvm, lightvm, xl, (plain_gb, dedup_gb) = run_once(
        benchmark, lambda: (ukvm_storm(), xen_storm("lightvm"),
                            xen_storm("xl"), dedup_what_if()))

    rows = [
        ("lightvm create+boot (ms)", "~4", fmt(mean(lightvm))),
        ("ukvm create+boot (ms)", "~10", fmt(mean(ukvm))),
        ("xl create+boot, %dth (ms)" % COUNT, "grows", fmt(xl[-1])),
        ("%d unikernels, no sharing (GB)" % DEDUP_GUESTS, "worst case",
         fmt(plain_gb, 2)),
        ("same with page sharing (GB)", "much lower", fmt(dedup_gb, 2)),
    ]
    report("ABLATION-HYPERVISORS ukvm landscape + dedup what-if",
           paper_vs_measured(rows),
           data={
               "count": COUNT,
               "mean_total_ms": {"lightvm": mean(lightvm),
                                 "ukvm": mean(ukvm), "xl": mean(xl)},
               "xl_last_total_ms": xl[-1],
               "dedup_guests": DEDUP_GUESTS,
               "plain_gb": plain_gb,
               "dedup_gb": dedup_gb,
           })

    # Landscape: LightVM < ukvm << xl-at-scale; ukvm flat like LightVM.
    assert mean(lightvm) < mean(ukvm) < xl[-1]
    assert max(ukvm) < min(ukvm) * 1.8
    assert 6.0 <= mean(ukvm) <= 16.0
    # Dedup recovers roughly the shareable fraction of the footprint.
    assert dedup_gb < plain_gb * 0.6


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
