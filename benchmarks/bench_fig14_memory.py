"""Figure 14 — memory-usage scalability.

Host memory used by 1000 guests of each type: Debian+Micropython
(~114 GB, 111 MB each), Tinyx+Micropython (~27 GB), the Minipython
unikernel (close to Docker), Docker+Micropython containers (~5 GB), and
plain Micropython processes (lowest).
"""

from repro.containers import DockerEngine, ProcessSpawner
from repro.core import Host
from repro.guests import DEBIAN, MINIPYTHON_UNIKERNEL, TINYX_MICROPYTHON
from repro.sim import RngStream, Simulator

from _support import fmt, paper_vs_measured, report, run_once, scaled

COUNT = scaled(1000, 400)


def vm_memory_gb(image):
    # chaos+noxs: no shell pool, so the ledger holds exactly the guests
    # (and a Debian-sized pool cannot crowd out the fleet itself).
    host = Host(variant="chaos+noxs")
    for _ in range(COUNT):
        host.create_vm(image, boot=False)
    used_kb = host.hypervisor.memory.used_kb - host.spec.dom0_memory_kb
    return used_kb / 1024.0 / 1024.0


def docker_memory_gb():
    sim = Simulator()
    engine = DockerEngine(sim, RngStream(0, "docker"), 128 * 1024)
    for _ in range(COUNT):
        def one():
            yield from engine.start_container()
        proc = sim.process(one())
        sim.run(until=proc)
    return engine.memory_usage_mb() / 1024.0


def process_memory_gb():
    sim = Simulator()
    spawner = ProcessSpawner(sim, RngStream(0, "proc"))
    for _ in range(COUNT):
        def one():
            yield from spawner.spawn()
        proc = sim.process(one())
        sim.run(until=proc)
    return spawner.memory_usage_mb() / 1024.0


def run_experiment():
    return {
        "debian": vm_memory_gb(DEBIAN),
        "tinyx": vm_memory_gb(TINYX_MICROPYTHON),
        "minipython": vm_memory_gb(MINIPYTHON_UNIKERNEL),
        "docker": docker_memory_gb(),
        "process": process_memory_gb(),
    }


def test_fig14_memory_scalability(benchmark):
    usage = run_once(benchmark, run_experiment)
    scale = COUNT / 1000.0

    rows = [
        ("debian @%d (GB)" % COUNT, fmt(114 * scale, 1),
         fmt(usage["debian"])),
        ("tinyx @%d (GB)" % COUNT, fmt(27 * scale, 1),
         fmt(usage["tinyx"])),
        ("minipython unikernel (GB)", "close to docker",
         fmt(usage["minipython"])),
        ("docker @%d (GB)" % COUNT, fmt(5 * scale, 1),
         fmt(usage["docker"])),
        ("process (GB)", "lowest", fmt(usage["process"], 2)),
    ]
    report("FIG14 memory usage at %d guests" % COUNT,
           paper_vs_measured(rows),
           data={"count": COUNT, "usage_gb": usage})
    benchmark.extra_info["usage_gb"] = usage

    # Shape: strict ordering debian >> tinyx >> unikernel/docker > proc,
    # and the paper's magnitudes (scaled to the point count).
    assert usage["debian"] > usage["tinyx"] > usage["minipython"]
    assert usage["minipython"] > usage["docker"] > usage["process"]
    assert usage["debian"] / usage["tinyx"] > 3
    assert usage["tinyx"] / usage["docker"] > 3
    # The paper's takeaway: the unikernel is "fairly close" to Docker
    # (same order of magnitude), unlike the Linux-based VMs.
    assert usage["minipython"] / usage["docker"] < 3
    assert abs(usage["debian"] - 114 * scale) / (114 * scale) < 0.15
    assert abs(usage["tinyx"] - 27 * scale) / (27 * scale) < 0.5


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
