"""Figure 17 — lightweight compute service completion times (§7.4).

1000 Minipython compute requests arrive every 250 ms on the 4-core
machine; each runs ~0.8 s of CPU on the three guest cores (full
utilization would need 266 ms inter-arrivals), so the system is slightly
overloaded and completion times drift upward with the backlog.

Paper anchors: split-toolstack creations ≈1.3 ms flat; plain noxs
creations 2.8→3.5 ms; the noxs-based stack completes requests several
times faster than chaos+XenStore once 100-200 VMs are backlogged.
"""

from repro.core.metrics import mean, sample_indices
from repro.core.usecases import run_compute_service

from _support import fmt, paper_vs_measured, report, run_once, scaled

REQUESTS = scaled(1000, 400)


def run_experiment():
    return {
        "lightvm": run_compute_service("lightvm", requests=REQUESTS),
        "chaos+noxs": run_compute_service("chaos+noxs", requests=REQUESTS),
        "chaos+xs": run_compute_service("chaos+xs", requests=REQUESTS),
    }


def test_fig17_compute_service(benchmark):
    results = run_once(benchmark, run_experiment)

    lightvm = results["lightvm"]
    noxs = results["chaos+noxs"]
    chaos_xs = results["chaos+xs"]
    rows = [
        ("split-toolstack create (ms, flat)", 1.3,
         fmt(mean(lightvm.create_ms), 2)),
        ("noxs create first/last (ms)", "2.8 / 3.5",
         "%s / %s" % (fmt(noxs.create_ms[0], 2),
                      fmt(noxs.create_ms[-1], 2))),
        ("lightvm completion @last (s)", "rising",
         fmt(lightvm.service_ms[-1] / 1000.0, 2)),
        ("chaos+xs completion @last (s)", "~5x lightvm @100-200 backlog",
         fmt(chaos_xs.service_ms[-1] / 1000.0, 2)),
    ]
    samples = sample_indices(REQUESTS, 6)
    lines = ["req    lightvm(s)   chaos+xs(s)"]
    for i in samples:
        lines.append("%-6d %10.2f  %12.2f"
                     % (i + 1, lightvm.service_ms[i] / 1000.0,
                        chaos_xs.service_ms[i] / 1000.0))
    report("FIG17 compute service completion times",
           paper_vs_measured(rows) + "\n\n" + "\n".join(lines),
           data={
               "requests": REQUESTS,
               "mean_create_ms": {
                   name: mean(results[name].create_ms)
                   for name in results},
               "service_samples_s": {
                   name: [[i + 1, results[name].service_ms[i] / 1000.0]
                          for i in samples]
                   for name in results},
           })

    # Shape: split creations tiny and flat; noxs creations small with a
    # slight upward drift; completions rise with the backlog; the
    # XenStore-based stack is strictly worse.
    assert mean(lightvm.create_ms) < 3.0
    assert max(lightvm.create_ms) < 8.0
    assert noxs.create_ms[0] < 25.0
    assert lightvm.service_ms[-1] > lightvm.service_ms[0] * 2
    # Known deviation (EXPERIMENTS.md): our model charges XenStore costs
    # to Dom0's dedicated core, so the paper's 5x completion gap shrinks
    # to "no better than LightVM, within noise"; the creation-time gap
    # below is where the difference survives.
    assert (mean(chaos_xs.service_ms[REQUESTS // 2:])
            >= mean(lightvm.service_ms[REQUESTS // 2:]) * 0.99)
    assert mean(chaos_xs.create_ms) > mean(lightvm.create_ms) * 2


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
