"""Figure 1 — the unrelenting growth of the Linux syscall API.

Regenerates the motivation series: x86_32 syscall count per Linux release
year, 2002-2018, growing from roughly 240 to roughly 400.
"""

from repro.data import counts_by_year, growth_per_year

from _support import paper_vs_measured, report, run_once


def test_fig01_syscall_growth(benchmark):
    series = run_once(benchmark, counts_by_year)

    years = [y for y, _c in series]
    counts = [c for _y, c in series]
    lines = ["%6d  %4d" % (y, c) for y, c in series]
    rows = [
        ("first-year count (~2002)", "~240", counts[0]),
        ("last-year count (~2017)", "~390", counts[-1]),
        ("growth per year", "~9", "%.1f" % growth_per_year()),
    ]
    report("FIG01 syscall API growth",
           paper_vs_measured(rows) + "\n\nyear   syscalls\n"
           + "\n".join(lines),
           data={"years": years, "syscalls": counts,
                 "growth_per_year": growth_per_year()})
    benchmark.extra_info["series"] = series

    # Shape: monotone growth across the figure's axis span.
    assert counts == sorted(counts)
    assert years[0] == 2002
    assert counts[-1] - counts[0] > 100


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
