"""Figure 12 — checkpointing (save/restore) vs number of running guests.

At each load point N, the experiment has N daytime unikernels running and
checkpoints 10 of them (12a: save; 12b: restore).  Paper anchors:
LightVM ≈30 ms save / ≈20 ms restore, flat in N; stock Xen needs ≈128 ms
and ≈550 ms, growing with N.
"""

from repro.core import Host, XEON_E5_1630_2DOM0
from repro.core.metrics import mean
from repro.guests import DAYTIME_UNIKERNEL

from _support import fmt, paper_vs_measured, report, run_once, scaled

POINTS = ((10, 100, 300, 600, 1000) if scaled(1, 0)
          else (10, 100, 200, 300))
VARIANTS = ("xl", "chaos+xs", "lightvm")
SAVES_PER_POINT = 10


def checkpoint_times(variant):
    """One growing host per variant; sample 10 save/restores at each N."""
    host = Host(spec=XEON_E5_1630_2DOM0, variant=variant,
                pool_target=max(POINTS) + 64,
                shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
    host.warmup(25.0 * (max(POINTS) + 64))
    pick_rng = host.rng.stream("checkpoint-picks")
    running = []  # (domain, config)
    save_series, restore_series = [], []
    for target in POINTS:
        while host.running_guests < target:
            config = host.config_for(DAYTIME_UNIKERNEL)
            record = host.create_vm(config)
            running.append((record.domain, config))
        saves, restores = [], []
        for _ in range(SAVES_PER_POINT):
            index = pick_rng.randrange(len(running))
            domain, config = running.pop(index)
            start = host.sim.now
            saved = host.save_vm(domain, config)
            saves.append(host.sim.now - start)
            start = host.sim.now
            new_domain = host.restore_vm(saved)
            restores.append(host.sim.now - start)
            running.append((new_domain, config))
        save_series.append(mean(saves))
        restore_series.append(mean(restores))
    return save_series, restore_series


def test_fig12_save_restore(benchmark):
    results = run_once(benchmark, lambda: {v: checkpoint_times(v)
                                           for v in VARIANTS})

    lv_save, lv_restore = results["lightvm"]
    xl_save, xl_restore = results["xl"]
    rows = [
        ("lightvm save (ms, flat)", 30, fmt(mean(lv_save))),
        ("lightvm restore (ms, flat)", 20, fmt(mean(lv_restore))),
        ("xl save at low N (ms)", 128, fmt(xl_save[0])),
        ("xl restore at low N (ms)", 550, fmt(xl_restore[0])),
        ("xl save growth over points", "grows",
         fmt(xl_save[-1] / xl_save[0], 2)),
    ]
    lines = ["N      " + "".join("%14s-save%11s-rst" % (v, v)
                                 for v in VARIANTS)]
    for row, n in enumerate(POINTS):
        cells = "".join("%19.1f%15.1f" % (results[v][0][row],
                                          results[v][1][row])
                        for v in VARIANTS)
        lines.append("%-7d%s" % (n, cells))
    report("FIG12 checkpoint (save/restore) times",
           paper_vs_measured(rows) + "\n\n" + "\n".join(lines),
           data={
               "points": list(POINTS),
               "save_ms": {v: results[v][0] for v in VARIANTS},
               "restore_ms": {v: results[v][1] for v in VARIANTS},
           })

    # Shape: LightVM flat and fast in both directions; xl slow, restore
    # slowest, and growing with N.
    assert max(lv_save) < min(lv_save) * 1.5
    assert max(lv_restore) < min(lv_restore) * 1.5
    assert mean(lv_save) < 60
    assert mean(lv_restore) < 40
    assert xl_save[0] > mean(lv_save) * 2.5
    assert xl_restore[0] > xl_save[0]
    assert xl_save[-1] > xl_save[0]
    # chaos+xs sits between xl and LightVM.
    cx_save, _cx_restore = results["chaos+xs"]
    assert mean(lv_save) <= mean(cx_save) <= mean(xl_save)


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
