"""Figure 18 — number of concurrently running compute VMs over time.

Same workload as Fig 17; this figure plots the backlog.  Paper shape:
the chaos+XenStore stack accumulates clearly more concurrent VMs over
the run than LightVM (whose work reduction lets VMs finish sooner).
"""

from repro.core.usecases import run_compute_service

from _support import fmt, paper_vs_measured, report, run_once, scaled

REQUESTS = scaled(1000, 400)


def run_experiment():
    return {
        "lightvm": run_compute_service("lightvm", requests=REQUESTS),
        "chaos+xs": run_compute_service("chaos+xs", requests=REQUESTS),
    }


def _at(concurrency, t_s):
    """Concurrency at (or just before) time t_s."""
    best = 0
    for t, count in concurrency:
        if t > t_s:
            break
        best = count
    return best


def test_fig18_concurrent_vms(benchmark):
    results = run_once(benchmark, run_experiment)

    lightvm = results["lightvm"].concurrency
    chaos_xs = results["chaos+xs"].concurrency
    horizon = REQUESTS * 0.25  # seconds of arrivals
    peaks = {name: max(c for _t, c in series)
             for name, series in (("lightvm", lightvm),
                                  ("chaos+xs", chaos_xs))}
    rows = [
        ("peak backlog, chaos+xs", "~140 @1000 reqs", peaks["chaos+xs"]),
        ("peak backlog, lightvm", "lower", peaks["lightvm"]),
        ("backlog grows over time", "yes",
         "%d -> %d" % (_at(lightvm, horizon * 0.2),
                       _at(lightvm, horizon * 0.9))),
    ]
    times = [horizon * f for f in (0.2, 0.4, 0.6, 0.8, 1.0)]
    lines = ["t(s)      lightvm   chaos+xs"]
    for t in times:
        lines.append("%-9s %8d %10d" % (fmt(t, 0), _at(lightvm, t),
                                        _at(chaos_xs, t)))
    report("FIG18 concurrent compute VMs over time",
           paper_vs_measured(rows) + "\n\n" + "\n".join(lines),
           data={
               "requests": REQUESTS,
               "peak_backlog": peaks,
               "sample_times_s": times,
               "backlog_at_samples": {
                   "lightvm": [_at(lightvm, t) for t in times],
                   "chaos+xs": [_at(chaos_xs, t) for t in times],
               },
           })

    # Shape: backlog accumulates under slight overload; the XenStore
    # stack backlogs at least as hard as LightVM at every sampled time.
    assert _at(lightvm, horizon * 0.9) > _at(lightvm, horizon * 0.2)
    assert peaks["chaos+xs"] >= peaks["lightvm"]
    assert all(_at(chaos_xs, t) >= _at(lightvm, t) * 0.9 for t in times)
    assert peaks["chaos+xs"] > 3  # genuinely beyond core count


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
