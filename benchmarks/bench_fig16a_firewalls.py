"""Figure 16a — personal firewalls for 1000 mobile users (§7.1).

1000 ClickOS firewall VMs on the 14-core machine, each serving one
10 Mb/s client.  Paper anchors: linear throughput to 2.5 Gb/s at 250
clients; 6.5 Mb/s per user at 500; 4 Mb/s at 1000; RTT negligible at low
counts, ~60 ms at 1000; one firewall boots in ~10 ms; a single machine
covers an LTE cell (3.3 Gb/s max theoretical).
"""

from repro.core.usecases import run_personal_firewalls

from _support import fmt, paper_vs_measured, report, run_once, scaled


def test_fig16a_personal_firewalls(benchmark):
    result = run_once(
        benchmark,
        lambda: run_personal_firewalls(boot_fleet=scaled(1000, 300)))

    by_n = {p.clients: p for p in result.points}
    rows = [
        ("firewall boot on loaded host (ms)", "~10",
         fmt(result.boot_sample_ms)),
        ("throughput @250 (Gb/s)", 2.5, fmt(by_n[250].total_gbps, 2)),
        ("per-user @500 (Mb/s)", 6.5, fmt(by_n[500].per_client_mbps)),
        ("per-user @1000 (Mb/s)", 4.0, fmt(by_n[1000].per_client_mbps)),
        ("RTT @1000 (ms)", "~60", fmt(by_n[1000].rtt_ms)),
        ("ClickOS migration, 1Gb/s 10ms link (ms)", "~150",
         fmt(result.migration_ms)),
    ]
    series = "\n".join(
        "n=%5d  total=%5.2f Gb/s  per-user=%5.1f Mb/s  rtt=%5.1f ms"
        % (p.clients, p.total_gbps, p.per_client_mbps, p.rtt_ms)
        for p in result.points)
    report("FIG16a personal firewalls", paper_vs_measured(rows)
           + "\n\n" + series,
           data={
               "boot_sample_ms": result.boot_sample_ms,
               "migration_ms": result.migration_ms,
               "points": [
                   {"clients": p.clients, "total_gbps": p.total_gbps,
                    "per_client_mbps": p.per_client_mbps,
                    "rtt_ms": p.rtt_ms, "saturated": p.saturated}
                   for p in result.points],
           })

    assert not by_n[100].saturated
    assert by_n[500].saturated
    assert by_n[1000].total_gbps > by_n[500].total_gbps > \
        by_n[250].total_gbps
    assert 5.0 <= by_n[500].per_client_mbps <= 8.0
    assert 3.3 <= by_n[1000].per_client_mbps <= 5.0
    assert 45 <= by_n[1000].rtt_ms <= 75
    assert by_n[100].rtt_ms < 5
    # One machine handles an LTE cell sector (3.3 Gb/s theoretical max).
    assert by_n[1000].total_gbps > 3.3


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
