"""Figure 13 — migration times vs number of running guests.

10 random guests are migrated at each load point.  Paper anchors: full
LightVM ≈60 ms regardless of load; chaos+XenStore slightly *outperforms*
LightVM at low VM counts because noxs device destruction is the one path
the authors had not optimized; xl grows into the hundreds of ms/seconds.
"""

from repro.core import Host, XEON_E5_1630_2DOM0
from repro.core.metrics import mean
from repro.guests import DAYTIME_UNIKERNEL
from repro.net import Link
from repro.sim import Simulator
from repro.toolstack import migrate

from _support import fmt, paper_vs_measured, report, run_once, scaled

POINTS = ((10, 100, 300, 600, 1000) if scaled(1, 0)
          else (10, 100, 200, 300))
VARIANTS = ("xl", "chaos+xs", "lightvm")
MIGRATIONS_PER_POINT = 10


def migration_times(variant):
    sim = Simulator()
    src = Host(spec=XEON_E5_1630_2DOM0, variant=variant, sim=sim,
               pool_target=max(POINTS) + 64,
               shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
    dst = Host(spec=XEON_E5_1630_2DOM0, variant=variant, sim=sim,
               pool_target=max(POINTS) + 64,
               shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
    src.warmup(30.0 * (max(POINTS) + 64))
    link = Link(sim, latency_ms=0.1, bandwidth_mbps=1000.0)
    pick_rng = src.rng.stream("migration-picks")
    running = []
    series = []
    for target in POINTS:
        while src.running_guests < target:
            config = src.config_for(DAYTIME_UNIKERNEL)
            record = src.create_vm(config)
            running.append((record.domain, config))
        durations = []
        for _ in range(MIGRATIONS_PER_POINT):
            index = pick_rng.randrange(len(running))
            domain, config = running.pop(index)
            start = sim.now
            proc = sim.process(migrate(src.checkpointer, dst.checkpointer,
                                       domain, config, link))
            sim.run(until=proc)
            durations.append(sim.now - start)
            # Keep the source population constant for the next round.
            replacement = src.config_for(DAYTIME_UNIKERNEL)
            record = src.create_vm(replacement)
            running.append((record.domain, replacement))
        series.append(mean(durations))
    return series


def test_fig13_migration(benchmark):
    results = run_once(benchmark, lambda: {v: migration_times(v)
                                           for v in VARIANTS})

    rows = [
        ("lightvm migration (ms, flat)", 60,
         fmt(mean(results["lightvm"]))),
        ("chaos+xs at low N (ms)", "< lightvm",
         fmt(results["chaos+xs"][0])),
        ("xl at low N (ms)", "hundreds", fmt(results["xl"][0])),
        ("xl growth over points", "grows",
         fmt(results["xl"][-1] / results["xl"][0], 2)),
    ]
    lines = ["N      " + "".join("%16s" % v for v in VARIANTS)]
    for row, n in enumerate(POINTS):
        lines.append("%-7d" % n + "".join("%16.1f" % results[v][row]
                                          for v in VARIANTS))
    report("FIG13 migration times",
           paper_vs_measured(rows) + "\n\n" + "\n".join(lines),
           data={
               "points": list(POINTS),
               "migration_ms": {v: results[v] for v in VARIANTS},
           })

    lightvm = results["lightvm"]
    # Shape: LightVM flat around 60 ms; chaos+XS wins at low N (the
    # unoptimized noxs device destruction); xl slowest and growing.
    assert max(lightvm) < min(lightvm) * 1.4
    assert 30 <= mean(lightvm) <= 110
    assert results["chaos+xs"][0] < lightvm[0]
    assert results["chaos+xs"][-1] > lightvm[-1]  # XS catches up with N
    assert results["xl"][0] > lightvm[0] * 2
    assert results["xl"][-1] > results["xl"][0]


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
