"""Shared helpers for the figure benchmarks.

Every ``bench_figXX_*.py`` regenerates one figure of the paper's
evaluation: it runs the simulated experiment at a configurable scale,
prints the same rows/series the figure reports (paper value vs measured),
asserts the *shape* (who wins, by roughly what factor, where the knees
fall), and stores the measured series in ``benchmark.extra_info`` plus a
text report under ``benchmarks/results/``.

Scale: the environment variable ``REPRO_BENCH_SCALE`` selects ``quick``
(default; minutes for the whole directory) or ``full`` (the paper's VM
counts everywhere).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import typing

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick") == "full"

#: Set by ``conftest.py`` when pytest was invoked with ``--json``.
JSON_ENABLED = False

#: Wall-clock seconds the most recent :func:`run_once` experiment took —
#: the DES engine's self-timing, attached to the figure JSON by
#: :func:`report`.
_last_wall_s: typing.Optional[float] = None


def scaled(full_value: int, quick_value: int) -> int:
    """Pick the experiment size for the current scale."""
    return full_value if FULL else quick_value


def report(figure: str, text: str,
           data: typing.Optional[typing.Dict[str, object]] = None) -> None:
    """Print a figure report and persist it under
    ``benchmarks/results/<scale>/`` (so a quick run never clobbers the
    committed full-scale series).

    With ``--json`` a machine-readable ``BENCH_<fig>.json`` is also
    written at the repository root: the figure id/title/scale, the
    optional ``data`` series the benchmark passes, and the wall-clock
    seconds the DES engine spent on the experiment.
    """
    scale = "full" if FULL else "quick"
    banner = "=" * 72
    body = "%s\n%s  [scale: %s]\n%s\n%s\n" % (banner, figure, scale,
                                              banner, text)
    print("\n" + body)
    directory = RESULTS_DIR / scale
    directory.mkdir(parents=True, exist_ok=True)
    fig_id = figure.split(" ")[0].lower()
    path = directory / ("%s.txt" % fig_id)
    path.write_text(body)
    if JSON_ENABLED:
        payload = {
            "figure": fig_id,
            "title": figure,
            "scale": scale,
            "wall_clock_s": _last_wall_s,
            "data": data if data is not None else {},
        }
        json_path = REPO_ROOT / ("BENCH_%s.json" % fig_id)
        json_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_once(benchmark, fn: typing.Callable):
    """Run an experiment exactly once under pytest-benchmark timing,
    recording the experiment's wall-clock duration for :func:`report`."""
    global _last_wall_s
    started = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    _last_wall_s = time.perf_counter() - started
    return result


def paper_vs_measured(rows: typing.Sequence[typing.Tuple[str, object,
                                                         object]]) -> str:
    """Format '(quantity, paper, measured)' rows."""
    lines = ["%-44s %16s %16s" % ("quantity", "paper", "measured")]
    for name, paper, measured in rows:
        lines.append("%-44s %16s %16s" % (name, paper, measured))
    return "\n".join(lines)


def fmt(value: float, digits: int = 1) -> str:
    """Compact float formatting for report rows."""
    return ("%." + str(digits) + "f") % value


def bench_main(path: str,
               argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """Run one figure benchmark as a script.

    Every ``bench_*.py`` exposes this as its ``__main__``, so the flag
    surface is identical across all of them::

        PYTHONPATH=src python benchmarks/bench_fig10_density.py \\
            [--json] [--scale quick|full] [-k EXPR]

    ``--json`` matches the pytest spelling conftest.py registers; the
    scale override is applied before pytest re-imports the benchmark
    module, so module-level ``scaled(...)`` constants see it.
    """
    import argparse

    global FULL
    parser = argparse.ArgumentParser(
        prog=pathlib.Path(path).name,
        description="run this figure benchmark")
    parser.add_argument("--json", action="store_true",
                        help="also write BENCH_<fig>.json at the "
                             "repository root")
    parser.add_argument("--scale", choices=("quick", "full"),
                        default=None,
                        help="experiment scale (default: "
                             "$REPRO_BENCH_SCALE, else quick)")
    parser.add_argument("-k", dest="expr", default=None, metavar="EXPR",
                        help="only run benchmark tests matching EXPR")
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = args.scale
        FULL = args.scale == "full"

    import pytest
    pytest_args = [str(path), "-x", "-q"]
    if args.json:
        pytest_args.append("--json")
    if args.expr:
        pytest_args.extend(["-k", args.expr])
    return pytest.main(pytest_args)
