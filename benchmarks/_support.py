"""Shared helpers for the figure benchmarks.

Every ``bench_figXX_*.py`` regenerates one figure of the paper's
evaluation: it runs the simulated experiment at a configurable scale,
prints the same rows/series the figure reports (paper value vs measured),
asserts the *shape* (who wins, by roughly what factor, where the knees
fall), and stores the measured series in ``benchmark.extra_info`` plus a
text report under ``benchmarks/results/``.

Scale: the environment variable ``REPRO_BENCH_SCALE`` selects ``quick``
(default; minutes for the whole directory) or ``full`` (the paper's VM
counts everywhere).
"""

from __future__ import annotations

import os
import pathlib
import typing

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick") == "full"


def scaled(full_value: int, quick_value: int) -> int:
    """Pick the experiment size for the current scale."""
    return full_value if FULL else quick_value


def report(figure: str, text: str) -> None:
    """Print a figure report and persist it under
    ``benchmarks/results/<scale>/`` (so a quick run never clobbers the
    committed full-scale series)."""
    scale = "full" if FULL else "quick"
    banner = "=" * 72
    body = "%s\n%s  [scale: %s]\n%s\n%s\n" % (banner, figure, scale,
                                              banner, text)
    print("\n" + body)
    directory = RESULTS_DIR / scale
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / ("%s.txt" % figure.split(" ")[0].lower())
    path.write_text(body)


def run_once(benchmark, fn: typing.Callable):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def paper_vs_measured(rows: typing.Sequence[typing.Tuple[str, object,
                                                         object]]) -> str:
    """Format '(quantity, paper, measured)' rows."""
    lines = ["%-44s %16s %16s" % ("quantity", "paper", "measured")]
    for name, paper, measured in rows:
        lines.append("%-44s %16s %16s" % (name, paper, measured))
    return "\n".join(lines)


def fmt(value: float, digits: int = 1) -> str:
    """Compact float formatting for report rows."""
    return ("%." + str(digits) + "f") % value
