"""Figure 16b — just-in-time service instantiation (§7.2).

CDFs of client-perceived ping RTT for open-loop arrivals at 10/25/50/
100 ms.  Paper anchors: with a client every 25 ms, median 13 ms and
p90 20 ms; at 10 ms the bridge overloads, drops ARP, and some pings time
out, giving the curve a long tail.
"""

from repro.core.metrics import cdf_points, median, percentile
from repro.core.usecases import run_jit_service

from _support import fmt, paper_vs_measured, report, run_once, scaled

RATES_MS = (10.0, 25.0, 50.0, 100.0)
CLIENTS = scaled(1000, 250)


def run_experiment():
    return {rate: run_jit_service(rate, clients=CLIENTS)
            for rate in RATES_MS}


def test_fig16b_jit_instantiation(benchmark):
    results = run_once(benchmark, run_experiment)

    r25 = results[25.0]
    r10 = results[10.0]
    rows = [
        ("median @25ms inter-arrival (ms)", 13, fmt(median(r25.rtts))),
        ("p90 @25ms (ms)", 20, fmt(percentile(r25.rtts, 90))),
        ("@10ms: ARP drops", ">0 (overload)", r10.bridge_drops),
        ("@10ms: pings with timeouts", "long tail", r10.retried),
        ("@10ms p99 (ms)", ">> 100", fmt(percentile(r10.rtts, 99))),
    ]
    cdf_lines = []
    for rate in RATES_MS:
        pts = cdf_points(results[rate].rtts, points=6)
        cdf_lines.append("inter-arrival %4.0f ms: "
                         % rate + "  ".join("%.0fms:%.2f" % (v, f)
                                            for v, f in pts))
    report("FIG16b JIT instantiation ping CDFs",
           paper_vs_measured(rows) + "\n\n" + "\n".join(cdf_lines),
           data={
               "clients": CLIENTS,
               "rates_ms": list(RATES_MS),
               "median_rtt_ms": {
                   "%g" % rate: median(results[rate].rtts)
                   for rate in RATES_MS},
               "p90_rtt_ms": {
                   "%g" % rate: percentile(results[rate].rtts, 90)
                   for rate in RATES_MS},
               "bridge_drops": {
                   "%g" % rate: results[rate].bridge_drops
                   for rate in RATES_MS},
               "retried": {
                   "%g" % rate: results[rate].retried
                   for rate in RATES_MS},
           })

    # Shape: clean sub-40ms curves at 25/50/100 ms; long tail at 10 ms.
    for rate in (25.0, 50.0, 100.0):
        result = results[rate]
        assert result.retried == 0
        assert percentile(result.rtts, 99) < 40
        assert 9 <= median(result.rtts) <= 18
    assert r10.bridge_drops > 0
    assert r10.retried > 0
    assert percentile(r10.rtts, 99) > 500
    # Most pings still complete promptly even under overload.
    assert median(r10.rtts) < 40


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
